"""``repro.obs`` — the unified observability layer.

One subsystem for the telemetry primitives every other layer uses:

* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, fixed-bucket
  histograms, and rolling-window percentile summaries in a
  :class:`MetricsRegistry`.  Built-in instrumentation writes to the
  process-global default registry (:func:`get_registry`); components
  accept an injected registry when isolated accounting is needed.
* **tracing** (:mod:`repro.obs.tracing`) — :func:`trace_span` produces
  nested wall-time spans with attributes, recorded into a bounded
  :class:`TraceRecorder` exportable as JSON, JSONL, or Chrome
  trace-event format (:mod:`repro.obs.export`).
* **propagation** (:mod:`repro.obs.propagation`) — W3C-style
  ``traceparent`` generation/parsing so traces survive HTTP hops
  (``ServeClient → ModelServer``, ``HubClient → hub server``) and CLI
  process boundaries (the :envvar:`TRACEPARENT` environment variable).
* **cost** (:mod:`repro.obs.cost`) — a context-scoped
  :class:`RequestCost` accumulator the storage layers charge with
  bytes-read-per-plane, chunk fetches, cache hits/misses, and queue/
  compute time, plus the bounded :class:`SlowLog` of threshold-crossing
  requests.
* **exposition** (:mod:`repro.obs.prometheus`) — Prometheus text-format
  rendering of the registry, content-negotiated on server ``/metrics``
  endpoints.
* **logging** (:mod:`repro.obs.log`) — a structured-logging bootstrap
  keyed off the ``REPRO_LOG_LEVEL`` environment variable.

What the built-in instrumentation records (all under the default
registry / recorder):

========================  =====================================================
``chunkstore.*``          put/get calls, raw bytes in/out, dedup hits
``cache.*``               per-:class:`~repro.core.cache.RetrievalCache`
                          hit/miss/eviction counters (injectable registry)
``retrieval.*``           snapshot recreation latency + stored bytes read
``archival.*``            storage-plan search timing per algorithm
``progressive.*``         per-plane evaluation timing and resolution counts
``dql.*``                 parse/execute latency, query counts per verb
``training.*``            per-iteration loss, examples, step latency
``hub.*``                 request counters per operation; ``hub.pull``
                          rolling latency window
``serve.*``               serving tier: requests/completed/shed/errors,
                          escalations, degraded responses, batch shape
                          histograms, per-model queue-depth gauges;
                          ``serve.predict`` rolling latency window
``serve.cache.*``         shared plane-cache hits/misses/evictions plus
                          cached-bytes and entry-count gauges
========================  =====================================================

Spans use the same dotted names (``pas.matrix``, ``pas.snapshot``,
``archival.solve``, ``progressive.plane``, ``dql.parse``, ``dql.execute``,
``serve.predict``, ``serve.batch``, ``hub.pull``).
"""

from repro.obs.cost import (
    RequestCost,
    SlowLog,
    charge,
    cost_context,
    current_cost,
    get_slowlog,
    set_slowlog,
)
from repro.obs.log import configure, get_logger, log_level
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingWindow,
    counter,
    dump_metrics,
    gauge,
    get_registry,
    histogram,
    reset_metrics,
    set_registry,
    window,
)
from repro.obs.propagation import (
    TRACEPARENT_ENV,
    TRACEPARENT_HEADER,
    TraceContext,
    current_traceparent,
    format_traceparent,
    parse_traceparent,
    parse_traceparent_env,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_text,
    wants_text,
)
from repro.obs.tracing import (
    Span,
    TraceRecorder,
    current_span,
    get_recorder,
    set_recorder,
    trace_span,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "RequestCost",
    "RollingWindow",
    "SlowLog",
    "Span",
    "TRACEPARENT_ENV",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "TraceRecorder",
    "charge",
    "configure",
    "cost_context",
    "counter",
    "current_cost",
    "current_span",
    "current_traceparent",
    "dump_metrics",
    "format_traceparent",
    "gauge",
    "get_logger",
    "get_recorder",
    "get_registry",
    "get_slowlog",
    "histogram",
    "log_level",
    "parse_traceparent",
    "parse_traceparent_env",
    "render_text",
    "reset_metrics",
    "set_recorder",
    "set_registry",
    "set_slowlog",
    "trace_span",
    "wants_text",
    "window",
]
