"""``repro.obs`` — the unified observability layer.

One subsystem for the three telemetry primitives every other layer uses:

* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  fixed-bucket histograms in a :class:`MetricsRegistry`.  Built-in
  instrumentation writes to the process-global default registry
  (:func:`get_registry`); components accept an injected registry when
  isolated accounting is needed.
* **tracing** (:mod:`repro.obs.tracing`) — :func:`trace_span` produces
  nested wall-time spans with attributes, recorded into a bounded
  :class:`TraceRecorder` exportable as JSON.
* **logging** (:mod:`repro.obs.log`) — a structured-logging bootstrap
  keyed off the ``REPRO_LOG_LEVEL`` environment variable.

What the built-in instrumentation records (all under the default
registry / recorder):

========================  =====================================================
``chunkstore.*``          put/get calls, raw bytes in/out, dedup hits
``cache.*``               per-:class:`~repro.core.cache.RetrievalCache`
                          hit/miss/eviction counters (injectable registry)
``retrieval.*``           snapshot recreation latency + stored bytes read
``archival.*``            storage-plan search timing per algorithm
``progressive.*``         per-plane evaluation timing and resolution counts
``dql.*``                 parse/execute latency, query counts per verb
``training.*``            per-iteration loss, examples, step latency
``hub.*``                 request counters per operation
``serve.*``               serving tier: requests/completed/shed/errors,
                          escalations, degraded responses, batch shape
                          histograms, per-model queue-depth gauges
``serve.cache.*``         shared plane-cache hits/misses/evictions plus
                          cached-bytes and entry-count gauges
========================  =====================================================

Spans use the same dotted names (``pas.matrix``, ``pas.snapshot``,
``archival.solve``, ``progressive.plane``, ``dql.parse``, ``dql.execute``,
``serve.batch``).
"""

from repro.obs.log import configure, get_logger, log_level
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    dump_metrics,
    gauge,
    get_registry,
    histogram,
    reset_metrics,
    set_registry,
)
from repro.obs.tracing import (
    Span,
    TraceRecorder,
    current_span,
    get_recorder,
    set_recorder,
    trace_span,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceRecorder",
    "configure",
    "counter",
    "current_span",
    "dump_metrics",
    "gauge",
    "get_logger",
    "get_recorder",
    "get_registry",
    "histogram",
    "log_level",
    "reset_metrics",
    "set_recorder",
    "set_registry",
    "trace_span",
]
