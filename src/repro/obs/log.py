"""Structured-logging bootstrap for the ``repro`` package.

Every subsystem logs under the ``repro`` root logger.  Nothing is emitted
unless the process opts in: either by exporting ``REPRO_LOG_LEVEL``
(``DEBUG`` / ``INFO`` / ``WARNING`` / ...) before first use, or by calling
:func:`configure` explicitly.  The format is a flat ``key=value`` line so
log output stays grep-able next to the JSON metrics dumps.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

__all__ = ["configure", "get_logger", "log_level"]

ENV_VAR = "REPRO_LOG_LEVEL"
_FORMAT = "%(asctime)s level=%(levelname)s logger=%(name)s %(message)s"
_configured = False


def log_level(default: str = "WARNING") -> int:
    """The effective level: ``REPRO_LOG_LEVEL`` or ``default``."""
    name = os.environ.get(ENV_VAR, default).upper()
    level = logging.getLevelName(name)
    if not isinstance(level, int):
        raise ValueError(f"{ENV_VAR}={name!r} is not a valid log level")
    return level


def configure(level: Optional[str | int] = None, force: bool = False) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` root logger (idempotent).

    Args:
        level: Explicit level (name or number); defaults to the
            ``REPRO_LOG_LEVEL`` environment variable, then WARNING.
        force: Re-apply configuration even when already configured (used
            after changing the environment in tests).
    """
    global _configured
    root = logging.getLogger("repro")
    if _configured and not force:
        return root
    if level is None:
        resolved = log_level()
    elif isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"invalid log level {level!r}")
    else:
        resolved = level
    if not any(
        isinstance(h, logging.StreamHandler) for h in root.handlers
    ):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    root.setLevel(resolved)
    root.propagate = False
    _configured = True
    return root


def get_logger(name: str) -> logging.Logger:
    """A ``repro.<name>`` logger, bootstrapping configuration on first use."""
    configure()
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
