"""Per-request cost accounting and the slow-request log.

The paper's promises are quantitative — progressive queries save bytes,
retrieval latency is bounded — so every *request* (a ``/v1/predict``
call, a DQL statement, a hub pull) deserves its own bill: stored bytes
read per byte plane, chunks fetched, cache hits vs. misses, time spent
queued vs. computing.

:class:`RequestCost` is that bill.  It is installed with
:func:`cost_context` into a contextvar (mirroring
``repro.obs.tracing.current_span``), and the storage layers *charge* it
via :func:`charge` — a no-op when no accumulator is active, so the
instrumentation costs nothing outside request scopes.  Code that crosses
a thread boundary (the serving tier's batch workers) accumulates into a
batch-level cost and :meth:`RequestCost.merge`\\ s it into each
participating request before completion.

Requests whose wall time crosses a threshold land in the bounded
process-global :class:`SlowLog` (``dlv slowlog`` renders it; servers
expose it at ``/v1/slowlog``).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "RequestCost",
    "SlowLog",
    "charge",
    "cost_context",
    "current_cost",
    "get_slowlog",
    "set_slowlog",
    "DEFAULT_SLOWLOG_MS",
    "DEFAULT_SLOWLOG_CAPACITY",
]

#: Default slow-request threshold in milliseconds (env-overridable).
DEFAULT_SLOWLOG_MS = float(os.environ.get("REPRO_SLOWLOG_MS", "250"))

#: Default slow-log ring capacity (env-overridable).
DEFAULT_SLOWLOG_CAPACITY = int(os.environ.get("REPRO_SLOWLOG_CAPACITY", "128"))

_current_cost: contextvars.ContextVar[Optional["RequestCost"]] = (
    contextvars.ContextVar("repro_obs_current_cost", default=None)
)


class RequestCost:
    """What one request actually cost the storage and serving layers.

    Attributes:
        bytes_read: Uncompressed bytes read out of chunk stores.
        chunks_fetched: Chunk-store ``get`` calls that hit storage.
        planes_fetched: Byte-plane reads (one per ``(payload, plane)``).
        by_plane: ``plane index -> bytes`` breakdown of plane reads —
            the paper's progressive-query byte accounting.
        cache_hits / cache_misses: Plane/retrieval cache outcomes.
        queue_wait_s: Seconds spent waiting in scheduler queues.
        compute_s: Seconds spent in forward/interval passes.
        batches: Coalesced batches this request participated in.
        shared_requests: Sum over those batches of how many requests
            shared each one (cost is charged in full to every sharer, so
            ``shared_requests > batches`` means some bytes were amortized).
    """

    __slots__ = (
        "bytes_read", "chunks_fetched", "planes_fetched", "by_plane",
        "cache_hits", "cache_misses", "queue_wait_s", "compute_s",
        "batches", "shared_requests",
    )

    def __init__(self) -> None:
        self.bytes_read = 0
        self.chunks_fetched = 0
        self.planes_fetched = 0
        self.by_plane: dict[int, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.queue_wait_s = 0.0
        self.compute_s = 0.0
        self.batches = 0
        self.shared_requests = 0

    def add(
        self,
        bytes_read: int = 0,
        chunks_fetched: int = 0,
        planes_fetched: int = 0,
        plane_bytes: Optional[dict[int, int]] = None,
        cache_hits: int = 0,
        cache_misses: int = 0,
        queue_wait_s: float = 0.0,
        compute_s: float = 0.0,
    ) -> None:
        """Charge this accumulator (all amounts are deltas)."""
        self.bytes_read += bytes_read
        self.chunks_fetched += chunks_fetched
        self.planes_fetched += planes_fetched
        if plane_bytes:
            for plane, nbytes in plane_bytes.items():
                self.by_plane[plane] = self.by_plane.get(plane, 0) + nbytes
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        self.queue_wait_s += queue_wait_s
        self.compute_s += compute_s

    def merge(self, other: "RequestCost", shared: int = 1) -> None:
        """Fold a batch-level cost into this request's bill.

        ``shared`` is how many requests the batch coalesced; each sharer
        is charged the full batch cost (what the batch *did* on its
        behalf), with the sharing recorded so amortization is visible.
        """
        self.bytes_read += other.bytes_read
        self.chunks_fetched += other.chunks_fetched
        self.planes_fetched += other.planes_fetched
        for plane, nbytes in other.by_plane.items():
            self.by_plane[plane] = self.by_plane.get(plane, 0) + nbytes
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.queue_wait_s += other.queue_wait_s
        self.compute_s += other.compute_s
        self.batches += 1
        self.shared_requests += max(1, shared)

    def to_dict(self) -> dict:
        return {
            "bytes_read": self.bytes_read,
            "chunks_fetched": self.chunks_fetched,
            "planes_fetched": self.planes_fetched,
            "bytes_by_plane": {str(k): v for k, v in sorted(self.by_plane.items())},
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "queue_wait_ms": self.queue_wait_s * 1000.0,
            "compute_ms": self.compute_s * 1000.0,
            "batches": self.batches,
            "shared_requests": self.shared_requests,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestCost(bytes={self.bytes_read}, planes={self.planes_fetched},"
            f" hits={self.cache_hits}, misses={self.cache_misses})"
        )


def current_cost() -> Optional[RequestCost]:
    """The calling context's active accumulator (``None`` outside one)."""
    return _current_cost.get()


@contextmanager
def cost_context(cost: Optional[RequestCost] = None) -> Iterator[RequestCost]:
    """Install ``cost`` (or a fresh accumulator) for the enclosed block."""
    active = cost if cost is not None else RequestCost()
    token = _current_cost.set(active)
    try:
        yield active
    finally:
        _current_cost.reset(token)


def charge(**amounts) -> None:
    """Charge the active accumulator; silently a no-op outside a context.

    Keyword arguments are those of :meth:`RequestCost.add`.
    """
    cost = _current_cost.get()
    if cost is not None:
        cost.add(**amounts)


class SlowLog:
    """Bounded ring of requests that crossed the slow threshold.

    Args:
        capacity: Entries kept (oldest evicted first).
        threshold_ms: Default wall-time threshold; :meth:`record` accepts
            a per-call override (servers pass their configured one).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SLOWLOG_CAPACITY,
        threshold_ms: float = DEFAULT_SLOWLOG_MS,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.threshold_ms = threshold_ms
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    def record(
        self,
        name: str,
        ms: float,
        trace_id: str = "",
        cost: Optional[dict] = None,
        attrs: Optional[dict] = None,
        threshold_ms: Optional[float] = None,
    ) -> bool:
        """Log one request iff it is slow; returns whether it was kept."""
        limit = self.threshold_ms if threshold_ms is None else threshold_ms
        if ms < limit:
            return False
        entry = {
            "name": name,
            "ms": ms,
            "trace_id": trace_id,
            "cost": dict(cost) if cost else None,
            "attrs": dict(attrs) if attrs else {},
            "at": time.time(),
        }
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return True

    @property
    def total_recorded(self) -> int:
        """Slow requests ever logged, including evicted ones."""
        return self._recorded

    def entries(self) -> list[dict]:
        """Buffered entries, oldest first."""
        with self._lock:
            return [dict(e) for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._recorded = 0


_default_slowlog = SlowLog()


def get_slowlog() -> SlowLog:
    """The process-global slow-request log."""
    return _default_slowlog


def set_slowlog(slowlog: SlowLog) -> SlowLog:
    """Swap the process-global slow log; returns the previous one."""
    global _default_slowlog
    previous = _default_slowlog
    _default_slowlog = slowlog
    return previous
