"""Nested wall-clock spans with a ring-buffer recorder.

``trace_span`` is the single timing primitive the rest of the system uses:
it measures elapsed wall time, knows its parent span (so recorded traces
reconstruct the call tree), and carries free-form attributes — the matrix
id being recreated, the retrieval scheme, the DQL verb.  Completed spans
land in a bounded :class:`TraceRecorder`, so tracing in a long-running
server costs constant memory.

Span timing uses ``time.perf_counter``; a span's ``elapsed`` is available
to the instrumented code itself (several public APIs — snapshot
recreation, DQL execution — report their own wall time, and they read it
off the span rather than keeping a second clock).  ``wall_start``
additionally records epoch time at open, which the Chrome trace-event
export (:mod:`repro.obs.export`) uses as its timeline.

Every span belongs to a *trace*: roots mint a random 128-bit trace id
(or adopt one passed explicitly — see :mod:`repro.obs.propagation`),
children inherit their parent's.  ``remote_parent`` links a local root
to the 16-hex span id of its parent on the other side of a process or
thread boundary, so cross-hop exports reassemble one connected tree.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "Span",
    "TraceRecorder",
    "trace_span",
    "get_recorder",
    "set_recorder",
    "current_span",
]

#: Ring-buffer capacity of the default recorder (env-overridable).
DEFAULT_CAPACITY = int(os.environ.get("REPRO_TRACE_CAPACITY", "4096"))

_span_ids = itertools.count(1)
_current_span: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass
class Span:
    """One timed operation.

    Attributes:
        name: Dotted operation name (``"pas.snapshot"``).
        attrs: Free-form attributes attached at creation or via
            :meth:`set_attr` while the span is open.
        span_id / parent_id: Tree structure; ``parent_id`` is ``None`` for
            roots.
        depth: Nesting depth (0 for roots) at creation time.
        start: ``perf_counter`` timestamp when the span opened.
        elapsed: Wall seconds; ``None`` while the span is still open.
        error: Exception repr when the spanned block raised.
        trace_id: 32-hex id shared by every span of one request
            (inherited from the parent; minted fresh for roots).
        remote_parent: 16-hex id of the parent span across a process or
            thread hop (``None`` for purely local spans).
        wall_start: Epoch seconds at open (export timeline).
        tid: Thread id the span was opened on.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    span_id: int = 0
    parent_id: Optional[int] = None
    depth: int = 0
    start: float = 0.0
    elapsed: Optional[float] = None
    error: Optional[str] = None
    trace_id: str = ""
    remote_parent: Optional[str] = None
    wall_start: float = 0.0
    tid: int = 0

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute discovered mid-span (e.g. bytes read)."""
        self.attrs[key] = value

    @property
    def hex_id(self) -> str:
        """16-hex wire form of ``span_id`` (what ``traceparent`` carries)."""
        return format(self.span_id & ((1 << 64) - 1), "016x")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "elapsed": self.elapsed,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
            "wall_start": self.wall_start,
            "tid": self.tid,
            **(
                {"remote_parent": self.remote_parent}
                if self.remote_parent
                else {}
            ),
            **({"error": self.error} if self.error else {}),
        }


class TraceRecorder:
    """Bounded buffer of completed spans (oldest evicted first)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self._recorded += 1

    @property
    def total_recorded(self) -> int:
        """Spans ever recorded, including any the ring buffer dropped."""
        return self._recorded

    def spans(self, name: Optional[str] = None) -> list[Span]:
        """Buffered spans in completion order, optionally filtered by name."""
        with self._lock:
            items = list(self._spans)
        if name is not None:
            items = [s for s in items if s.name == name]
        return items

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._recorded = 0

    def to_json(self, indent: Optional[int] = None) -> str:
        """Export the buffered spans as a JSON array (completion order).

        Spans whose parent was evicted from the ring buffer are re-rooted
        (``parent_id`` nulled, the stale id preserved under
        ``evicted_parent_id``) and flagged ``truncated: true`` instead of
        dangling — consumers never see a parent id that resolves nowhere.
        """
        from repro.obs.export import mark_orphans

        return json.dumps(
            mark_orphans([span.to_dict() for span in self.spans()]),
            indent=indent,
            default=str,
        )

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        """Export the buffered spans as Chrome trace-event JSON.

        The result loads directly in ``chrome://tracing`` / Perfetto:
        each trace id becomes a process row, each thread a track, and
        spans render as nested slices.
        """
        from repro.obs.export import to_chrome

        return json.dumps(
            to_chrome([span.to_dict() for span in self.spans()]),
            indent=indent,
            default=str,
        )

    def to_jsonl(self) -> str:
        """Export the buffered spans as one JSON object per line."""
        from repro.obs.export import to_jsonl

        return to_jsonl([span.to_dict() for span in self.spans()])


_default_recorder = TraceRecorder()


def get_recorder() -> TraceRecorder:
    """The process-global recorder ``trace_span`` writes to by default."""
    return _default_recorder


def set_recorder(recorder: TraceRecorder) -> TraceRecorder:
    """Swap the process-global recorder; returns the previous one."""
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    return previous


def current_span() -> Optional[Span]:
    """The innermost open span of the calling context (None outside)."""
    return _current_span.get()


@contextmanager
def trace_span(
    name: str,
    recorder: Optional[TraceRecorder] = None,
    trace_id: Optional[str] = None,
    remote_parent: Optional[str] = None,
    **attrs,
) -> Iterator[Span]:
    """Time a block as a span nested under the caller's current span.

    Yields the open :class:`Span`; on exit its ``elapsed`` is set (also
    when the block raises — the exception propagates, with its repr stored
    on the span) and the span is recorded.

    Args:
        name: Dotted operation name.
        recorder: Destination buffer; defaults to the global recorder.
        trace_id: Adopt this 32-hex trace id instead of minting one.
            Ignored when a local parent span is open (children always
            share their parent's trace).
        remote_parent: 16-hex id of the span's parent on the other side
            of a process/thread hop (see :mod:`repro.obs.propagation`).
            Recorded only when there is no local parent.
        **attrs: Initial span attributes.
    """
    from repro.obs.propagation import new_trace_id

    parent = _current_span.get()
    if parent is not None:
        span_trace = parent.trace_id or new_trace_id()
    else:
        span_trace = trace_id or new_trace_id()
    span = Span(
        name=name,
        attrs=attrs,
        span_id=next(_span_ids),
        parent_id=parent.span_id if parent is not None else None,
        depth=parent.depth + 1 if parent is not None else 0,
        trace_id=span_trace,
        remote_parent=remote_parent if parent is None else None,
        tid=threading.get_ident(),
    )
    token = _current_span.set(span)
    span.wall_start = time.time()
    span.start = time.perf_counter()
    try:
        yield span
    except BaseException as exc:
        span.error = repr(exc)
        raise
    finally:
        span.elapsed = time.perf_counter() - span.start
        _current_span.reset(token)
        (recorder if recorder is not None else _default_recorder).record(span)
