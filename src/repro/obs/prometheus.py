"""Prometheus text exposition for a :class:`MetricsRegistry`.

The serve and hub servers' ``/metrics`` endpoints default to the JSON
snapshot (``MetricsRegistry.as_dict``) for humans and tests, and render
this module's text format (version 0.0.4 — what every Prometheus-family
scraper speaks) when the client asks for it via ``Accept: text/plain``.

Mapping of our primitives onto Prometheus types:

* :class:`~repro.obs.metrics.Counter` → ``counter`` named ``<name>_total``.
* :class:`~repro.obs.metrics.Gauge` → ``gauge``.
* :class:`~repro.obs.metrics.Histogram` → ``histogram`` with cumulative
  ``_bucket{le=...}`` series (including ``+Inf``), ``_sum`` and ``_count``.
* :class:`~repro.obs.metrics.RollingWindow` → ``summary`` with
  ``{quantile="0.5|0.95|0.99"}`` series over the sliding window.

Dotted metric names become underscore names (``serve.predict.latency`` →
``serve_predict_latency``); any character outside ``[a-zA-Z0-9_:]`` is
replaced by ``_``.

:func:`parse_text` is the matching miniature parser — enough grammar to
validate our own output in golden tests and the CI scrape step without
installing a Prometheus client.
"""

from __future__ import annotations

import math
import re
from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingWindow,
    get_registry,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "parse_text",
    "render_text",
    "sanitize_name",
    "wants_text",
]

#: Content type of the text exposition format (version 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus name grammar."""
    cleaned = _NAME_OK_RE.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """Render a sample value (Prometheus spells infinity ``+Inf``)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry in the Prometheus text exposition format."""
    reg = registry if registry is not None else get_registry()
    lines: list[str] = []
    for name in reg.names():
        metric = reg.get(name)
        if metric is None:  # racing reset/unregister; skip
            continue
        prom = sanitize_name(name)
        if isinstance(metric, Counter):
            if not prom.endswith("_total"):
                prom += "_total"
            lines.append(f"# HELP {prom} Counter {name}")
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {prom} Gauge {name}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {prom} Histogram {name}")
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in metric.bucket_counts():
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
                )
            lines.append(f"{prom}_sum {_fmt(float(metric.sum))}")
            lines.append(f"{prom}_count {metric.count}")
        elif isinstance(metric, RollingWindow):
            snap = metric.snapshot()
            lines.append(f"# HELP {prom} Rolling-window summary {name}")
            lines.append(f"# TYPE {prom} summary")
            for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                lines.append(f'{prom}{{quantile="{q}"}} {_fmt(float(snap[key]))}')
            lines.append(f"{prom}_sum {_fmt(snap['mean'] * snap['count'])}")
            lines.append(f"{prom}_count {snap['count']}")
    return "\n".join(lines) + "\n"


def wants_text(accept: Optional[str]) -> bool:
    """Whether an ``Accept`` header asks for the text exposition format.

    ``text/plain`` (with or without parameters) and the OpenMetrics type
    select text; anything else — absent header, ``*/*``, JSON — keeps the
    default JSON snapshot, so existing clients are unaffected.
    """
    if not accept:
        return False
    for part in accept.split(","):
        media = part.split(";", 1)[0].strip().lower()
        if media in ("text/plain", "application/openmetrics-text"):
            return True
    return False


def parse_text(text: str) -> dict:
    """Parse Prometheus text exposition into ``{"types":…, "samples":…}``.

    A miniature validating parser: every non-comment line must match the
    ``name{labels} value [timestamp]`` sample grammar, ``# TYPE`` lines
    must name a known type, and samples must be numeric.  Raises
    :class:`ValueError` on the first violation — which is exactly what
    the golden tests and the CI scrape step want.

    Returns:
        ``types``: metric name → declared type.
        ``samples``: list of ``(name, labels-dict, float value)``.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
                mtype = parts[3].split()[0]
                if mtype not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {mtype!r}"
                    )
                types[parts[2]] = mtype
            # HELP and free comments pass through unvalidated.
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {raw!r}")
        labels: dict[str, str] = {}
        label_blob = match.group("labels")
        if label_blob:
            consumed = 0
            for lab in _LABEL_RE.finditer(label_blob):
                labels[lab.group(1)] = lab.group(2)
                consumed = lab.end()
            rest = label_blob[consumed:].strip().strip(",")
            if rest:
                raise ValueError(f"line {lineno}: bad labels: {label_blob!r}")
        value_text = match.group("value")
        try:
            if value_text in ("+Inf", "Inf"):
                value = math.inf
            elif value_text == "-Inf":
                value = -math.inf
            elif value_text == "NaN":
                value = math.nan
            else:
                value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {value_text!r}"
            ) from None
        samples.append((match.group("name"), labels, value))
    return {"types": types, "samples": samples}
