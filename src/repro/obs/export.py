"""Trace export formats: orphan re-rooting, Chrome trace-event, JSONL.

These functions operate on span *dictionaries* (``Span.to_dict`` shape),
not :class:`~repro.obs.tracing.Span` objects, so the same code serves
two producers: a live :class:`~repro.obs.tracing.TraceRecorder` and
``dlv trace export --url``, which fetches already-serialized spans from
a remote server's ``/v1/trace`` endpoint.

The Chrome output (:func:`to_chrome`) is the trace-event JSON format
loaded by ``chrome://tracing`` and Perfetto: every trace id becomes a
"process" row, every recording thread a track within it, and each span a
complete ("X") slice positioned on the epoch timeline (``wall_start``).
A distributed request whose hops all share one trace id therefore
renders as a single connected tree.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

__all__ = [
    "connected_roots",
    "group_by_trace",
    "mark_orphans",
    "to_chrome",
    "to_jsonl",
]


def mark_orphans(span_dicts: list[dict]) -> list[dict]:
    """Re-root spans whose buffered parent was evicted.

    The recorder's ring buffer drops oldest spans first, which can evict
    a parent while its children remain.  A child whose ``parent_id``
    resolves to no buffered span (and that has no ``remote_parent`` — a
    cross-hop link is *expected* to point outside the buffer) is
    re-rooted: ``parent_id`` becomes ``None``, the stale id is preserved
    under ``evicted_parent_id``, and the span is flagged
    ``truncated: true`` so consumers know the tree is incomplete.

    Returns new dicts; the input is not mutated.
    """
    present = {d.get("span_id") for d in span_dicts}
    out = []
    for d in span_dicts:
        parent = d.get("parent_id")
        if parent is not None and parent not in present:
            d = dict(d)
            d["parent_id"] = None
            d["evicted_parent_id"] = parent
            d["truncated"] = True
        out.append(d)
    return out


def group_by_trace(span_dicts: Iterable[dict]) -> dict[str, list[dict]]:
    """Bucket spans by ``trace_id`` (empty id groups under ``"untraced"``)."""
    traces: dict[str, list[dict]] = {}
    for d in span_dicts:
        traces.setdefault(d.get("trace_id") or "untraced", []).append(d)
    return traces


def to_chrome(span_dicts: list[dict]) -> dict:
    """Render spans as a Chrome trace-event JSON object.

    One ``pid`` per trace id (with a ``process_name`` metadata event
    naming it after the trace id prefix), one ``tid`` per recording
    thread, and one ``"X"`` complete event per span.  Timestamps and
    durations are microseconds on the ``wall_start`` epoch timeline, so
    concurrent hops of the same request line up horizontally.
    """
    spans = mark_orphans(span_dicts)
    events: list[dict] = []
    pid_of: dict[str, int] = {}
    for trace_id, members in group_by_trace(spans).items():
        pid = pid_of.setdefault(trace_id, len(pid_of) + 1)
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"trace {trace_id[:8]}"},
            }
        )
        for d in members:
            args = {
                "span_id": d.get("span_id"),
                "trace_id": trace_id,
                **({"parent_id": d["parent_id"]} if d.get("parent_id") is not None else {}),
                **({"remote_parent": d["remote_parent"]} if d.get("remote_parent") else {}),
                **({"error": d["error"]} if d.get("error") else {}),
                **({"truncated": True} if d.get("truncated") else {}),
                **{k: v for k, v in (d.get("attrs") or {}).items()},
            }
            events.append(
                {
                    "ph": "X",
                    "name": d.get("name", "?"),
                    "cat": "repro",
                    "pid": pid,
                    "tid": d.get("tid") or 0,
                    "ts": (d.get("wall_start") or 0.0) * 1e6,
                    "dur": (d.get("elapsed") or 0.0) * 1e6,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_jsonl(span_dicts: list[dict]) -> str:
    """One orphan-marked span dict per line (streaming-friendly)."""
    lines = [
        json.dumps(d, default=str, sort_keys=True)
        for d in mark_orphans(span_dicts)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def connected_roots(span_dicts: list[dict]) -> list[dict]:
    """The root spans (no parent, no remote parent) of a span set.

    Helper for assertions of the form "this request produced exactly one
    connected tree": a multi-hop trace whose hops were stitched by
    ``remote_parent`` links has exactly one such root.
    """
    return [
        d
        for d in mark_orphans(span_dicts)
        if d.get("parent_id") is None and not d.get("remote_parent")
    ]
