"""W3C-style distributed trace propagation.

A request that crosses a process boundary — ``ServeClient`` to
``ModelServer``, ``HubClient`` to a hub HTTP server — carries its trace
identity in a ``traceparent`` header (the W3C Trace Context wire format:
``"00-<32 hex trace id>-<16 hex parent span id>-<2 hex flags>"``).  The
receiving handler adopts it with ``trace_span(..., trace_id=...,
remote_parent=...)``, so spans on both sides of every hop share one
trace id and exports can stitch a whole request back into a single tree.

The :envvar:`TRACEPARENT` environment variable (the de-facto standard
for CLI processes) is honoured too: ``dlv serve`` adopts it at boot, so
a driver script that sets it sees the hub-pull spans of the boot join
its own trace.
"""

from __future__ import annotations

import os
import re
import secrets
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TraceContext",
    "TRACEPARENT_HEADER",
    "TRACEPARENT_ENV",
    "current_traceparent",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "parse_traceparent_env",
    "span_hex",
]

#: Canonical header name (HTTP headers are case-insensitive).
TRACEPARENT_HEADER = "traceparent"

#: Environment variable consulted by CLI entry points.
TRACEPARENT_ENV = "TRACEPARENT"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-"
    r"(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-"
    r"(?P<flags>[0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One hop's worth of trace identity.

    Attributes:
        trace_id: 32-hex id shared by every span of the request.
        span_id: 16-hex id of the *sending* side's span — the remote
            parent of whatever span the receiver opens.
        flags: W3C trace flags (``01`` = sampled; we always sample).
    """

    trace_id: str
    span_id: str
    flags: str = "01"


def new_trace_id() -> str:
    """A fresh random 32-hex (128-bit) trace id."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh random 16-hex (64-bit) span id."""
    return secrets.token_hex(8)


def span_hex(span) -> str:
    """The 16-hex wire form of a local span's integer id."""
    return format(span.span_id & ((1 << 64) - 1), "016x")


def format_traceparent(ctx: TraceContext) -> str:
    """Render a context as a ``traceparent`` header value."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-{ctx.flags}"


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` on absent or malformed.

    A malformed header is deliberately *not* an error: tracing must
    never fail a request, so garbage simply starts a fresh trace.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id = match.group("trace_id")
    span_id = match.group("span_id")
    # All-zero ids are invalid per the W3C spec.
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return TraceContext(trace_id, span_id, match.group("flags"))


def parse_traceparent_env(environ: Optional[dict] = None) -> Optional[TraceContext]:
    """The :envvar:`TRACEPARENT` context of this process, if any."""
    env = environ if environ is not None else os.environ
    return parse_traceparent(env.get(TRACEPARENT_ENV))


def current_traceparent() -> Optional[str]:
    """``traceparent`` value for the calling context's innermost span.

    ``None`` when no span is open — callers should then either open one
    or send no header (starting a fresh trace on the far side).
    """
    from repro.obs.tracing import current_span

    span = current_span()
    if span is None:
        return None
    return format_traceparent(TraceContext(span.trace_id, span_hex(span)))
