"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

The paper's claims are quantitative — retrieval latency, compression
ratio, progressive-query byte savings — so the reproduction needs a
uniform way to count and time what the system actually does.  A
:class:`MetricsRegistry` owns named metrics; the process-global default
registry (``repro.obs.get_registry()``) is what the built-in
instrumentation writes to, while components that need isolated counts
(tests, per-cache accounting) construct their own registry and inject it.

All metrics are thread-safe: retrieval uses thread pools, the hub may
serve concurrent requests, and the serving tier (:mod:`repro.serve`)
hammers one registry from every request thread.  The contract, audited
per primitive:

* Every *mutation* (``Counter.inc``, ``Gauge.set/inc/dec``,
  ``Histogram.observe``) holds the metric's lock, so no update is lost
  under contention — concurrent increments always sum exactly.
* *Reads* (``.value``, ``.count``, ``.sum``) are deliberately lockless:
  each is a single aligned attribute load, atomic under CPython, and a
  momentarily stale read is acceptable for telemetry.  Compound
  snapshots that must be internally consistent (``bucket_counts``,
  ``quantile``, ``to_dict``) do take the lock.
* :class:`MetricsRegistry` creation is get-or-create under the registry
  lock: racing threads asking for the same name always receive the
  *same* metric object, never two.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections import deque
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "RollingWindow",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_registry",
    "set_registry",
    "counter",
    "gauge",
    "histogram",
    "window",
    "dump_metrics",
    "reset_metrics",
]

#: Default histogram buckets for durations in seconds (1 µs .. 30 s).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Default histogram buckets for byte sizes (64 B .. 1 GiB).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    64, 1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30,
)


class Counter:
    """A monotonically increasing count (events, bytes, hits)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time value (cached bytes, current loss)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Fixed-bucket histogram of observations.

    Buckets are cumulative-style upper bounds: an observation lands in the
    first bucket whose bound is >= the value, or in the overflow bucket.
    Tracks count / sum / min / max alongside the bucket counts, which is
    enough to report mean latency and tail shape without storing samples.
    """

    __slots__ = ("name", "bounds", "_counts", "_overflow", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        bounds = tuple(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name} buckets must be sorted")
        self.name = name
        self.bounds = bounds
        self._counts = [0] * len(bounds)
        self._overflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self.bounds):
                self._counts[index] += 1
            else:
                self._overflow += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """`(upper_bound, count)` pairs; the overflow bucket bound is inf."""
        with self._lock:
            pairs = list(zip(self.bounds, self._counts))
            pairs.append((float("inf"), self._overflow))
        return pairs

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate.

        Returns the upper bound of the bucket holding the requested rank,
        clamped to the max observed value — so a histogram never reports
        a quantile larger than anything it actually saw (and never
        ``inf``, even when observations overflow the last bucket).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._count:
                return 0.0
            observed_max = self._max if self._max is not None else 0.0
            rank = q * self._count
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                if running >= rank:
                    return min(bound, observed_max)
            return observed_max

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min,
                "max": self._max,
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(self.bounds, self._counts)
                ] + [{"le": None, "count": self._overflow}],
            }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self.bounds)
            self._overflow = 0
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self._count}, mean={self.mean:.3g})"


class RollingWindow:
    """Exact percentiles over the last N observations.

    Histograms answer "what does latency look like since boot" at bucket
    resolution; SLO monitoring needs "what does latency look like *right
    now*" at full resolution.  A bounded deque of the most recent
    observations gives exact p50/p95/p99 over a sliding window at O(N)
    memory, recomputed (sorted) only when read — observation stays O(1).
    """

    __slots__ = ("name", "window", "_values", "_total", "_lock")

    def __init__(self, name: str, window: int = 512) -> None:
        if window <= 0:
            raise ValueError(f"window {name} size must be positive, got {window}")
        self.name = name
        self.window = window
        self._values: deque[float] = deque(maxlen=window)
        self._total = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(value)
            self._total += 1

    @property
    def count(self) -> int:
        """Observations currently in the window (<= ``window``)."""
        return len(self._values)

    @property
    def total(self) -> int:
        """Observations ever made, including those slid out."""
        return self._total

    def percentile(self, p: float) -> float:
        """Exact nearest-rank percentile over the window; 0.0 when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            values = sorted(self._values)
        if not values:
            return 0.0
        rank = max(0, min(len(values) - 1, int(round(p / 100.0 * len(values))) - 1))
        if p == 0.0:
            rank = 0
        return values[rank]

    def snapshot(self) -> dict:
        """p50/p95/p99 plus count/mean over the current window."""
        with self._lock:
            values = sorted(self._values)
            total = self._total
        if not values:
            return {"count": 0, "total": total, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}

        def rank_of(p: float) -> float:
            idx = max(0, min(len(values) - 1,
                             int(round(p / 100.0 * len(values))) - 1))
            return values[idx]

        return {
            "count": len(values),
            "total": total,
            "mean": sum(values) / len(values),
            "p50": rank_of(50.0),
            "p95": rank_of(95.0),
            "p99": rank_of(99.0),
        }

    def reset(self) -> None:
        with self._lock:
            self._values.clear()
            self._total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RollingWindow({self.name}, n={len(self._values)}/{self.window})"


class MetricsRegistry:
    """A namespace of metrics, created on first use.

    Names are dotted paths (``"cache.hits"``, ``"chunkstore.get_bytes"``).
    Re-requesting a name returns the existing metric; requesting a name
    already registered as a different metric type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | RollingWindow] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets)
        )

    def window(self, name: str, window: int = 512) -> RollingWindow:
        return self._get_or_create(
            name, RollingWindow, lambda: RollingWindow(name, window)
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """Look up a metric without creating it (None when absent)."""
        with self._lock:
            return self._metrics.get(name)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of every registered metric."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, dict] = {
            "counters": {}, "gauges": {}, "histograms": {}, "windows": {},
        }
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            elif isinstance(metric, RollingWindow):
                out["windows"][name] = metric.snapshot()
            else:
                out["histograms"][name] = metric.to_dict()
        return out

    def reset(self, prefix: str = "") -> None:
        """Zero every metric (optionally only those under a dotted prefix)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if not prefix or metric.name == prefix or metric.name.startswith(
                prefix + "."
            ):
                metric.reset()


# -- process-global default registry -----------------------------------------

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry built-in instrumentation writes to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def counter(name: str) -> Counter:
    """``get_registry().counter(name)`` shorthand."""
    return _default_registry.counter(name)


def gauge(name: str) -> Gauge:
    """``get_registry().gauge(name)`` shorthand."""
    return _default_registry.gauge(name)


def histogram(name: str, buckets: Optional[Iterable[float]] = None) -> Histogram:
    """``get_registry().histogram(name)`` shorthand."""
    return _default_registry.histogram(
        name, tuple(buckets) if buckets is not None else None
    )


def window(name: str, window: int = 512) -> RollingWindow:
    """``get_registry().window(name)`` shorthand."""
    return _default_registry.window(name, window)


def dump_metrics(
    path: Optional[str | Path] = None,
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Snapshot a registry (default: the global one), optionally to JSON.

    This is the hook the benchmark harness calls after every run so each
    results file gets a ``*.metrics.json`` sidecar.
    """
    snapshot = (registry or _default_registry).as_dict()
    if path is not None:
        Path(path).write_text(json.dumps(snapshot, indent=2, default=str))
    return snapshot


def reset_metrics(prefix: str = "") -> None:
    """Zero the global registry (optionally one dotted-prefix subtree)."""
    _default_registry.reset(prefix)
