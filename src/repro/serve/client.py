"""Minimal stdlib client for a running :class:`~repro.serve.ModelServer`.

``http.client`` only — the examples, benchmarks, and CI smoke test all
talk to the server through this, so the whole serving round-trip is
exercised without any third-party HTTP dependency.

Every ``predict`` opens a ``serve.client.predict`` span and sends its
identity in a ``traceparent`` header, so the server-side spans join the
client's trace — one trace id covers the whole distributed request.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Optional

import numpy as np

from repro.obs.propagation import (
    TRACEPARENT_HEADER,
    TraceContext,
    format_traceparent,
)
from repro.obs.tracing import trace_span

__all__ = ["Prediction", "ServeClient", "ServeError", "ServerOverloaded"]


class ServeError(RuntimeError):
    """Non-2xx response from the serving tier."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload


class ServerOverloaded(ServeError):
    """429 — the model's queue shed this request; retry after a backoff."""


class Prediction:
    """Parsed ``/v1/predict`` response."""

    def __init__(self, payload: dict) -> None:
        self.model: str = payload["model"]
        self.predictions = np.asarray(payload["predictions"], dtype=np.int64)
        self.resolved_planes = np.asarray(
            payload["resolved_planes"], dtype=np.int64
        )
        self.degraded: bool = bool(payload["degraded"])
        self.escalations: int = int(payload["escalations"])
        self.latency_ms: float = float(payload["latency_ms"])
        self.cost: Optional[dict] = payload.get("cost")
        self.trace_id: str = payload.get("trace_id", "")
        self.raw = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Prediction(model={self.model!r}, n={len(self.predictions)}, "
            f"max_planes={int(self.resolved_planes.max(initial=0))}, "
            f"degraded={self.degraded})"
        )


class ServeClient:
    """Talks JSON-over-HTTP to one server over a keep-alive connection.

    The connection is reused across calls (the server speaks HTTP/1.1
    with explicit Content-Length) and transparently re-established if
    the server closed it; under concurrent load this keeps clients out
    of the listener's accept backlog.  One client instance per thread —
    the underlying ``http.client`` connection is not thread-safe.

    Args:
        host / port: Where the server listens (``ModelServer.port``).
        timeout: Socket timeout per request, seconds.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        """Drop the persistent connection (reopened on next call)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
        extra_headers: Optional[dict] = None,
    ) -> tuple[int, bytes]:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Without TCP_NODELAY, Nagle holds the request body until
            # the header segment is ACKed (~40 ms with delayed ACKs).
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        headers = {"Content-Type": "application/json"} if payload else {}
        if extra_headers:
            headers.update(extra_headers)
        self._conn.request(method, path, body=payload, headers=headers)
        response = self._conn.getresponse()
        return response.status, response.read()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> dict:
        payload = json.dumps(body).encode() if body is not None else None
        try:
            status, raw = self._roundtrip(method, path, payload, headers)
        except (http.client.HTTPException, ConnectionError, BrokenPipeError):
            # Stale keep-alive connection (server closed it between
            # calls): reconnect once and retry.
            self.close()
            status, raw = self._roundtrip(method, path, payload, headers)
        try:
            data = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            data = {"error": raw.decode(errors="replace")}
        if status == 429:
            raise ServerOverloaded(status, data)
        if status >= 400:
            raise ServeError(status, data)
        return data

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def models(self) -> list[dict]:
        return self._request("GET", "/v1/models")["models"]

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def slowlog(self) -> dict:
        return self._request("GET", "/v1/slowlog")

    def trace(self) -> dict:
        """The server's span ring buffer (orphan-marked span dicts)."""
        return self._request("GET", "/v1/trace")

    def predict(
        self,
        model: str,
        inputs,
        start_planes: Optional[int] = None,
        exact: bool = False,
    ) -> Prediction:
        """Predict labels for ``inputs`` (list or array of examples).

        Args:
            model: Served model name (see :meth:`models`).
            inputs: One example or a batch; converted via ``tolist``.
            start_planes: Plane budget to start the progressive
                evaluation at (server default when omitted).
            exact: Skip progressive serving; answer at full precision.
        """
        body: dict = {
            "model": model,
            "inputs": np.asarray(inputs, dtype=np.float32).tolist(),
        }
        if start_planes is not None:
            body["start_planes"] = int(start_planes)
        if exact:
            body["exact"] = True
        with trace_span("serve.client.predict", model=model) as span:
            headers = {
                TRACEPARENT_HEADER: format_traceparent(
                    TraceContext(span.trace_id, span.hex_id)
                )
            }
            prediction = Prediction(
                self._request("POST", "/v1/predict", body, headers=headers)
            )
            span.set_attr("server_trace_id", prediction.trace_id)
        return prediction
