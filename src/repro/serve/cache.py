"""Process-wide LRU cache of reconstructed byte-plane artifacts.

The dedup-aware serving result of Zhou et al. ("Serving Deep Learning
Models with Deduplication from Relational Databases") is that serving
throughput lives or dies on sharing parameter storage across concurrent
requests.  PAS makes that sharing natural: the expensive artifacts —
per-plane interval bounds and full-precision weight tensors recreated
from chunk chains — depend only on ``(snapshot, planes)``, never on the
request, so one copy can serve every concurrent query against a
snapshot.

:class:`PlaneCache` holds those artifacts under a byte budget with LRU
eviction.  Loads are *single-flight*: when many requests miss the same
key at once, exactly one thread performs the PAS retrieval while the
rest wait for its result — a thundering herd of cold requests costs one
chunk-store read, not N.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.obs.cost import charge
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["PlaneCache"]


@dataclass
class _Entry:
    value: object
    nbytes: int


class PlaneCache:
    """Thread-safe, byte-bounded LRU with single-flight loading.

    Keys are arbitrary hashables (the serving layer uses
    ``("bounds", snapshot_id, planes)`` and ``("weights", snapshot_id)``).
    Loaders return ``(value, nbytes)``; the reported byte size is what
    the budget charges, since cached values are opaque to the cache.

    Args:
        max_bytes: Cache capacity; least-recently-used entries are
            evicted once the total charged bytes exceed it.  A value
            larger than the whole budget is returned uncached.
        registry: Metrics registry for the ``serve.cache.*`` counters;
            defaults to the process-global one so ``/metrics`` and
            ``dlv stats`` see the hit rate.
    """

    def __init__(
        self,
        max_bytes: int = 256 << 20,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.registry = registry if registry is not None else get_registry()
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._bytes = 0
        self._loading: set[Hashable] = set()
        self._cond = threading.Condition()
        self._hits = self.registry.counter("serve.cache.hits")
        self._misses = self.registry.counter("serve.cache.misses")
        self._evictions = self.registry.counter("serve.cache.evictions")
        self._bytes_gauge = self.registry.gauge("serve.cache.bytes")
        self._entries_gauge = self.registry.gauge("serve.cache.entries")

    # -- accounting ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._cond:
            return key in self._entries

    def stats(self) -> dict:
        """Zero-guarded counter snapshot (shape matches ``RetrievalCache``)."""
        hits, misses = self._hits.value, self._misses.value
        total = hits + misses
        with self._cond:
            cached_bytes, entries = self._bytes, len(self._entries)
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self._evictions.value,
            "hit_rate": hits / total if total else 0.0,
            "cached_bytes": cached_bytes,
            "entries": entries,
            "fill_fraction": cached_bytes / self.max_bytes,
        }

    def _sync_gauges(self) -> None:
        self._bytes_gauge.set(self._bytes)
        self._entries_gauge.set(len(self._entries))

    # -- access --------------------------------------------------------------

    def get(self, key: Hashable):
        """Peek without loading; ``None`` on a miss (not counted)."""
        with self._cond:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry.value

    def get_or_load(self, key: Hashable, loader: Callable[[], tuple]):
        """Return the cached value, loading it on a miss (single-flight).

        ``loader()`` must return ``(value, nbytes)``.  Concurrent callers
        missing the same key block until the one elected loader finishes;
        a loader that raises releases the waiters, and the first of them
        retries the load.
        """
        with self._cond:
            while True:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits.inc()
                    charge(cache_hits=1)
                    return entry.value
                if key not in self._loading:
                    self._loading.add(key)
                    break
                self._cond.wait()
        try:
            value, nbytes = loader()
        except BaseException:
            with self._cond:
                self._loading.discard(key)
                self._cond.notify_all()
            raise
        with self._cond:
            self._loading.discard(key)
            self._misses.inc()
            charge(cache_misses=1)
            self._admit(key, value, int(nbytes))
            self._cond.notify_all()
        return value

    def _admit(self, key: Hashable, value, nbytes: int) -> None:
        if nbytes > self.max_bytes:
            self._sync_gauges()
            return  # larger than the whole cache: serve without caching
        if key in self._entries:  # lost a (benign) race; replace
            self._bytes -= self._entries.pop(key).nbytes
        self._entries[key] = _Entry(value, nbytes)
        self._bytes += nbytes
        while self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._evictions.inc()
        self._sync_gauges()

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was cached."""
        with self._cond:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
            self._sync_gauges()
            return True

    def clear(self) -> None:
        with self._cond:
            self._entries.clear()
            self._bytes = 0
            self._sync_gauges()
