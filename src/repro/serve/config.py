"""Serving-tier configuration knobs.

One frozen dataclass carries every policy the server, scheduler, and
plane cache consult, so a whole deployment is describable as a single
value (and the ``dlv serve`` flags map onto it one-to-one).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.core.segmentation import NUM_PLANES

__all__ = ["ServeConfig"]


def _default_slowlog_ms() -> float:
    return float(os.environ.get("REPRO_SLOWLOG_MS", "250"))


@dataclass(frozen=True)
class ServeConfig:
    """Policy for one :class:`~repro.serve.ModelServer`.

    Attributes:
        host / port: Bind address; port 0 lets the OS pick (the bound
            port is readable from ``ModelServer.port`` after ``start``).
        max_batch: Most input rows one coalesced forward pass may carry.
        max_wait_ms: How long the scheduler holds an under-full batch
            open waiting for more requests at the same plane budget.
        queue_limit: Queued requests per model before admission control
            sheds new arrivals with HTTP 429.
        cache_bytes: Byte budget of the shared :class:`PlaneCache`.
        start_planes: Default plane budget a progressive request starts
            at when the client does not pick one.
        request_timeout_s: How long an HTTP handler waits for its ticket
            before answering 504.
        drain_timeout_s: Grace period a shutdown waits for in-flight
            requests before giving up on a clean drain.
        slowlog_ms: Wall-time threshold above which a predict request is
            recorded in the slow-request log (``dlv slowlog`` /
            ``/v1/slowlog``).  Defaults to the ``REPRO_SLOWLOG_MS``
            environment variable, falling back to 250 ms.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 16
    max_wait_ms: float = 5.0
    queue_limit: int = 64
    cache_bytes: int = 256 << 20
    start_planes: int = 1
    request_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0
    slowlog_ms: float = field(default_factory=_default_slowlog_ms)

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.cache_bytes <= 0:
            raise ValueError(
                f"cache_bytes must be positive, got {self.cache_bytes}"
            )
        if not 1 <= self.start_planes <= NUM_PLANES:
            raise ValueError(
                f"start_planes must be in [1, {NUM_PLANES}], "
                f"got {self.start_planes}"
            )
        if self.slowlog_ms < 0:
            raise ValueError(
                f"slowlog_ms must be >= 0, got {self.slowlog_ms}"
            )

    def with_overrides(self, **kwargs) -> "ServeConfig":
        """A copy with some fields replaced (None values are ignored)."""
        return replace(
            self, **{k: v for k, v in kwargs.items() if v is not None}
        )
