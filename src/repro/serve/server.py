"""The HTTP face of the serving tier: :class:`ModelServer`.

A thin stdlib ``ThreadingHTTPServer`` wrapper: every request thread
parses JSON, submits a ticket to the :class:`BatchScheduler`, and blocks
until the batched data path answers.  Endpoints:

========================  ====================================================
``GET /healthz``          Liveness; 503 once a drain has started.
``GET /v1/models``        Served snapshots and their shapes.
``GET /metrics``          ``repro.obs`` dump + plane-cache and queue stats
                          (JSON); Prometheus text exposition under
                          ``Accept: text/plain``.
``GET /v1/slowlog``       Requests that crossed the slow threshold.
``GET /v1/trace``         The span ring buffer (orphan-marked dicts).
``POST /v1/predict``      ``{"model", "inputs", "start_planes"?, "exact"?}``
========================  ====================================================

Predict responses carry the progressive-serving contract: per-row
``resolved_planes`` (which plane budget determined each answer),
``escalations``, and ``degraded: true`` whenever a lossy recovery path
(PR-3 degraded retrieval) supplied any plane along the way — plus the
request's ``cost`` bill and its ``trace_id``.

Requests arriving with a ``traceparent`` header join the sender's trace:
the handler's ``serve.predict`` span adopts the carried trace id and
records the remote span as its parent, and the identity is forwarded
across the thread hop into the batch worker, so one distributed trace
covers client, handler, and batch spans.

Snapshots whose stored network spec fails :func:`validate_network` are
refused at startup — a serving tier should not boot on a model that
static analysis can prove broken.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import obs
from repro.analysis.net_check import validate_network
from repro.dlv.repository import Repository
from repro.dnn.network import GraphError, Network
from repro.obs.cost import get_slowlog
from repro.obs.export import mark_orphans
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.propagation import TRACEPARENT_HEADER, parse_traceparent
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_text,
    wants_text,
)
from repro.obs.tracing import get_recorder, trace_span
from repro.serve.cache import PlaneCache
from repro.serve.config import ServeConfig
from repro.serve.scheduler import AdmissionError, BatchScheduler, ModelRuntime

__all__ = ["ModelServer"]


class _HTTPError(Exception):
    """Internal: carry an HTTP status + JSON body up to the dispatcher."""

    def __init__(self, status: int, payload: dict,
                 headers: Optional[dict] = None) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP exchange; state lives on ``server.model_server``."""

    protocol_version = "HTTP/1.1"
    server_version = "dlv-serve"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # requests are observable via /metrics, not stderr noise

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, {"error": f"invalid JSON body: {exc}"})
        if not isinstance(body, dict):
            raise _HTTPError(400, {"error": "request body must be an object"})
        return body

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        data = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        serve = self.server.model_server
        try:
            if method == "GET" and self.path == "/healthz":
                self._send_json(*serve.handle_health())
            elif method == "GET" and self.path == "/v1/models":
                self._send_json(200, serve.handle_models())
            elif method == "GET" and self.path == "/metrics":
                if wants_text(self.headers.get("Accept")):
                    self._send_text(
                        200,
                        serve.handle_metrics_text(),
                        PROMETHEUS_CONTENT_TYPE,
                    )
                else:
                    self._send_json(200, serve.handle_metrics())
            elif method == "GET" and self.path == "/v1/slowlog":
                self._send_json(200, serve.handle_slowlog())
            elif method == "GET" and self.path == "/v1/trace":
                self._send_json(200, serve.handle_trace())
            elif method == "POST" and self.path == "/v1/predict":
                self._send_json(
                    200,
                    serve.handle_predict(
                        self._read_json(),
                        traceparent=self.headers.get(TRACEPARENT_HEADER),
                    ),
                )
            else:
                self._send_json(
                    404, {"error": f"no route {method} {self.path}"}
                )
        except _HTTPError as exc:
            self._send_json(exc.status, exc.payload, exc.headers)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - surface, don't kill thread
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Nagle + delayed-ACK stalls every keep-alive request whose headers
    # and body land in separate segments (~40 ms each), and the default
    # accept backlog of 5 drops SYNs under concurrent connect bursts
    # (~1 s retransmit) — both fatal for a low-latency serving tier.
    disable_nagle_algorithm = True
    request_queue_size = 128
    model_server: "ModelServer"


class ModelServer:
    """Serves a repository's model snapshots over HTTP.

    Args:
        repo: An open :class:`Repository` or a path to one (paths are
            opened — and closed — by the server).
        config: Batching/caching/bind policy; defaults to
            :class:`ServeConfig`'s defaults.
        models: Version names to serve (default: every version that has a
            snapshot).  The latest version per name wins.
        registry: Metrics registry (defaults to the process-global one,
            so ``/metrics`` and ``dlv stats`` agree).
        strict: When True, a snapshot failing static validation aborts
            startup instead of being skipped with a counter.
    """

    def __init__(
        self,
        repo: Union[Repository, str, Path],
        config: Optional[ServeConfig] = None,
        models: Optional[list[str]] = None,
        registry: Optional[MetricsRegistry] = None,
        strict: bool = False,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else get_registry()
        self._owns_repo = not isinstance(repo, Repository)
        self.repo = (
            repo if isinstance(repo, Repository) else Repository.open(str(repo))
        )
        self.cache = PlaneCache(self.config.cache_bytes, registry=self.registry)
        self.scheduler = BatchScheduler(self.config, registry=self.registry)
        self.rejected: dict[str, str] = {}
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        # Guards lifecycle writes (_httpd/_thread/_stopped) so concurrent
        # start()/stop() callers cannot race; handler-thread reads stay
        # lockless.
        self._lifecycle = threading.Lock()
        self._load_models(models, strict)
        if not self.scheduler.models():
            raise ValueError("repository has no servable model snapshots")

    # -- model loading -------------------------------------------------------

    def _load_models(self, names: Optional[list[str]], strict: bool) -> None:
        """Build a runtime per served snapshot; refuse invalid networks."""
        # Passing the serve cache into the archive keys dedup page reads
        # by content hash, so pages shared across served models occupy
        # cache bytes once and concurrent loads single-flight.
        archive = self.repo.archive_view(plane_cache=self.cache)
        versions = [v for v in self.repo.list_versions() if v.snapshots]
        if names is not None:
            wanted = set(names)
            versions = [v for v in versions if v.name in wanted]
            missing = wanted - {v.name for v in versions}
            if missing:
                raise KeyError(
                    "no servable versions named "
                    + ", ".join(sorted(repr(n) for n in missing))
                )
        latest: dict[str, object] = {}
        for version in versions:  # list_versions is id-ordered: latest wins
            latest[version.name] = version
        rejected_counter = self.registry.counter("serve.models_rejected")
        for name, version in sorted(latest.items()):
            net = Network.from_spec(version.network)
            try:
                validate_network(net)
            except GraphError as exc:
                if strict:
                    raise
                self.rejected[name] = str(exc)
                rejected_counter.inc()
                continue
            snapshot = version.snapshots[-1]
            runtime = ModelRuntime(
                name=name,
                net=net.build(0),
                archive=archive,
                snapshot_id=snapshot.key,
                plane_cache=self.cache,
                meta={
                    "ref": version.ref,
                    "float_scheme": snapshot.float_scheme,
                },
            )
            self.scheduler.register(runtime)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ModelServer":
        """Bind, start the scheduler workers, and serve in a daemon thread."""
        with self._lifecycle:
            if self._httpd is not None:
                raise RuntimeError("server already started")
            self._httpd = _Server(
                (self.config.host, self.config.port), _Handler
            )
            self._httpd.model_server = self
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="serve-http",
                daemon=True,
            )
        self.scheduler.start()
        self._thread.start()
        self.registry.counter("serve.starts").inc()
        return self

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def stop(self, drain: bool = True) -> bool:
        """Shut down; with ``drain`` waits for in-flight work first.

        Returns True when the drain completed within the configured
        grace period (vacuously True for ``drain=False``).
        """
        with self._lifecycle:
            if self._stopped:
                return True
            self._stopped = True
        drained = True
        if drain:
            drained = self.scheduler.drain(self.config.drain_timeout_s)
        self.scheduler.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._owns_repo:
            self.repo.close()
        return drained

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=True)

    # -- endpoint logic (handler-thread context) -----------------------------

    def handle_health(self) -> tuple[int, dict]:
        if self.scheduler.draining or self._stopped:
            return 503, {"status": "draining"}
        return 200, {
            "status": "ok",
            "models": self.scheduler.models(),
            "outstanding": self.scheduler.outstanding(),
        }

    def handle_models(self) -> dict:
        return {
            "models": [
                self.scheduler.runtime(name).info()
                for name in self.scheduler.models()
            ],
            "rejected": dict(self.rejected),
        }

    def handle_metrics(self) -> dict:
        return {
            "metrics": obs.dump_metrics(registry=self.registry),
            "plane_cache": self.cache.stats(),
            "queues": self.scheduler.queue_depths(),
            "draining": self.scheduler.draining,
        }

    def handle_metrics_text(self) -> str:
        """Prometheus text exposition (``Accept: text/plain``)."""
        # Queue depths are already registry gauges; only the liveness of
        # the exposition itself needs adding.
        return render_text(self.registry)

    def handle_slowlog(self) -> dict:
        slowlog = get_slowlog()
        return {
            "threshold_ms": self.config.slowlog_ms,
            "capacity": slowlog.capacity,
            "total_recorded": slowlog.total_recorded,
            "entries": slowlog.entries(),
        }

    def handle_trace(self) -> dict:
        """The span ring buffer as orphan-marked dicts (for exporters)."""
        recorder = get_recorder()
        return {
            "total_recorded": recorder.total_recorded,
            "spans": mark_orphans([s.to_dict() for s in recorder.spans()]),
        }

    def handle_predict(
        self, body: dict, traceparent: Optional[str] = None
    ) -> dict:
        ctx = parse_traceparent(traceparent)
        with trace_span(
            "serve.predict",
            trace_id=ctx.trace_id if ctx else None,
            remote_parent=ctx.span_id if ctx else None,
        ) as span:
            model = body.get("model")
            if not isinstance(model, str):
                raise _HTTPError(400, {"error": "'model' must be a string"})
            span.set_attr("model", model)
            if "inputs" not in body:
                raise _HTTPError(400, {"error": "'inputs' is required"})
            try:
                x = np.asarray(body["inputs"], dtype=np.float32)
            except (TypeError, ValueError) as exc:
                raise _HTTPError(
                    400, {"error": f"'inputs' is not a numeric array: {exc}"}
                )
            start_planes = body.get("start_planes")
            if start_planes is not None and not isinstance(start_planes, int):
                raise _HTTPError(
                    400, {"error": "'start_planes' must be an int"}
                )
            try:
                runtime = self.scheduler.runtime(model)
            except KeyError:
                raise _HTTPError(
                    404,
                    {"error": f"unknown model {model!r}",
                     "models": self.scheduler.models(),
                     "rejected": dict(self.rejected)},
                )
            if x.ndim == len(runtime.net.input_shape):  # single example
                x = x[np.newaxis, ...]
            if tuple(x.shape[1:]) != runtime.net.input_shape:
                raise _HTTPError(
                    400,
                    {"error": (
                        f"input shape {list(x.shape[1:])} does not match "
                        f"model {model!r} input "
                        f"{list(runtime.net.input_shape)}"
                    )},
                )
            if self.scheduler.draining or self._stopped:
                raise _HTTPError(503, {"error": "server is draining"})
            span.set_attr("rows", len(x))
            try:
                ticket = self.scheduler.submit(
                    model, x,
                    start_planes=start_planes,
                    exact=bool(body.get("exact", False)),
                    trace=(span.trace_id, span.hex_id),
                )
            except AdmissionError as exc:
                raise _HTTPError(
                    429,
                    {"error": str(exc), "queue_depth": exc.depth,
                     "queue_limit": exc.limit},
                    headers={"Retry-After": "1"},
                )
            try:
                outcome = ticket.wait(self.config.request_timeout_s)
            except TimeoutError:
                raise _HTTPError(
                    504, {"error": "prediction timed out in the scheduler"}
                )
            except Exception as exc:  # noqa: BLE001 - worker-side failure
                raise _HTTPError(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            span.set_attr("cost", outcome.cost)
        self.registry.window("serve.predict").observe(outcome.seconds)
        get_slowlog().record(
            "serve.predict",
            outcome.seconds * 1000.0,
            trace_id=span.trace_id,
            cost=outcome.cost,
            attrs={"model": model, "rows": len(x)},
            threshold_ms=self.config.slowlog_ms,
        )
        return {
            "model": model,
            "predictions": outcome.predictions.tolist(),
            "resolved_planes": outcome.resolved_planes.tolist(),
            "degraded": outcome.degraded,
            "escalations": outcome.escalations,
            "latency_ms": outcome.seconds * 1000.0,
            "cost": outcome.cost,
            "trace_id": span.trace_id,
        }
