"""``repro.serve`` — concurrent model serving over DLV repositories.

The paper's lifecycle story ends where most model lifecycles actually
spend their time: *serving*.  This subsystem turns a DLV repository into
a prediction service whose data path is built from the storage layer's
own primitives:

* **Shared plane cache** (:class:`PlaneCache`) — per-plane interval
  bounds and exact weight tensors reconstructed from PAS are cached
  process-wide under a byte budget, with single-flight loading, so N
  concurrent cold requests cost one chunk-store read.
* **Request batching** (:class:`BatchScheduler`) — concurrent predict
  requests against the same ``(model, plane budget)`` coalesce into one
  batched forward pass under a max-batch / max-wait policy, behind a
  bounded queue that sheds overload with HTTP 429.
* **Progressive escalation** — requests are answered at the lowest plane
  budget whose interval bounds determine the label (Lemma 4); only the
  ambiguous rows escalate budget by budget, and any plane served through
  PR-3's degraded-retrieval fallback marks the response ``degraded``.

:class:`ModelServer` wires these behind a stdlib threaded HTTP server
(``dlv serve`` on the command line); :class:`ServeClient` is the
matching stdlib client.  Everything reports through :mod:`repro.obs`
(``serve.*`` metrics) and snapshots that fail :mod:`repro.analysis`
network validation are refused at startup.
"""

from repro.serve.cache import PlaneCache
from repro.serve.client import (
    Prediction,
    ServeClient,
    ServeError,
    ServerOverloaded,
)
from repro.serve.config import ServeConfig
from repro.serve.scheduler import (
    AdmissionError,
    BatchScheduler,
    ModelRuntime,
    PredictOutcome,
    PredictTicket,
)
from repro.serve.server import ModelServer

__all__ = [
    "AdmissionError",
    "BatchScheduler",
    "ModelRuntime",
    "ModelServer",
    "PlaneCache",
    "PredictOutcome",
    "PredictTicket",
    "Prediction",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerOverloaded",
]
