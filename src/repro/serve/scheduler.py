"""Request batching, admission control, and progressive escalation.

The serving data path.  Each served snapshot gets one worker thread and
one bounded queue; HTTP handler threads submit :class:`PredictTicket`\\ s
and block, while the worker coalesces everything queued at the same
``(model, plane budget)`` into a single batched forward pass — a
max-batch / max-wait policy, so a lone request is not held hostage and a
burst is amortized into one DAG traversal.

Progressive escalation happens *between* batches: a request enters at
the lowest plane budget, the interval pass answers the rows Lemma 4
determines, and only the ambiguous remainder is re-queued (at the front,
to bound its latency) for the next budget — joining whatever other
requests are already waiting there.  The queue is bounded; when it is
full new arrivals are shed with :class:`AdmissionError`, which the HTTP
layer maps to 429.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.progressive import ProgressiveEvaluator
from repro.core.retrieval import PlanArchive
from repro.core.segmentation import NUM_PLANES
from repro.core.storage_graph import ROOT
from repro.dnn.network import Network
from repro.obs.cost import RequestCost, cost_context
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import trace_span

__all__ = [
    "AdmissionError",
    "BatchScheduler",
    "ModelRuntime",
    "PredictOutcome",
    "PredictTicket",
]

#: Histogram buckets for batch sizes (rows and coalesced requests).
BATCH_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class AdmissionError(RuntimeError):
    """The model's queue is full — the request was shed (HTTP 429)."""

    def __init__(self, model: str, depth: int, limit: int) -> None:
        super().__init__(
            f"model {model!r} queue is full ({depth}/{limit} requests)"
        )
        self.model = model
        self.depth = depth
        self.limit = limit


@dataclass
class PredictOutcome:
    """What a completed predict request resolves to.

    Attributes:
        predictions: Final label per input row (exact — either determined
            by Lemma 4 at some plane budget or computed at full precision).
        resolved_planes: Plane budget that determined each row.
        degraded: True when any plane read along the way took the lossy
            zero-fill recovery path, so bounds/weights were approximate.
        escalations: How many times the request's remainder was re-queued
            at a deeper budget.
        seconds: Queue-to-completion wall time.
        cost: The request's bill (:meth:`repro.obs.RequestCost.to_dict`
            shape): bytes/planes read, cache traffic, queue-wait vs.
            compute time, batch amortization.
    """

    predictions: np.ndarray
    resolved_planes: np.ndarray
    degraded: bool
    escalations: int
    seconds: float
    cost: dict = field(default_factory=dict)


class _Request:
    """Scheduler-internal state of one predict call."""

    __slots__ = (
        "x", "predictions", "resolved", "pending", "planes", "degraded",
        "escalations", "event", "error", "enqueued_at", "finished_at",
        "trace_id", "parent_hex", "cost", "queued_since",
    )

    def __init__(
        self,
        x: np.ndarray,
        planes: int,
        trace: Optional[tuple[str, str]] = None,
    ) -> None:
        n = len(x)
        self.x = x
        self.predictions = np.full(n, -1, dtype=np.int64)
        self.resolved = np.full(n, -1, dtype=np.int64)
        self.pending = np.arange(n)
        self.planes = planes
        self.degraded = False
        self.escalations = 0
        self.event = threading.Event()
        self.error: Optional[BaseException] = None
        self.enqueued_at = time.monotonic()
        self.finished_at = 0.0
        # Trace identity of the submitting side (the worker thread has no
        # inherited context, so the hop is carried explicitly).
        self.trace_id = trace[0] if trace else ""
        self.parent_hex = trace[1] if trace else None
        self.cost = RequestCost()
        # Reset on every (re-)queue so queue-wait sums across escalations.
        self.queued_since = self.enqueued_at


class PredictTicket:
    """Caller-side handle on a submitted request."""

    def __init__(self, request: _Request) -> None:
        self._request = request

    def done(self) -> bool:
        return self._request.event.is_set()

    def wait(self, timeout: Optional[float] = None) -> PredictOutcome:
        """Block until the request completes; re-raises worker errors.

        Raises:
            TimeoutError: the request did not finish within ``timeout``.
        """
        request = self._request
        if not request.event.wait(timeout):
            raise TimeoutError("predict request timed out in the scheduler")
        if request.error is not None:
            raise request.error
        return PredictOutcome(
            predictions=request.predictions,
            resolved_planes=request.resolved,
            degraded=request.degraded,
            escalations=request.escalations,
            seconds=request.finished_at - request.enqueued_at,
            cost=request.cost.to_dict(),
        )


class ModelRuntime:
    """One served snapshot: built network, reusable evaluator, cache hooks.

    Only the model's single worker thread calls :meth:`bounded` and
    :meth:`exact_many`, so the degraded-plane bookkeeping needs no lock;
    the underlying evaluator and plane cache are thread-safe regardless.

    Args:
        name: Serving name (what ``/v1/predict`` requests address).
        net: Built network matching the snapshot's architecture.
        archive: The PAS layout holding the snapshot (opened with
            ``degraded=True`` when lossy recovery should be permitted).
        snapshot_id: Snapshot key inside the archive.
        plane_cache: Shared :class:`~repro.serve.PlaneCache`; bounds and
            weights land there so concurrent models/requests share one
            retrieval.
        meta: Free-form description reported by ``/v1/models``.
    """

    def __init__(
        self,
        name: str,
        net: Network,
        archive: PlanArchive,
        snapshot_id: str,
        plane_cache=None,
        meta: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.net = net
        self.archive = archive
        self.snapshot_id = snapshot_id
        self.meta = dict(meta or {})
        self.evaluator = ProgressiveEvaluator(
            net, archive, snapshot_id, plane_cache=plane_cache
        )
        self._degraded_planes: set[int] = set()
        self._chain_ids = self._payload_chain(archive, snapshot_id)

    @staticmethod
    def _payload_chain(archive: PlanArchive, snapshot_id: str) -> set[str]:
        """Every payload id a retrieval of this snapshot may touch."""
        ids: set[str] = set()
        manifest = archive.manifest
        for matrix_id in archive._snapshots[snapshot_id]:
            current = matrix_id
            while current != ROOT and current not in ids:
                ids.add(current)
                current = manifest[current].parent
        return ids

    def _note_recovery(self, planes: int, events_before: int) -> None:
        """Record lossy recoveries that touched this snapshot's chains."""
        for event in self.archive.recovery.events[events_before:]:
            if not event.exact and event.matrix_id in self._chain_ids:
                self._degraded_planes.add(planes)

    def degraded_at(self, planes: int) -> bool:
        return planes in self._degraded_planes

    def bounded(
        self, x: np.ndarray, planes: int
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Interval pass at one budget: ``(determined, labels, degraded)``."""
        before = len(self.archive.recovery.events)
        determined, labels = self.evaluator.evaluate_bounded(x, planes)
        self._note_recovery(planes, before)
        return determined, labels, self.degraded_at(planes)

    def exact_many(
        self, batches: list[np.ndarray]
    ) -> tuple[list[np.ndarray], bool]:
        """Full-precision labels per batch via one coalesced forward pass."""
        before = len(self.archive.recovery.events)
        outputs = self.evaluator.forward_exact_many(batches)
        self._note_recovery(NUM_PLANES, before)
        labels = [np.argmax(out, axis=1) for out in outputs]
        return labels, self.degraded_at(NUM_PLANES)

    def info(self) -> dict:
        """``/v1/models`` row."""
        return {
            "name": self.name,
            "snapshot": self.snapshot_id,
            "input_shape": list(self.net.input_shape),
            "param_count": self.net.param_count(),
            **self.meta,
        }


class _ModelWorker(threading.Thread):
    """Single consumer of one model's request queue."""

    def __init__(
        self,
        runtime: ModelRuntime,
        config,
        registry: MetricsRegistry,
    ) -> None:
        super().__init__(name=f"serve-{runtime.name}", daemon=True)
        self.runtime = runtime
        self.config = config
        self._queue: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._halt = False
        self._outstanding = 0
        self._shed = registry.counter("serve.shed")
        self._completed = registry.counter("serve.completed")
        self._errors = registry.counter("serve.errors")
        self._escalations = registry.counter("serve.escalations")
        self._predictions = registry.counter("serve.predictions")
        self._degraded = registry.counter("serve.degraded_responses")
        self._depth = registry.gauge(f"serve.queue_depth.{runtime.name}")
        self._batch_rows = registry.histogram(
            "serve.batch_rows", BATCH_BUCKETS
        )
        self._batch_requests = registry.histogram(
            "serve.batch_requests", BATCH_BUCKETS
        )
        self._batch_seconds = registry.histogram("serve.batch_seconds")
        self._request_seconds = registry.histogram("serve.request_seconds")

    # -- producer side -------------------------------------------------------

    def submit(self, request: _Request) -> None:
        with self._cond:
            if self._halt:
                raise RuntimeError(
                    f"model {self.runtime.name!r} worker is stopped"
                )
            if len(self._queue) >= self.config.queue_limit:
                self._shed.inc()
                raise AdmissionError(
                    self.runtime.name, len(self._queue),
                    self.config.queue_limit,
                )
            self._queue.append(request)
            self._outstanding += 1
            self._depth.set(len(self._queue))
            self._cond.notify()

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def outstanding(self) -> int:
        with self._cond:
            return self._outstanding

    def stop(self) -> None:
        """Stop consuming; fail whatever is still queued."""
        with self._cond:
            self._halt = True
            dropped = list(self._queue)
            self._queue.clear()
            self._outstanding -= len(dropped)
            self._depth.set(0)
            self._cond.notify_all()
        for request in dropped:
            request.error = RuntimeError("server stopped before execution")
            request.event.set()
        if dropped:
            self._errors.inc(len(dropped))

    # -- consumer side -------------------------------------------------------

    def run(self) -> None:  # pragma: no cover - exercised via the public API
        while True:
            collected = self._collect()
            if collected is None:
                return
            bucket, planes = collected
            self._process(bucket, planes)

    def _collect(self) -> Optional[tuple[list[_Request], int]]:
        """Wait for work, then gather one (planes-homogeneous) batch.

        The batch window is anchored to the *oldest* request's enqueue
        time, so ``max_wait_ms`` bounds the latency batching may add to
        any request rather than stalling every batch for the full
        window.  Requests that already waited their share — notably
        escalated remainders re-queued at the front — close the window
        immediately.  Returns ``None`` when stopped and idle.
        """
        cfg = self.config
        with self._cond:
            while not self._queue:
                if self._halt:
                    return None
                self._cond.wait()
            target = self._queue[0].planes
            deadline = self._queue[0].enqueued_at + cfg.max_wait_ms / 1000.0
            bucket: list[_Request] = []
            rows = 0
            while True:
                kept: deque[_Request] = deque()
                while self._queue:
                    request = self._queue.popleft()
                    if request.planes == target and rows < cfg.max_batch:
                        bucket.append(request)
                        rows += int(request.pending.size)
                    else:
                        kept.append(request)
                self._queue = kept
                self._depth.set(len(self._queue))
                remaining = deadline - time.monotonic()
                if rows >= cfg.max_batch or remaining <= 0 or self._halt:
                    return bucket, target
                self._cond.wait(timeout=remaining)

    def _process(self, bucket: list[_Request], planes: int) -> None:
        runtime = self.runtime
        batches = [request.x[request.pending] for request in bucket]
        rows = sum(len(batch) for batch in batches)
        self._batch_rows.observe(rows)
        self._batch_requests.observe(len(bucket))
        now = time.monotonic()
        for request in bucket:
            request.cost.add(queue_wait_s=now - request.queued_since)
        # The worker thread inherits no context from the HTTP handlers:
        # adopt the first request's trace identity explicitly so the
        # batch span joins its distributed trace (coalesced requests from
        # other traces are noted as an attribute).
        lead = next((r for r in bucket if r.trace_id), None)
        try:
            with trace_span(
                "serve.batch",
                trace_id=lead.trace_id if lead else None,
                remote_parent=lead.parent_hex if lead else None,
                model=runtime.name,
                planes=planes,
                requests=len(bucket),
                rows=rows,
            ) as span:
                coalesced = {r.trace_id for r in bucket if r.trace_id}
                if len(coalesced) > 1:
                    span.set_attr("coalesced_traces", len(coalesced))
                with cost_context() as batch_cost:
                    if planes >= NUM_PLANES:
                        self._process_exact(bucket, batches, batch_cost)
                    else:
                        self._process_bounded(
                            bucket, batches, planes, batch_cost
                        )
            self._batch_seconds.observe(span.elapsed)
        except Exception as exc:  # noqa: BLE001 - fail the bucket, keep serving
            self._errors.inc(len(bucket))
            for request in bucket:
                request.error = exc
                request.event.set()
            with self._cond:
                self._outstanding -= len(bucket)

    def _process_exact(
        self,
        bucket: list[_Request],
        batches: list[np.ndarray],
        batch_cost: RequestCost,
    ) -> None:
        labels, degraded = self.runtime.exact_many(batches)
        for request, request_labels in zip(bucket, labels):
            request.predictions[request.pending] = request_labels
            request.resolved[request.pending] = NUM_PLANES
            request.pending = np.empty(0, dtype=np.int64)
            request.degraded |= degraded
            # Merge BEFORE event.set() (inside _complete): the waiting
            # handler thread must observe a fully-billed cost.
            request.cost.merge(batch_cost, shared=len(bucket))
            self._complete(request)

    def _process_bounded(
        self,
        bucket: list[_Request],
        batches: list[np.ndarray],
        planes: int,
        batch_cost: RequestCost,
    ) -> None:
        determined, labels, degraded = self.runtime.bounded(
            np.concatenate(batches, axis=0), planes
        )
        offsets = np.cumsum([len(batch) for batch in batches])[:-1]
        escalated: list[_Request] = []
        for request, det, lab in zip(
            bucket,
            np.split(determined, offsets),
            np.split(labels, offsets),
        ):
            done = request.pending[det]
            request.predictions[done] = lab[det]
            request.resolved[done] = planes
            request.pending = request.pending[~det]
            request.degraded |= degraded
            # Every participant is billed this batch's work (merge before
            # event.set() so the waiting handler sees a complete cost).
            request.cost.merge(batch_cost, shared=len(bucket))
            if request.pending.size == 0:
                self._complete(request)
            else:
                request.planes = planes + 1
                request.escalations += 1
                self._escalations.inc()
                escalated.append(request)
        if escalated:
            # Front of the queue: escalated remainders are the oldest
            # work, so they pre-empt fresh arrivals.
            with self._cond:
                now = time.monotonic()
                for request in reversed(escalated):
                    request.queued_since = now
                    self._queue.appendleft(request)
                self._depth.set(len(self._queue))
                self._cond.notify()

    def _complete(self, request: _Request) -> None:
        request.finished_at = time.monotonic()
        request.event.set()
        self._completed.inc()
        self._predictions.inc(len(request.x))
        if request.degraded:
            self._degraded.inc()
        self._request_seconds.observe(
            request.finished_at - request.enqueued_at
        )
        with self._cond:
            self._outstanding -= 1


class BatchScheduler:
    """Owns one worker + queue per registered model runtime.

    Args:
        config: The :class:`~repro.serve.ServeConfig` batching policy.
        registry: Metrics registry for the ``serve.*`` instruments
            (defaults to the process-global one).
    """

    def __init__(self, config, registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self._workers: dict[str, _ModelWorker] = {}
        self._requests = self.registry.counter("serve.requests")
        self._started = False
        self._draining = False
        # Guards lifecycle writes (_workers/_started/_draining); reads on
        # the hot submit path stay lockless, matching repro.obs's
        # locked-writes/lockless-reads contract.
        self._lock = threading.Lock()

    # -- registration / lifecycle --------------------------------------------

    def register(self, runtime: ModelRuntime) -> None:
        worker = _ModelWorker(runtime, self.config, self.registry)
        with self._lock:
            if runtime.name in self._workers:
                raise ValueError(
                    f"model {runtime.name!r} already registered"
                )
            self._workers[runtime.name] = worker
            started = self._started
        if started:
            worker.start()

    def models(self) -> list[str]:
        return sorted(self._workers)

    def runtime(self, model: str) -> ModelRuntime:
        return self._workers[model].runtime

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            workers = list(self._workers.values())
        for worker in workers:
            worker.start()

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new work and wait for in-flight requests to finish.

        Returns True when every queue emptied within ``timeout``.
        """
        with self._lock:
            self._draining = True
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while self.outstanding() > 0:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.005)
        return True

    def stop(self) -> None:
        """Stop all workers; queued-but-unstarted requests fail."""
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            worker.stop()
        for worker in workers:
            if worker.is_alive():
                worker.join(timeout=5.0)
        with self._lock:
            self._started = False

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        model: str,
        x: np.ndarray,
        start_planes: Optional[int] = None,
        exact: bool = False,
        trace: Optional[tuple[str, str]] = None,
    ) -> PredictTicket:
        """Queue a predict request; returns a waitable ticket.

        Args:
            trace: Optional ``(trace_id, parent_span_hex)`` pair carrying
                the submitting side's trace identity across the thread
                hop into the worker (the batch span adopts it).

        Raises:
            KeyError: unknown model.
            AdmissionError: queue full (shed) or server draining.
        """
        worker = self._workers[model]
        if self._draining:
            raise AdmissionError(model, worker.queue_depth(),
                                 self.config.queue_limit)
        x = np.asarray(x, dtype=np.float32)
        if exact:
            planes = NUM_PLANES
        else:
            planes = start_planes if start_planes is not None else (
                self.config.start_planes
            )
            planes = max(1, min(int(planes), NUM_PLANES))
        request = _Request(x, planes, trace=trace)
        self._requests.inc()
        if len(x) == 0:
            request.finished_at = request.enqueued_at
            request.event.set()
            return PredictTicket(request)
        worker.submit(request)
        return PredictTicket(request)

    # -- introspection -------------------------------------------------------

    def queue_depths(self) -> dict[str, int]:
        return {
            name: worker.queue_depth()
            for name, worker in self._workers.items()
        }

    def outstanding(self) -> int:
        return sum(w.outstanding() for w in self._workers.values())
