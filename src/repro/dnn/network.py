"""DAG-structured networks.

ModelHub's conceptual DNN data model (Sec. III-A) views a model as a DAG
whose nodes are unit operators (layers) and whose edges are the
``(f_i, f_{i-1})`` dependencies.  :class:`Network` implements that model:
most nodes consume a single upstream node (the special ``INPUT`` sentinel
for the first layer), while multi-input layers (``Add`` — residual skip
connections, ``Concat``) consume several; any number of downstream nodes
may consume a node's output.

The class carries the structural *mutation* API that DQL ``construct``
queries compile to — inserting a node by splitting an outgoing edge,
deleting a node, and slicing a sub-network between two nodes — plus the
serialization used by the DLV catalog (``Node``/``Edge`` relations), and a
reverse-topological ``backward`` that accumulates gradients correctly
through fan-out and fan-in.
"""

from __future__ import annotations

import copy
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.dnn.interval import Interval
from repro.dnn.layers import Layer, layer_from_spec

INPUT = "@input"


class GraphError(ValueError):
    """A structurally invalid network DAG.

    Raised with the offending node names spelled out — cycles, inputs
    referencing nodes that do not exist, and validation failures from
    ``build(validate=True)`` all surface through this type.
    """


class NetworkNode:
    """A named node in the model DAG: a layer plus its upstream edges."""

    def __init__(self, layer: Layer, input_names: tuple[str, ...]) -> None:
        self.layer = layer
        self.input_names = tuple(input_names)

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def input_name(self) -> str:
        """The primary (first) upstream node — chain operations use it."""
        return self.input_names[0]

    @input_name.setter
    def input_name(self, value: str) -> None:
        self.input_names = (value, *self.input_names[1:])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkNode({self.name!r} <- {list(self.input_names)!r})"


class Network:
    """A DAG of layers with forward/backward evaluation and mutations.

    Args:
        input_shape: Shape of a single input example, excluding the batch
            dimension — ``(C, H, W)`` for images, ``(D,)`` for flat data.
        name: Human-readable model name (DLV model versions require one).
    """

    def __init__(self, input_shape: tuple, name: str = "model") -> None:
        self.name = name
        self.input_shape = tuple(input_shape)
        self._nodes: dict[str, NetworkNode] = {}
        self._built = False

    # -- construction ------------------------------------------------------

    def add(
        self,
        layer: Layer,
        input_name: Optional[str] = None,
        extra_inputs: Iterable[str] = (),
    ) -> "Network":
        """Append a layer.

        By default the layer consumes the current sink (the last layer
        added), forming a chain; pass ``input_name`` to branch, and
        ``extra_inputs`` for multi-input layers (``Add``, ``Concat``).
        Returns ``self`` for chaining.
        """
        if layer.name in self._nodes or layer.name == INPUT:
            raise ValueError(f"duplicate node name {layer.name!r}")
        if input_name is None:
            input_name = self._last_added if self._nodes else INPUT
        inputs = (input_name, *extra_inputs)
        for upstream in inputs:
            if upstream != INPUT and upstream not in self._nodes:
                raise KeyError(f"unknown input node {upstream!r}")
        if layer.multi_input and len(inputs) < 2:
            raise ValueError(
                f"{layer.name!r} is multi-input; pass extra_inputs"
            )
        if not layer.multi_input and len(inputs) != 1:
            raise ValueError(
                f"{layer.name!r} is single-input; got {len(inputs)} inputs"
            )
        self._nodes[layer.name] = NetworkNode(layer, inputs)
        self._last_added = layer.name
        self._built = False
        return self

    def build(self, seed: int = 0, validate: bool = False) -> "Network":
        """Allocate all parameters with a deterministic RNG and infer shapes.

        With ``validate=True`` the static graph validator
        (:func:`repro.analysis.net_check.check_network`) runs first and a
        :class:`GraphError` listing every error-severity diagnostic is
        raised *before* any weights are allocated — this is the hook DQL's
        strict mode uses to reject shape-mismatched mutations cheaply.
        """
        if validate:
            # Imported lazily: repro.analysis depends on this module.
            from repro.analysis.net_check import validate_network

            validate_network(self)
        rng = np.random.default_rng(seed)
        shapes: dict[str, tuple] = {INPUT: self.input_shape}
        for name in self.topological_order():
            node = self._nodes[name]
            if node.layer.multi_input:
                in_shape = [shapes[i] for i in node.input_names]
            else:
                in_shape = shapes[node.input_name]
            shapes[name] = node.layer.build(in_shape, rng)
        self._built = True
        return self

    @property
    def is_built(self) -> bool:
        return self._built

    # -- structure access ----------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __getitem__(self, name: str) -> Layer:
        return self._nodes[name].layer

    def nodes(self) -> Iterator[NetworkNode]:
        return iter(self._nodes.values())

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def layers(self) -> Iterator[Layer]:
        for node in self._nodes.values():
            yield node.layer

    def edges(self) -> list[tuple[str, str]]:
        """All ``(from, to)`` edges, including edges from ``INPUT``."""
        return [
            (upstream, node.name)
            for node in self._nodes.values()
            for upstream in node.input_names
        ]

    def consumers(self, name: str) -> list[str]:
        """Names of nodes consuming ``name``'s output."""
        return [
            n.name for n in self._nodes.values() if name in n.input_names
        ]

    def predecessor(self, name: str) -> str:
        """The primary upstream node feeding ``name`` (possibly ``INPUT``)."""
        return self._nodes[name].input_name

    def inputs_of(self, name: str) -> tuple[str, ...]:
        """All upstream nodes feeding ``name``."""
        return self._nodes[name].input_names

    def sinks(self) -> list[str]:
        """Nodes whose output nobody consumes."""
        consumed = {
            upstream
            for node in self._nodes.values()
            for upstream in node.input_names
        }
        return [name for name in self._nodes if name not in consumed]

    @property
    def output_name(self) -> str:
        """The single output node; raises when the DAG has several sinks."""
        sinks = self.sinks()
        if len(sinks) != 1:
            raise ValueError(f"network has {len(sinks)} sinks: {sinks}")
        return sinks[0]

    def dangling_inputs(self) -> list[tuple[str, str]]:
        """``(node, missing_input)`` pairs for edges into nonexistent nodes."""
        return [
            (node.name, upstream)
            for node in self._nodes.values()
            for upstream in node.input_names
            if upstream != INPUT and upstream not in self._nodes
        ]

    def topological_order(self) -> list[str]:
        """Kahn topological order of the node names.

        Raises:
            GraphError: When the graph is not a well-formed DAG — a node
                consumes an input that does not exist, or the nodes form a
                cycle.  The message names the offending nodes.
        """
        dangling = self.dangling_inputs()
        if dangling:
            detail = ", ".join(
                f"{node!r} consumes missing node {upstream!r}"
                for node, upstream in dangling
            )
            raise GraphError(f"network has dangling inputs: {detail}")
        indegree = {name: 0 for name in self._nodes}
        for node in self._nodes.values():
            for upstream in node.input_names:
                if upstream != INPUT:
                    indegree[node.name] += 1
        ready = [n for n, d in indegree.items() if d == 0]
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for consumer in self.consumers(name):
                # Parallel edges (e.g. Add with twice the same input after
                # a delete mutation) count once per edge.
                indegree[consumer] -= self._nodes[consumer].input_names.count(
                    name
                )
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._nodes):
            stuck = sorted(set(self._nodes) - set(order))
            raise GraphError(
                f"network contains a cycle through nodes: {stuck}"
            )
        return order

    def param_count(self) -> int:
        """Total learnable parameters across all layers."""
        return sum(layer.param_count() for layer in self.layers())

    def parametric_layers(self) -> list[Layer]:
        """Layers with learnable weights, in topological order."""
        return [
            self._nodes[name].layer
            for name in self.topological_order()
            if self._nodes[name].layer.is_parametric
        ]

    # -- evaluation ----------------------------------------------------------

    def _gather(self, node: NetworkNode, values: dict):
        if node.layer.multi_input:
            return [values[i] for i in node.input_names]
        return values[node.input_name]

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        upto: Optional[str] = None,
    ) -> np.ndarray:
        """Run the forward pass and return the output of ``upto`` (or the sink)."""
        self._require_built()
        target = upto if upto is not None else self.output_name
        if target not in self._nodes:
            raise KeyError(f"unknown node {target!r}")
        if tuple(x.shape[1:]) != self.input_shape:
            raise ValueError(
                f"input shape {tuple(x.shape[1:])} does not match the "
                f"network's {self.input_shape} (batch dimension excluded)"
            )
        values: dict[str, np.ndarray] = {INPUT: x}
        for name in self.topological_order():
            node = self._nodes[name]
            values[name] = node.layer.forward(
                self._gather(node, values), training
            )
            if name == target and not training:
                break
        return values[target]

    def backward(self, grad: np.ndarray, from_node: str) -> np.ndarray:
        """Backpropagate ``grad`` from a node's output to the input.

        Requires a preceding ``forward(..., training=True)``.  Gradients
        accumulate correctly through fan-out (a node consumed by several
        downstream nodes) and fan-in (multi-input layers); parametric
        layers record their parameter gradients in ``layer.grads``.

        Returns:
            The gradient with respect to the network input.
        """
        self._require_built()
        if from_node not in self._nodes:
            raise KeyError(f"unknown node {from_node!r}")
        grads: dict[str, np.ndarray] = {from_node: grad}
        for name in reversed(self.topological_order()):
            if name not in grads:
                continue
            node = self._nodes[name]
            upstream_grads = node.layer.backward(grads.pop(name))
            if not node.layer.multi_input:
                upstream_grads = [upstream_grads]
            for upstream, g in zip(node.input_names, upstream_grads):
                if upstream in grads:
                    grads[upstream] = grads[upstream] + g
                else:
                    grads[upstream] = g
        return grads.get(INPUT)

    def forward_interval(
        self,
        x: np.ndarray,
        param_bounds: Optional[dict[str, dict[str, Interval]]] = None,
        upto: Optional[str] = None,
    ) -> Interval:
        """Interval forward pass with per-layer parameter bounds.

        Args:
            x: Exact input batch.
            param_bounds: ``{layer_name: {param_name: Interval}}`` — bounds
                for weights known only up to their high-order byte segments.
                Layers absent from the mapping use their exact parameters.
            upto: Evaluate up to this node (default: the unique sink).
        """
        self._require_built()
        target = upto if upto is not None else self.output_name
        values: dict[str, Interval] = {INPUT: Interval.exact(x)}
        for name in self.topological_order():
            node = self._nodes[name]
            bounds = None if param_bounds is None else param_bounds.get(name)
            values[name] = node.layer.forward_interval(
                self._gather(node, values), bounds
            )
            if name == target:
                break
        return values[target]

    def forward_many(
        self,
        batches: Sequence[np.ndarray],
        upto: Optional[str] = None,
    ) -> list[np.ndarray]:
        """Run several input batches through one concatenated forward pass.

        The serving layer's batching entry point: concurrent predict
        requests coalesce here so the DAG is traversed once per batch
        window instead of once per request.  Per-batch outputs come back
        in submission order, split along the batch axis.
        """
        arrays = [np.asarray(batch, dtype=np.float32) for batch in batches]
        if not arrays:
            return []
        for array in arrays:
            if tuple(array.shape[1:]) != self.input_shape:
                raise ValueError(
                    f"input shape {tuple(array.shape[1:])} does not match "
                    f"the network's {self.input_shape} (batch dim excluded)"
                )
        out = self.forward(np.concatenate(arrays, axis=0), upto=upto)
        offsets = np.cumsum([len(a) for a in arrays])[:-1]
        return np.split(out, offsets, axis=0)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted label per example (argmax of the sink output)."""
        return np.argmax(self.forward(x), axis=1)

    # -- weights -------------------------------------------------------------

    def get_weights(self) -> dict[str, dict[str, np.ndarray]]:
        """Copy of all parameters: ``{layer_name: {param_name: array}}``."""
        self._require_built()
        return {
            layer.name: {k: v.copy() for k, v in layer.params.items()}
            for layer in self.layers()
            if layer.is_parametric
        }

    def set_weights(self, weights: dict[str, dict[str, np.ndarray]]) -> None:
        """Load parameters produced by :meth:`get_weights`.

        Layers absent from ``weights`` keep their current values — this is
        the substrate for fine-tuning, where only some layers are reused.
        """
        self._require_built()
        for layer_name, params in weights.items():
            if layer_name not in self._nodes:
                raise KeyError(f"no layer named {layer_name!r}")
            layer = self._nodes[layer_name].layer
            for key, value in params.items():
                if key not in layer.params:
                    raise KeyError(f"layer {layer_name!r} has no param {key!r}")
                if layer.params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {layer_name}.{key}: "
                        f"{layer.params[key].shape} vs {value.shape}"
                    )
                layer.params[key] = np.asarray(value, dtype=np.float32).copy()

    # -- mutations -----------------------------------------------------------

    def _replace_input(self, consumer: str, old: str, new: str) -> None:
        node = self._nodes[consumer]
        node.input_names = tuple(
            new if upstream == old else upstream
            for upstream in node.input_names
        )

    def insert_after(self, anchor: str, layer: Layer) -> "Network":
        """Insert ``layer`` by splitting the outgoing edges of ``anchor``.

        This is DQL's ``insert`` mutation: the new node consumes ``anchor``
        and every former consumer of ``anchor`` now consumes the new node.
        """
        if anchor not in self._nodes:
            raise KeyError(f"unknown anchor node {anchor!r}")
        if layer.name in self._nodes:
            raise ValueError(f"duplicate node name {layer.name!r}")
        if layer.multi_input:
            raise ValueError("cannot insert a multi-input layer on one edge")
        for consumer in self.consumers(anchor):
            self._replace_input(consumer, anchor, layer.name)
        self._nodes[layer.name] = NetworkNode(layer, (anchor,))
        self._last_added = layer.name
        self._built = False
        return self

    def delete_node(self, name: str) -> "Network":
        """Delete a node, reconnecting its consumers to its predecessor.

        This is DQL's ``delete`` mutation.  Multi-input consumers keep
        their arity: the deleted node is replaced by its primary input.
        """
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")
        upstream = self._nodes[name].input_name
        for consumer in self.consumers(name):
            self._replace_input(consumer, name, upstream)
        del self._nodes[name]
        self._built = False
        return self

    def slice_between(self, start: str, end: str, name: Optional[str] = None) -> "Network":
        """Extract the sub-network of all paths from ``start`` to ``end``.

        This implements DQL's ``slice`` operator.  The result is a new
        network whose input is what fed ``start``; every other included
        node must have all of its inputs inside the slice.
        """
        if start not in self._nodes or end not in self._nodes:
            raise KeyError(f"slice endpoints must exist: {start!r}, {end!r}")
        on_path = self._nodes_between(start, end)
        if not on_path:
            raise ValueError(f"no path from {start!r} to {end!r}")
        start_input = self._nodes[start].layer.input_shape or self.input_shape
        if start_input and isinstance(start_input[0], (tuple, list)):
            # Multi-input start nodes have no single input shape.
            raise ValueError(f"cannot slice from multi-input node {start!r}")
        sliced = Network(start_input, name=name or f"{self.name}-slice")
        for node_name in self.topological_order():
            if node_name not in on_path:
                continue
            node = self._nodes[node_name]
            layer = copy.deepcopy(node.layer)
            if node_name == start:
                inputs: tuple[str, ...] = (INPUT,)
            else:
                missing = [
                    i for i in node.input_names
                    if i not in on_path and i != INPUT
                ]
                if missing:
                    raise ValueError(
                        f"slice would cut inputs {missing} of {node_name!r}"
                    )
                inputs = node.input_names
            sliced.add(layer, inputs[0], inputs[1:])
        # A slice of a built network keeps its layers' shapes and weights.
        sliced._built = self._built
        return sliced

    def _nodes_between(self, start: str, end: str) -> set[str]:
        reachable_from_start: set[str] = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            if current in reachable_from_start:
                continue
            reachable_from_start.add(current)
            frontier.extend(self.consumers(current))
        reaches_end: set[str] = set()
        frontier = [end]
        while frontier:
            current = frontier.pop()
            if current in reaches_end or current == INPUT:
                continue
            reaches_end.add(current)
            frontier.extend(self._nodes[current].input_names)
        return reachable_from_start & reaches_end

    def clone(self, name: Optional[str] = None) -> "Network":
        """Deep structural + parameter copy."""
        cloned = copy.deepcopy(self)
        if name is not None:
            cloned.name = name
        return cloned

    # -- serialization ---------------------------------------------------------

    def spec(self) -> dict:
        """JSON-serializable structural description (no weights)."""
        return {
            "name": self.name,
            "input_shape": list(self.input_shape),
            "nodes": [
                {
                    "layer": self._nodes[n].layer.spec(),
                    "input": self._nodes[n].input_name,
                    "extra_inputs": list(self._nodes[n].input_names[1:]),
                }
                for n in self.topological_order()
            ],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "Network":
        """Reconstruct an (unbuilt) network from :meth:`spec` output."""
        net = cls(tuple(spec["input_shape"]), name=spec.get("name", "model"))
        for entry in spec["nodes"]:
            net.add(
                layer_from_spec(entry["layer"]),
                entry["input"],
                entry.get("extra_inputs", ()),
            )
        return net

    def architecture_signature(self) -> str:
        """Compact regex-style architecture string (cf. Table I)."""
        parts = []
        for name in self.topological_order():
            layer = self._nodes[name].layer
            if layer.kind in ("CONV", "POOL", "FULL"):
                parts.append(layer.kind[0] + layer.kind[1:].lower())
        return "".join(f"L{p}" for p in parts)

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(
                "network is not built; call .build(seed) after construction "
                "or mutation"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network({self.name!r}, input={self.input_shape}, "
            f"nodes={len(self._nodes)})"
        )


def chain(input_shape: tuple, layers: Iterable[Layer], name: str = "model") -> Network:
    """Convenience constructor for a linear chain of layers."""
    net = Network(input_shape, name=name)
    for layer in layers:
        net.add(layer)
    return net
