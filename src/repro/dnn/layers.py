"""Layer implementations for the numpy DNN substrate.

A layer follows the paper's formulation ``L_i : (W, H, X) -> Y`` — a
function from an input tensor to an output tensor, with learnable
parameters ``W`` and fixed hyperparameters ``H`` (Sec. II).  Layers are the
unit of composition in ModelHub's data model: DQL selectors match layers by
kind and name, and PAS archives each layer's parameter matrices
independently.

Every layer supports three evaluation modes:

* ``forward`` — the ordinary float forward pass (training or inference);
* ``backward`` — gradient computation for the trainer;
* ``forward_interval`` — a sound interval forward pass given parameter
  bounds, used by progressive query evaluation (Sec. IV-D).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dnn import initializers
from repro.dnn.im2col import col2im, conv_output_size, im2col
from repro.dnn.interval import (
    Interval,
    interval_add_bias,
    interval_matmul,
    interval_relu,
    interval_sigmoid,
    interval_tanh,
)


class Layer:
    """Base class for all layers.

    Attributes:
        name: Unique node name within a network (e.g. ``"conv1"``).
        kind: DQL template kind (``"CONV"``, ``"POOL"``, ``"FULL"``, ...).
        hyperparams: The fixed hyperparameters ``H`` of the layer.
        params: Learnable parameter arrays keyed by name (``"W"``, ``"b"``).
        grads: Gradients of the last backward pass, same keys as ``params``.
        multi_input: True for layers consuming several upstream tensors
            (``Add``, ``Concat``); their ``forward`` takes a list and their
            ``backward`` returns a list of input gradients.
    """

    kind: str = "LAYER"
    multi_input: bool = False

    def __init__(self, name: str, **hyperparams) -> None:
        self.name = name
        self.hyperparams: dict = dict(hyperparams)
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.input_shape: Optional[tuple] = None
        self.output_shape: Optional[tuple] = None
        self._cache: dict = {}

    # -- lifecycle ---------------------------------------------------------

    def build(self, input_shape: tuple, rng: np.random.Generator) -> tuple:
        """Allocate parameters for ``input_shape`` and return the output shape.

        Shapes exclude the batch dimension: ``(C, H, W)`` for images and
        ``(D,)`` for flat features.
        """
        self.input_shape = tuple(input_shape)
        self.output_shape = self._build(self.input_shape, rng)
        return self.output_shape

    def _build(self, input_shape: tuple, rng: np.random.Generator) -> tuple:
        del rng
        return input_shape

    @property
    def is_parametric(self) -> bool:
        """True when the layer has learnable weights (``W != {}``)."""
        return bool(self.params)

    def param_count(self) -> int:
        """Total number of learnable scalars."""
        return int(sum(p.size for p in self.params.values()))

    # -- evaluation --------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        """Interval forward pass.

        Args:
            x: Interval over the input tensor.
            params: Optional interval bounds per parameter name.  When
                omitted, the layer's exact parameters are used (degenerate
                intervals), which makes ``forward_interval`` agree with
                ``forward`` up to float64 rounding.
        """
        raise NotImplementedError

    def _param_interval(
        self, key: str, params: Optional[dict[str, Interval]]
    ) -> Interval:
        if params is not None and key in params:
            return params[key]
        return Interval.exact(self.params[key])

    # -- serialization -----------------------------------------------------

    def spec(self) -> dict:
        """JSON-serializable structural description (no weights)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "hyperparams": dict(self.hyperparams),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hp = ", ".join(f"{k}={v}" for k, v in self.hyperparams.items())
        return f"{type(self).__name__}({self.name!r}, {hp})"


class Conv2D(Layer):
    """2-D convolution over ``(N, C, H, W)`` inputs via im2col."""

    kind = "CONV"

    def __init__(
        self,
        name: str,
        filters: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        init: str = "he",
    ) -> None:
        super().__init__(
            name, filters=filters, kernel=kernel, stride=stride, pad=pad,
            init=init,
        )

    def _build(self, input_shape: tuple, rng: np.random.Generator) -> tuple:
        if len(input_shape) != 3:
            raise ValueError(f"{self.name}: Conv2D needs (C, H, W), got {input_shape}")
        c, h, w = input_shape
        hp = self.hyperparams
        k, s, p = hp["kernel"], hp["stride"], hp["pad"]
        oh = conv_output_size(h, k, s, p)
        ow = conv_output_size(w, k, s, p)
        w_shape = (hp["filters"], c, k, k)
        # Preserve trained weights across re-builds (e.g. after a DQL
        # mutation elsewhere in the DAG) as long as shapes still match.
        if self.params.get("W") is None or self.params["W"].shape != w_shape:
            init = initializers.get_initializer(hp["init"])
            self.params["W"] = init(w_shape, rng)
            self.params["b"] = initializers.zeros((hp["filters"],), rng)
        return (hp["filters"], oh, ow)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        hp = self.hyperparams
        k, s, p = hp["kernel"], hp["stride"], hp["pad"]
        n = x.shape[0]
        cols, oh, ow = im2col(x, k, s, p)
        w_mat = self.params["W"].reshape(hp["filters"], -1)
        out = cols @ w_mat.T + self.params["b"]
        out = out.reshape(n, oh, ow, hp["filters"]).transpose(0, 3, 1, 2)
        if training:
            self._cache = {"cols": cols, "x_shape": x.shape, "oh": oh, "ow": ow}
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        hp = self.hyperparams
        k, s, p = hp["kernel"], hp["stride"], hp["pad"]
        cols = self._cache["cols"]
        x_shape = self._cache["x_shape"]
        n, f = grad.shape[0], hp["filters"]
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, f)
        w_mat = self.params["W"].reshape(f, -1)
        self.grads["W"] = (grad_mat.T @ cols).reshape(self.params["W"].shape)
        self.grads["b"] = grad_mat.sum(axis=0)
        dcols = grad_mat @ w_mat
        return col2im(dcols, x_shape, k, s, p)

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        hp = self.hyperparams
        k, s, p = hp["kernel"], hp["stride"], hp["pad"]
        n = x.lo.shape[0]
        cols_lo, oh, ow = im2col(x.lo, k, s, p)
        cols_hi, _, _ = im2col(x.hi, k, s, p)
        cols = Interval(cols_lo, cols_hi)
        w = self._param_interval("W", params)
        f = hp["filters"]
        w_mat = Interval(
            w.lo.reshape(f, -1).T, w.hi.reshape(f, -1).T
        )
        out = interval_matmul(cols, w_mat)
        b = self._param_interval("b", params)
        out = interval_add_bias(out, b)
        lo = out.lo.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
        hi = out.hi.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
        return Interval(lo, hi)


class _Pool2D(Layer):
    """Shared machinery for max/average pooling."""

    def __init__(self, name: str, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__(
            name, kernel=kernel, stride=stride if stride is not None else kernel
        )

    def _build(self, input_shape: tuple, rng: np.random.Generator) -> tuple:
        del rng
        if len(input_shape) != 3:
            raise ValueError(f"{self.name}: pooling needs (C, H, W), got {input_shape}")
        c, h, w = input_shape
        k, s = self.hyperparams["kernel"], self.hyperparams["stride"]
        return (c, conv_output_size(h, k, s, 0), conv_output_size(w, k, s, 0))

    def _patches(self, x: np.ndarray) -> tuple[np.ndarray, int, int, int, int]:
        n, c, h, w = x.shape
        k, s = self.hyperparams["kernel"], self.hyperparams["stride"]
        cols, oh, ow = im2col(x.reshape(n * c, 1, h, w), k, s, 0)
        return cols, n, c, oh, ow


class MaxPool2D(_Pool2D):
    """Max pooling; the DQL template for it is ``POOL("MAX")``."""

    kind = "POOL"

    def __init__(self, name: str, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__(name, kernel, stride)
        self.hyperparams["mode"] = "MAX"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, n, c, oh, ow = self._patches(x)
        arg = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), arg]
        if training:
            self._cache = {
                "arg": arg, "cols_shape": cols.shape, "x_shape": x.shape,
                "dims": (n, c, oh, ow),
            }
        return out.reshape(n, c, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k, s = self.hyperparams["kernel"], self.hyperparams["stride"]
        n, c, oh, ow = self._cache["dims"]
        x_shape = self._cache["x_shape"]
        dcols = np.zeros(self._cache["cols_shape"], dtype=grad.dtype)
        dcols[np.arange(dcols.shape[0]), self._cache["arg"]] = grad.reshape(-1)
        nn, cc, h, w = x_shape
        dx = col2im(dcols, (nn * cc, 1, h, w), k, s, 0)
        return dx.reshape(x_shape)

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        cols_lo, n, c, oh, ow = self._patches(x.lo)
        cols_hi, _, _, _, _ = self._patches(x.hi)
        lo = cols_lo.max(axis=1).reshape(n, c, oh, ow)
        hi = cols_hi.max(axis=1).reshape(n, c, oh, ow)
        return Interval(lo, hi)


class AvgPool2D(_Pool2D):
    """Average pooling; the DQL template for it is ``POOL("AVG")``."""

    kind = "POOL"

    def __init__(self, name: str, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__(name, kernel, stride)
        self.hyperparams["mode"] = "AVG"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, n, c, oh, ow = self._patches(x)
        if training:
            self._cache = {"x_shape": x.shape, "cols_shape": cols.shape,
                           "dims": (n, c, oh, ow)}
        return cols.mean(axis=1).reshape(n, c, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k, s = self.hyperparams["kernel"], self.hyperparams["stride"]
        x_shape = self._cache["x_shape"]
        cols_shape = self._cache["cols_shape"]
        dcols = np.repeat(
            grad.reshape(-1, 1) / cols_shape[1], cols_shape[1], axis=1
        )
        nn, cc, h, w = x_shape
        dx = col2im(dcols, (nn * cc, 1, h, w), k, s, 0)
        return dx.reshape(x_shape)

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        cols_lo, n, c, oh, ow = self._patches(x.lo)
        cols_hi, _, _, _, _ = self._patches(x.hi)
        lo = cols_lo.mean(axis=1).reshape(n, c, oh, ow)
        hi = cols_hi.mean(axis=1).reshape(n, c, oh, ow)
        return Interval(lo, hi)


class Dense(Layer):
    """Fully connected (inner product) layer; DQL template ``FULL``."""

    kind = "FULL"

    def __init__(self, name: str, units: int, init: str = "xavier") -> None:
        super().__init__(name, units=units, init=init)

    def _build(self, input_shape: tuple, rng: np.random.Generator) -> tuple:
        if len(input_shape) != 1:
            raise ValueError(
                f"{self.name}: Dense needs flat input (D,), got {input_shape}; "
                "insert a Flatten layer"
            )
        units = self.hyperparams["units"]
        w_shape = (input_shape[0], units)
        # Preserve trained weights across re-builds when shapes still match.
        if self.params.get("W") is None or self.params["W"].shape != w_shape:
            init = initializers.get_initializer(self.hyperparams["init"])
            self.params["W"] = init(w_shape, rng)
            self.params["b"] = initializers.zeros((units,), rng)
        return (units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache = {"x": x}
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._cache["x"]
        self.grads["W"] = x.T @ grad
        self.grads["b"] = grad.sum(axis=0)
        return grad @ self.params["W"].T

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        w = self._param_interval("W", params)
        b = self._param_interval("b", params)
        return interval_add_bias(interval_matmul(x, w), b)


class Flatten(Layer):
    """Reshape image tensors to flat feature vectors."""

    kind = "FLATTEN"

    def _build(self, input_shape: tuple, rng: np.random.Generator) -> tuple:
        del rng
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache = {"x_shape": x.shape}
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._cache["x_shape"])

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        n = x.lo.shape[0]
        return x.reshape(n, -1)


class ReLU(Layer):
    """Rectified linear activation; DQL template ``RELU``."""

    kind = "RELU"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache = {"mask": x > 0}
        return np.maximum(x, 0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._cache["mask"]

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        return interval_relu(x)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    kind = "SIGMOID"

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out.astype(x.dtype)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = self._sigmoid(x)
        if training:
            self._cache = {"y": y}
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        y = self._cache["y"]
        return grad * y * (1.0 - y)

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        return interval_sigmoid(x)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    kind = "TANH"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = np.tanh(x)
        if training:
            self._cache = {"y": y}
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        y = self._cache["y"]
        return grad * (1.0 - y * y)

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        return interval_tanh(x)


class Softmax(Layer):
    """Softmax over the class dimension.

    Networks typically end with this layer; the trainer fuses it with the
    cross-entropy loss for a numerically stable gradient, and progressive
    evaluation works on its (order-preserving) input logits.
    """

    kind = "SOFTMAX"

    @staticmethod
    def _softmax(x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = self._softmax(x)
        if training:
            self._cache = {"y": y}
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        y = self._cache["y"]
        dot = (grad * y).sum(axis=1, keepdims=True)
        return y * (grad - dot)

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        # Sound bounds: y_i is minimised when x_i is at its lower bound and
        # every other logit at its upper bound (and vice versa).
        lo_e = np.exp(x.lo - x.hi.max(axis=1, keepdims=True))
        hi_e = np.exp(x.hi - x.hi.max(axis=1, keepdims=True))
        sum_hi = hi_e.sum(axis=1, keepdims=True)
        sum_lo = lo_e.sum(axis=1, keepdims=True)
        y_lo = lo_e / (lo_e + (sum_hi - hi_e))
        y_hi = hi_e / (hi_e + (sum_lo - lo_e))
        return Interval(y_lo, np.maximum(y_lo, y_hi))


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    kind = "DROPOUT"

    def __init__(self, name: str, rate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        super().__init__(name, rate=rate, seed=seed)
        self._rng = np.random.default_rng(seed)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        rate = self.hyperparams["rate"]
        if not training or rate == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= rate) / (1.0 - rate)
        self._cache = {"mask": mask}
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._cache["mask"]

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        return x


class LocalResponseNorm(Layer):
    """AlexNet-style local response normalization across channels."""

    kind = "LRN"

    def __init__(
        self,
        name: str,
        size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 2.0,
    ) -> None:
        super().__init__(name, size=size, alpha=alpha, beta=beta, k=k)

    def _window_sum(self, sq: np.ndarray) -> np.ndarray:
        """Sliding-window sum of ``sq`` along the channel axis."""
        size = self.hyperparams["size"]
        half = size // 2
        c = sq.shape[1]
        padded = np.pad(sq, ((0, 0), (half, half), (0, 0), (0, 0)))
        cumsum = np.cumsum(padded, axis=1)
        cumsum = np.concatenate(
            [np.zeros_like(cumsum[:, :1]), cumsum], axis=1
        )
        return cumsum[:, size:] - cumsum[:, : c + 2 * half - size + 1]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        hp = self.hyperparams
        scale = hp["k"] + (hp["alpha"] / hp["size"]) * self._window_sum(x * x)
        y = x * np.power(scale, -hp["beta"])
        if training:
            self._cache = {"x": x, "scale": scale, "y": y}
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        hp = self.hyperparams
        x, scale, y = self._cache["x"], self._cache["scale"], self._cache["y"]
        direct = grad * np.power(scale, -hp["beta"])
        inner = grad * y / scale
        cross = self._window_sum(inner)
        return direct - (2.0 * hp["alpha"] * hp["beta"] / hp["size"]) * x * cross

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        del params
        hp = self.hyperparams
        # Bounds on the squared activations.
        sq_hi = np.maximum(x.lo * x.lo, x.hi * x.hi)
        spans_zero = (x.lo <= 0) & (x.hi >= 0)
        sq_lo = np.where(spans_zero, 0.0, np.minimum(x.lo * x.lo, x.hi * x.hi))
        coef = hp["alpha"] / hp["size"]
        scale_lo = hp["k"] + coef * self._window_sum(sq_lo)
        scale_hi = hp["k"] + coef * self._window_sum(sq_hi)
        # scale > 0 everywhere, so scale^-beta is in [scale_hi^-b, scale_lo^-b].
        inv_lo = np.power(scale_hi, -hp["beta"])
        inv_hi = np.power(scale_lo, -hp["beta"])
        # y = x * s where s in [inv_lo, inv_hi] > 0: four-candidate product.
        cands = np.stack(
            [x.lo * inv_lo, x.lo * inv_hi, x.hi * inv_lo, x.hi * inv_hi]
        )
        return Interval(cands.min(axis=0), cands.max(axis=0))


class BatchNorm(Layer):
    """Batch normalization over the channel axis.

    Normalizes with batch statistics during training (maintaining running
    estimates) and with the running estimates at inference, followed by a
    learned per-channel affine ``gamma * x + beta``.  Works on both
    ``(N, C, H, W)`` and ``(N, D)`` inputs.
    """

    kind = "BNORM"

    def __init__(self, name: str, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__(name, momentum=momentum, eps=eps)
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None

    def _build(self, input_shape: tuple, rng: np.random.Generator) -> tuple:
        del rng
        channels = input_shape[0]
        if self.params.get("gamma") is None or self.params[
            "gamma"
        ].shape != (channels,):
            self.params["gamma"] = np.ones(channels, dtype=np.float32)
            self.params["beta"] = np.zeros(channels, dtype=np.float32)
        if self.running_mean is None or self.running_mean.shape != (channels,):
            self.running_mean = np.zeros(channels, dtype=np.float32)
            self.running_var = np.ones(channels, dtype=np.float32)
        return input_shape

    def _axes(self, x: np.ndarray) -> tuple:
        return (0,) if x.ndim == 2 else (0, 2, 3)

    def _shape_for(self, x: np.ndarray, vec: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            return vec
        return vec.reshape(1, -1, 1, 1)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        hp = self.hyperparams
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = hp["momentum"]
            self.running_mean = (
                m * self.running_mean + (1 - m) * mean
            ).astype(np.float32)
            self.running_var = (
                m * self.running_var + (1 - m) * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + hp["eps"])
        x_hat = (x - self._shape_for(x, mean)) * self._shape_for(x, inv_std)
        out = (
            x_hat * self._shape_for(x, self.params["gamma"])
            + self._shape_for(x, self.params["beta"])
        )
        if training:
            self._cache = {
                "x_hat": x_hat, "inv_std": inv_std, "axes": axes,
                "count": x.size // x.shape[1] if x.ndim == 4 else x.shape[0],
            }
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        axes = self._cache["axes"]
        count = self._cache["count"]
        self.grads["gamma"] = (grad * x_hat).sum(axis=axes)
        self.grads["beta"] = grad.sum(axis=axes)
        gamma = self._shape_for(grad, self.params["gamma"])
        dx_hat = grad * gamma
        # Standard batch-norm input gradient.
        term1 = dx_hat
        term2 = self._shape_for(grad, dx_hat.sum(axis=axes) / count)
        term3 = x_hat * self._shape_for(
            grad, (dx_hat * x_hat).sum(axis=axes) / count
        )
        return (term1 - term2 - term3) * self._shape_for(grad, inv_std)

    def forward_interval(
        self, x: Interval, params: Optional[dict[str, Interval]] = None
    ) -> Interval:
        """Inference-mode bounds: a per-channel affine map with interval
        gamma/beta and exact running statistics."""
        hp = self.hyperparams
        gamma = self._param_interval("gamma", params)
        beta = self._param_interval("beta", params)
        inv_std = 1.0 / np.sqrt(self.running_var + hp["eps"])
        mean = self.running_mean
        scale_lo = self._shape_for(x.lo, gamma.lo * inv_std)
        scale_hi = self._shape_for(x.lo, gamma.hi * inv_std)
        centered = Interval(
            x.lo - self._shape_for(x.lo, mean),
            x.hi - self._shape_for(x.hi, mean),
        )
        # Product of interval (centered) with interval scale: 4 candidates.
        cands = np.stack([
            centered.lo * scale_lo, centered.lo * scale_hi,
            centered.hi * scale_lo, centered.hi * scale_hi,
        ])
        lo = cands.min(axis=0) + self._shape_for(x.lo, beta.lo)
        hi = cands.max(axis=0) + self._shape_for(x.hi, beta.hi)
        return Interval(lo, hi)

    def spec(self) -> dict:
        base = super().spec()
        if self.running_mean is not None:
            base["hyperparams"]["running_mean"] = self.running_mean.tolist()
            base["hyperparams"]["running_var"] = self.running_var.tolist()
        return base


class Add(Layer):
    """Elementwise sum of several inputs — the residual (skip) connection."""

    kind = "ADD"
    multi_input = True

    def _build(self, input_shape, rng: np.random.Generator) -> tuple:
        del rng
        shapes = input_shape  # list of shapes for multi-input layers
        if len(shapes) < 2:
            raise ValueError(f"{self.name}: Add needs >= 2 inputs")
        first = tuple(shapes[0])
        for shape in shapes[1:]:
            if tuple(shape) != first:
                raise ValueError(
                    f"{self.name}: Add inputs must share a shape, got {shapes}"
                )
        return first

    def forward(self, xs: list, training: bool = False) -> np.ndarray:
        if training:
            self._cache = {"n": len(xs)}
        total = xs[0]
        for x in xs[1:]:
            total = total + x
        return total

    def backward(self, grad: np.ndarray) -> list:
        return [grad] * self._cache["n"]

    def forward_interval(self, xs: list, params=None) -> Interval:
        del params
        lo = xs[0].lo
        hi = xs[0].hi
        for x in xs[1:]:
            lo = lo + x.lo
            hi = hi + x.hi
        return Interval(lo, hi)


class Concat(Layer):
    """Concatenation along the channel axis (axis 1)."""

    kind = "CONCAT"
    multi_input = True

    def _build(self, input_shape, rng: np.random.Generator) -> tuple:
        del rng
        shapes = [tuple(s) for s in input_shape]
        if len(shapes) < 2:
            raise ValueError(f"{self.name}: Concat needs >= 2 inputs")
        tails = {shape[1:] for shape in shapes}
        if len(tails) != 1:
            raise ValueError(
                f"{self.name}: Concat inputs must agree beyond the channel "
                f"axis, got {shapes}"
            )
        channels = sum(shape[0] for shape in shapes)
        self._split_sizes = [shape[0] for shape in shapes]
        return (channels, *shapes[0][1:])

    def forward(self, xs: list, training: bool = False) -> np.ndarray:
        if training:
            self._cache = {"sizes": [x.shape[1] for x in xs]}
        return np.concatenate(xs, axis=1)

    def backward(self, grad: np.ndarray) -> list:
        sizes = self._cache["sizes"]
        pieces = []
        start = 0
        for size in sizes:
            pieces.append(grad[:, start : start + size])
            start += size
        return pieces

    def forward_interval(self, xs: list, params=None) -> Interval:
        del params
        return Interval(
            np.concatenate([x.lo for x in xs], axis=1),
            np.concatenate([x.hi for x in xs], axis=1),
        )


LAYER_TYPES: dict[str, type] = {
    "CONV": Conv2D,
    "FULL": Dense,
    "FLATTEN": Flatten,
    "RELU": ReLU,
    "SIGMOID": Sigmoid,
    "TANH": Tanh,
    "SOFTMAX": Softmax,
    "DROPOUT": Dropout,
    "LRN": LocalResponseNorm,
    "BNORM": BatchNorm,
    "ADD": Add,
    "CONCAT": Concat,
}


def layer_from_spec(spec: dict) -> Layer:
    """Reconstruct a layer from its :meth:`Layer.spec` description."""
    kind = spec["kind"]
    name = spec["name"]
    hyperparams = dict(spec.get("hyperparams", {}))
    if kind == "POOL":
        mode = hyperparams.pop("mode", "MAX")
        cls = MaxPool2D if mode == "MAX" else AvgPool2D
        return cls(name, kernel=hyperparams["kernel"], stride=hyperparams["stride"])
    if kind not in LAYER_TYPES:
        raise KeyError(f"unknown layer kind {kind!r}")
    cls = LAYER_TYPES[kind]
    if kind == "CONV":
        return Conv2D(
            name,
            filters=hyperparams["filters"],
            kernel=hyperparams["kernel"],
            stride=hyperparams.get("stride", 1),
            pad=hyperparams.get("pad", 0),
            init=hyperparams.get("init", "he"),
        )
    if kind == "FULL":
        return Dense(name, units=hyperparams["units"], init=hyperparams.get("init", "xavier"))
    if kind == "DROPOUT":
        return Dropout(name, rate=hyperparams.get("rate", 0.5), seed=hyperparams.get("seed", 0))
    if kind == "LRN":
        return LocalResponseNorm(
            name,
            size=hyperparams.get("size", 5),
            alpha=hyperparams.get("alpha", 1e-4),
            beta=hyperparams.get("beta", 0.75),
            k=hyperparams.get("k", 2.0),
        )
    if kind == "BNORM":
        layer = BatchNorm(
            name,
            momentum=hyperparams.get("momentum", 0.9),
            eps=hyperparams.get("eps", 1e-5),
        )
        if "running_mean" in hyperparams:
            layer.running_mean = np.asarray(
                hyperparams["running_mean"], dtype=np.float32
            )
            layer.running_var = np.asarray(
                hyperparams["running_var"], dtype=np.float32
            )
        return layer
    return cls(name)
