"""Weight initializers for DNN layers.

Each initializer takes a shape and a :class:`numpy.random.Generator` and
returns a float32 array.  Keeping initializers pluggable lets the synthetic
auto-modeler (``repro.lifecycle``) reproduce the paper's "re-training with
slightly different initializations" scenario deterministically.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

Initializer = Callable[[tuple, np.random.Generator], np.ndarray]


def zeros(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    del rng
    return np.zeros(shape, dtype=np.float32)


def _fan_in_out(shape: tuple) -> tuple[int, int]:
    """Compute fan-in / fan-out for a weight tensor.

    Dense weights are ``(in, out)``; convolution weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / max(fan_in, 1))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def gaussian(std: float) -> Initializer:
    """Gaussian initializer with a fixed standard deviation (Caffe style)."""

    def init(shape: tuple, rng: np.random.Generator) -> np.ndarray:
        return (rng.standard_normal(shape) * std).astype(np.float32)

    return init


INITIALIZERS: dict[str, Initializer] = {
    "zeros": zeros,
    "xavier": xavier_uniform,
    "he": he_normal,
}


def get_initializer(name: str) -> Initializer:
    """Look up an initializer by name.

    Raises:
        KeyError: if the name is unknown.
    """
    if name not in INITIALIZERS:
        raise KeyError(
            f"unknown initializer {name!r}; known: {sorted(INITIALIZERS)}"
        )
    return INITIALIZERS[name]
