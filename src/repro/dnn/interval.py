"""Interval arithmetic primitives for progressive query evaluation.

PAS stores float matrices in byte-plane segments.  When only the high-order
segments of the weights are retrieved, each weight is known to lie in a
range ``[w_min, w_max]``.  Progressive evaluation (Sec. IV-D of the paper)
propagates these parameter perturbations through the network and applies
Lemma 4 to decide whether the prediction is already determined.

This module provides the :class:`Interval` container and sound interval
versions of the tensor operations used by the layers.  Linear operations
(matmul, convolution) use the midpoint–radius formulation

    |Y - Xc @ Wc|  <=  |Xc| @ Wr + Xr @ |Wc| + Xr @ Wr

which is a sound outer bound and vectorises into four matrix products.
When one operand is exact (radius zero) the bound is exact as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Interval:
    """An elementwise interval ``[lo, hi]`` over an ndarray."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        if self.lo.shape != self.hi.shape:
            raise ValueError(
                f"interval bound shapes differ: {self.lo.shape} vs {self.hi.shape}"
            )

    @classmethod
    def exact(cls, value: np.ndarray) -> "Interval":
        """Wrap an exact array as a degenerate interval."""
        value = np.asarray(value, dtype=np.float64)
        return cls(value, value.copy())

    @classmethod
    def from_bounds(cls, lo: np.ndarray, hi: np.ndarray) -> "Interval":
        """Construct from explicit bounds, validating the ordering."""
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if np.any(lo > hi + 1e-12):
            raise ValueError("interval lower bound exceeds upper bound")
        return cls(lo, np.maximum(lo, hi))

    @property
    def shape(self) -> tuple:
        return self.lo.shape

    @property
    def mid(self) -> np.ndarray:
        """Interval midpoint."""
        return (self.lo + self.hi) / 2.0

    @property
    def rad(self) -> np.ndarray:
        """Interval radius (half-width); always non-negative."""
        return (self.hi - self.lo) / 2.0

    @property
    def width(self) -> np.ndarray:
        return self.hi - self.lo

    def is_exact(self, atol: float = 0.0) -> bool:
        """True when every element's width is within ``atol``."""
        return bool(np.all(self.hi - self.lo <= atol))

    def contains(self, value: np.ndarray, atol: float = 1e-9) -> bool:
        """True when ``value`` lies inside the interval elementwise."""
        value = np.asarray(value)
        return bool(
            np.all(value >= self.lo - atol) and np.all(value <= self.hi + atol)
        )

    def reshape(self, *shape) -> "Interval":
        return Interval(self.lo.reshape(*shape), self.hi.reshape(*shape))

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)


#: When True, linear layers use the tighter (2-3x costlier) interval
#: product.  Toggle with :func:`set_tight_mode` / :class:`tight_intervals`.
_TIGHT_MODE = False


def set_tight_mode(enabled: bool) -> bool:
    """Enable/disable tight interval products globally; returns the old value."""
    global _TIGHT_MODE
    previous = _TIGHT_MODE
    _TIGHT_MODE = bool(enabled)
    return previous


class tight_intervals:
    """Context manager enabling tight interval products.

    Progressive evaluation of deep networks benefits greatly: the default
    midpoint-radius product over-approximates through every layer, while
    the tight product is exact for the non-negative activation ranges that
    follow ReLU/pooling layers.
    """

    def __enter__(self) -> "tight_intervals":
        self._previous = set_tight_mode(True)
        return self

    def __exit__(self, *exc) -> None:
        set_tight_mode(self._previous)


def _rump_matmul(x: Interval, w: Interval) -> Interval:
    """Midpoint-radius bound: cheap (4 products), sound, often loose."""
    xc, xr = x.mid, x.rad
    wc, wr = w.mid, w.rad
    center = xc @ wc
    radius = np.abs(xc) @ wr + xr @ np.abs(wc) + xr @ wr
    return Interval(center - radius, center + radius)


def _nonneg_matmul(
    lo: np.ndarray, hi: np.ndarray, w: Interval
) -> tuple[np.ndarray, np.ndarray]:
    """Exact interval product for a *non-negative* left operand.

    For ``x in [lo, hi]`` with ``lo >= 0`` and ``w in [wl, wu]``, the
    elementwise product is minimized at ``w = wl`` (then at ``x = lo`` when
    ``wl >= 0`` else ``x = hi``), and symmetrically for the maximum —
    which decomposes into four matrix products.
    """
    wl_pos = np.maximum(w.lo, 0.0)
    wl_neg = np.minimum(w.lo, 0.0)
    wu_pos = np.maximum(w.hi, 0.0)
    wu_neg = np.minimum(w.hi, 0.0)
    out_lo = lo @ wl_pos + hi @ wl_neg
    out_hi = hi @ wu_pos + lo @ wu_neg
    return out_lo, out_hi


def _split_matmul(x: Interval, w: Interval) -> Interval:
    """Positive/negative-split product: exact when ``x`` doesn't span zero.

    ``x = x+ - x-`` with both parts non-negative intervals; each part
    multiplies ``w`` exactly via :func:`_nonneg_matmul`.  Elements whose
    interval straddles zero lose the correlation between the parts (a
    sound over-approximation).
    """
    xp_lo = np.maximum(x.lo, 0.0)
    xp_hi = np.maximum(x.hi, 0.0)
    xn_lo = np.maximum(-x.hi, 0.0)
    xn_hi = np.maximum(-x.lo, 0.0)
    pos_lo, pos_hi = _nonneg_matmul(xp_lo, xp_hi, w)
    neg_w = Interval(-w.hi, -w.lo)
    neg_lo, neg_hi = _nonneg_matmul(xn_lo, xn_hi, neg_w)
    return Interval(pos_lo + neg_lo, pos_hi + neg_hi)


def interval_matmul(x: Interval, w: Interval) -> Interval:
    """Sound interval matrix product ``x @ w``.

    Default: the midpoint-radius bound (exact when either operand has zero
    radius).  In tight mode the positive/negative-split product is
    intersected with it — both are sound outer bounds, so their
    intersection is sound and at least as tight as either.
    """
    rump = _rump_matmul(x, w)
    if not _TIGHT_MODE:
        return rump
    split = _split_matmul(x, w)
    return Interval(
        np.maximum(rump.lo, split.lo), np.minimum(rump.hi, split.hi)
    )


def interval_add_bias(x: Interval, b: Interval) -> Interval:
    """Add an interval bias (broadcast over the batch dimension)."""
    return Interval(x.lo + b.lo, x.hi + b.hi)


def apply_monotonic(x: Interval, fn) -> Interval:
    """Apply a monotonically non-decreasing scalar function to an interval."""
    return Interval(fn(x.lo), fn(x.hi))


def interval_maximum(x: Interval, y: Interval) -> Interval:
    """Elementwise max of two intervals."""
    return Interval(np.maximum(x.lo, y.lo), np.maximum(x.hi, y.hi))


def interval_relu(x: Interval) -> Interval:
    return Interval(np.maximum(x.lo, 0.0), np.maximum(x.hi, 0.0))


def interval_sigmoid(x: Interval) -> Interval:
    def sigmoid(v: np.ndarray) -> np.ndarray:
        out = np.empty_like(v, dtype=np.float64)
        pos = v >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-v[pos]))
        ev = np.exp(v[~pos])
        out[~pos] = ev / (1.0 + ev)
        return out

    return apply_monotonic(x, sigmoid)


def interval_tanh(x: Interval) -> Interval:
    return apply_monotonic(x, np.tanh)


def interval_scale(x: Interval, alpha: float) -> Interval:
    """Multiply an interval by an exact scalar."""
    if alpha >= 0:
        return Interval(x.lo * alpha, x.hi * alpha)
    return Interval(x.hi * alpha, x.lo * alpha)


def argmax_determined(output: Interval, k: int = 1) -> tuple[bool, np.ndarray]:
    """Apply Lemma 4 per row: is the top-``k`` label set determined?

    For ``k = 1`` the paper's condition is: there exists an index whose lower
    bound exceeds every other index's upper bound.  For general ``k`` we
    check that the set of top-``k`` midpoints is separated: the ``k``-th
    largest lower bound among the candidate set exceeds the maximum upper
    bound outside it.

    Returns:
        A `(determined, labels)` pair where ``determined`` is a boolean array
        of shape `(batch,)` and ``labels`` holds the argmax of the midpoint
        (valid answers wherever ``determined`` is True; for k > 1 the labels
        are the midpoint argmax — the full candidate set can be recovered
        from the bounds).
    """
    lo, hi = output.lo, output.hi
    if lo.ndim != 2:
        raise ValueError("argmax determination expects a (batch, classes) output")
    n, c = lo.shape
    if not 1 <= k <= c:
        raise ValueError(f"k={k} out of range for {c} classes")
    mid = output.mid
    order = np.argsort(-mid, axis=1)
    rows = np.arange(n)[:, None]
    top = order[:, :k]
    rest = order[:, k:]
    top_lo_min = lo[rows, top].min(axis=1)
    if rest.shape[1] == 0:
        determined = np.ones(n, dtype=bool)
    else:
        rest_hi_max = hi[rows, rest].max(axis=1)
        determined = top_lo_min > rest_hi_max
    return determined, order[:, 0]
