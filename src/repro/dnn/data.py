"""Deterministic synthetic image-classification datasets.

The paper evaluates on MNIST and ILSVRC-2012, neither of which is available
offline.  These generators produce structured, learnable image datasets —
per-class spatial templates corrupted by jitter and noise — that play the
same role: models trained on them reach accuracy well above chance, so the
accuracy-drop measurements of Fig. 6(a)/(d) are meaningful, and their
trained weights have realistic (high-entropy) float statistics for the
compression experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A train/test split of labelled images.

    Attributes:
        name: Dataset identifier (recorded in DLV metadata).
        x_train, y_train: Training images `(N, C, H, W)` float32 and labels.
        x_test, y_test: Held-out split with the same layout.
        num_classes: Number of distinct labels.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    @property
    def input_shape(self) -> tuple:
        """Per-example shape `(C, H, W)`."""
        return self.x_train.shape[1:]

    def batches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled `(x, y)` minibatches over the training split."""
        order = rng.permutation(len(self.x_train))
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            yield self.x_train[idx], self.y_train[idx]


def _class_templates(
    num_classes: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-class stroke templates: each class is a union of line segments."""
    templates = np.zeros((num_classes, size, size), dtype=np.float32)
    for cls in range(num_classes):
        strokes = 2 + cls % 3
        for _ in range(strokes):
            if rng.random() < 0.5:
                row = int(rng.integers(1, size - 1))
                lo, hi = sorted(rng.integers(0, size, size=2))
                templates[cls, row, lo : hi + 1] = 1.0
            else:
                col = int(rng.integers(1, size - 1))
                lo, hi = sorted(rng.integers(0, size, size=2))
                templates[cls, lo : hi + 1, col] = 1.0
        # Guarantee at least a few active pixels per class.
        if templates[cls].sum() < 3:
            templates[cls, size // 2, :] = 1.0
    return templates


def _jitter(img: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate an image by `(dy, dx)`, zero-filling the border."""
    out = np.zeros_like(img)
    size = img.shape[0]
    ys = slice(max(dy, 0), size + min(dy, 0))
    xs = slice(max(dx, 0), size + min(dx, 0))
    ys_src = slice(max(-dy, 0), size + min(-dy, 0))
    xs_src = slice(max(-dx, 0), size + min(-dx, 0))
    out[ys, xs] = img[ys_src, xs_src]
    return out


def _make_dataset(
    name: str,
    num_classes: int,
    size: int,
    train_per_class: int,
    test_per_class: int,
    noise: float,
    seed: int,
) -> Dataset:
    rng = np.random.default_rng(seed)
    templates = _class_templates(num_classes, size, rng)

    def sample_split(per_class: int) -> tuple[np.ndarray, np.ndarray]:
        images = np.empty(
            (num_classes * per_class, 1, size, size), dtype=np.float32
        )
        labels = np.empty(num_classes * per_class, dtype=np.int64)
        i = 0
        for cls in range(num_classes):
            for _ in range(per_class):
                dy, dx = rng.integers(-1, 2, size=2)
                img = _jitter(templates[cls], int(dy), int(dx))
                img = img * float(rng.uniform(0.7, 1.0))
                img = img + rng.normal(0.0, noise, size=img.shape)
                images[i, 0] = img.astype(np.float32)
                labels[i] = cls
                i += 1
        order = rng.permutation(len(labels))
        return images[order], labels[order]

    x_train, y_train = sample_split(train_per_class)
    x_test, y_test = sample_split(test_per_class)
    return Dataset(name, x_train, y_train, x_test, y_test, num_classes)


def synthetic_digits(
    num_classes: int = 10,
    size: int = 12,
    train_per_class: int = 60,
    test_per_class: int = 20,
    noise: float = 0.15,
    seed: int = 7,
) -> Dataset:
    """MNIST stand-in: 10 stroke-pattern classes on small grayscale images."""
    return _make_dataset(
        "synthetic-digits", num_classes, size, train_per_class,
        test_per_class, noise, seed,
    )


def synthetic_faces(
    num_classes: int = 20,
    size: int = 16,
    train_per_class: int = 30,
    test_per_class: int = 10,
    noise: float = 0.12,
    seed: int = 23,
) -> Dataset:
    """Face-recognition stand-in used by the SD auto-modeler (Sec. V-A)."""
    return _make_dataset(
        "synthetic-faces", num_classes, size, train_per_class,
        test_per_class, noise, seed,
    )
