"""Data augmentation for image training batches.

Simple, deterministic-by-seed augmentations applied per minibatch: random
translation (the jitter the synthetic generators use), horizontal flips,
and additive Gaussian noise.  An :class:`Augmenter` can be handed to the
training loop to regularize the small synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class AugmentConfig:
    """Augmentation strengths (0 disables each transform).

    Attributes:
        max_shift: Maximum absolute translation, in pixels, per axis.
        flip_probability: Chance of a horizontal flip per example.
        noise_std: Std of additive Gaussian pixel noise.
        seed: RNG seed for the augmenter's own generator.
    """

    max_shift: int = 1
    flip_probability: float = 0.0
    noise_std: float = 0.0
    seed: int = 0


class Augmenter:
    """Applies random augmentations to `(N, C, H, W)` batches."""

    def __init__(self, config: AugmentConfig) -> None:
        if config.max_shift < 0:
            raise ValueError("max_shift must be non-negative")
        if not 0.0 <= config.flip_probability <= 1.0:
            raise ValueError("flip_probability must be in [0, 1]")
        if config.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def _shift(self, image: np.ndarray, dy: int, dx: int) -> np.ndarray:
        if dy == 0 and dx == 0:
            return image
        out = np.zeros_like(image)
        _, h, w = image.shape
        ys = slice(max(dy, 0), h + min(dy, 0))
        xs = slice(max(dx, 0), w + min(dx, 0))
        ys_src = slice(max(-dy, 0), h + min(-dy, 0))
        xs_src = slice(max(-dx, 0), w + min(-dx, 0))
        out[:, ys, xs] = image[:, ys_src, xs_src]
        return out

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        """Return an augmented copy of the batch (the input is untouched)."""
        cfg = self.config
        out = batch.copy()
        n = len(out)
        if cfg.max_shift > 0:
            shifts = self._rng.integers(
                -cfg.max_shift, cfg.max_shift + 1, size=(n, 2)
            )
            for i in range(n):
                out[i] = self._shift(out[i], int(shifts[i, 0]), int(shifts[i, 1]))
        if cfg.flip_probability > 0:
            flips = self._rng.random(n) < cfg.flip_probability
            out[flips] = out[flips][:, :, :, ::-1]
        if cfg.noise_std > 0:
            out = out + self._rng.normal(
                0.0, cfg.noise_std, size=out.shape
            ).astype(out.dtype)
        return out
