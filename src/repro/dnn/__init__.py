"""Numpy deep learning substrate.

The paper's evaluation runs on Caffe; this subpackage is the from-scratch
substitute.  It provides everything PAS, DLV, and DQL need from a training
system: layer implementations, DAG-structured networks with a mutation API,
a checkpointing trainer, synthetic datasets, a model zoo mirroring the
architectures of Table I, and an interval-arithmetic forward pass used by
progressive query evaluation.
"""

from repro.dnn.augment import AugmentConfig, Augmenter
from repro.dnn.interval import Interval, set_tight_mode, tight_intervals
from repro.dnn.layers import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.dnn.network import Network, NetworkNode
from repro.dnn.training import (
    SGDConfig,
    TrainResult,
    Trainer,
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    top_k_accuracy,
)
from repro.dnn.data import Dataset, synthetic_digits, synthetic_faces
from repro.dnn.zoo import (
    ZOO_ARCHITECTURES,
    alexnet_mini,
    build_model,
    lenet,
    resnet_mini,
    resnet_residual,
    tiny_mlp,
    vgg_mini,
)

__all__ = [
    "Add",
    "AugmentConfig",
    "Augmenter",
    "AvgPool2D",
    "BatchNorm",
    "Concat",
    "Conv2D",
    "Dataset",
    "Dense",
    "Dropout",
    "Flatten",
    "Interval",
    "Layer",
    "LocalResponseNorm",
    "MaxPool2D",
    "Network",
    "NetworkNode",
    "ReLU",
    "SGDConfig",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "TrainResult",
    "Trainer",
    "ZOO_ARCHITECTURES",
    "accuracy",
    "alexnet_mini",
    "build_model",
    "confusion_matrix",
    "lenet",
    "per_class_accuracy",
    "resnet_mini",
    "resnet_residual",
    "set_tight_mode",
    "synthetic_digits",
    "synthetic_faces",
    "tight_intervals",
    "tiny_mlp",
    "top_k_accuracy",
    "vgg_mini",
]
