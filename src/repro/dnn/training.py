"""Training loop with checkpointing.

The modeling lifecycle (Fig. 1 of the paper) repeatedly trains models and
checkpoints snapshots because the training phase is expensive.  The
:class:`Trainer` here reproduces that behaviour at laptop scale: SGD with
momentum and learning-rate schedules, softmax cross-entropy loss, periodic
accuracy/loss measurements (the metadata DLV extracts from training logs),
and periodic weight snapshots (the artifacts PAS archives).
"""

from __future__ import annotations

import fnmatch
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.dnn.network import Network
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.tracing import trace_span


@dataclass
class SGDConfig:
    """Hyperparameters of the optimization algorithm.

    These are the quantities that DLV records in the metadata relation and
    that DQL ``evaluate ... vary`` queries sweep over.
    """

    base_lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    batch_size: int = 32
    epochs: int = 5
    lr_policy: str = "fixed"  # "fixed" | "step" | "inv"
    lr_step: int = 10
    lr_gamma: float = 0.5
    seed: int = 0
    snapshot_every: int = 0  # iterations between snapshots; 0 = epoch ends only
    #: Per-layer learning-rate multipliers, keyed by layer name or glob
    #: pattern (DQL's ``config.net["conv*"].lr``).  0 freezes a layer.
    lr_multipliers: dict = field(default_factory=dict)
    #: Nesterov accelerated gradient instead of classical momentum.
    nesterov: bool = False
    #: Clip each parameter's gradient to this max L2 norm (0 disables).
    grad_clip: float = 0.0
    #: Optimization algorithm: "sgd" (momentum) or "adam".
    optimizer: str = "sgd"
    #: Adam moment decay rates and epsilon.
    adam_beta1: float = 0.9
    adam_beta2: float = 0.999
    adam_eps: float = 1e-8

    def layer_lr_scale(self, layer_name: str) -> float:
        """Multiplier for a layer: exact name match wins over glob patterns."""
        if layer_name in self.lr_multipliers:
            return float(self.lr_multipliers[layer_name])
        for pattern, scale in self.lr_multipliers.items():
            if fnmatch.fnmatch(layer_name, pattern):
                return float(scale)
        return 1.0

    def learning_rate(self, iteration: int) -> float:
        """Learning rate at a given iteration under the configured policy."""
        if self.lr_policy == "fixed":
            return self.base_lr
        if self.lr_policy == "step":
            return self.base_lr * self.lr_gamma ** (iteration // self.lr_step)
        if self.lr_policy == "inv":
            return self.base_lr / (1.0 + 1e-3 * iteration)
        raise ValueError(f"unknown lr_policy {self.lr_policy!r}")

    def to_dict(self) -> dict:
        return {
            "base_lr": self.base_lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "batch_size": self.batch_size,
            "epochs": self.epochs,
            "lr_policy": self.lr_policy,
            "lr_step": self.lr_step,
            "lr_gamma": self.lr_gamma,
            "seed": self.seed,
            "snapshot_every": self.snapshot_every,
            "lr_multipliers": dict(self.lr_multipliers),
            "nesterov": self.nesterov,
            "grad_clip": self.grad_clip,
            "optimizer": self.optimizer,
            "adam_beta1": self.adam_beta1,
            "adam_beta2": self.adam_beta2,
            "adam_eps": self.adam_eps,
        }

    def __post_init__(self) -> None:
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(
                f"optimizer must be 'sgd' or 'adam', got {self.optimizer!r}"
            )


@dataclass
class TrainResult:
    """Artifacts of a training run.

    Attributes:
        snapshots: Checkpointed weights, ``[(iteration, weights_dict), ...]``
            with the final weights always last.
        log: Per-measurement records ``{iteration, loss, accuracy, lr}`` —
            the "training log" DLV's wrapper extracts into metadata.
        final_accuracy: Test accuracy of the final weights.
        final_loss: Last measured training loss.
    """

    snapshots: list[tuple[int, dict]] = field(default_factory=list)
    log: list[dict] = field(default_factory=list)
    final_accuracy: float = 0.0
    final_loss: float = math.inf

    def loss_at(self, iteration: int) -> float:
        """Latest logged loss at or before ``iteration`` (inf when none)."""
        best = math.inf
        for entry in self.log:
            if entry["iteration"] <= iteration:
                best = entry["loss"]
        return best


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Fused softmax + cross-entropy: returns `(mean_loss, dlogits)`."""
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = -float(log_probs[np.arange(n), labels].mean())
    probs = np.exp(log_probs)
    dlogits = probs
    dlogits[np.arange(n), labels] -= 1.0
    return loss, dlogits / n


def accuracy(net: Network, x: np.ndarray, y: np.ndarray, batch: int = 256) -> float:
    """Top-1 accuracy of ``net`` on `(x, y)`, evaluated in batches."""
    correct = 0
    for start in range(0, len(x), batch):
        preds = net.predict(x[start : start + batch])
        correct += int((preds == y[start : start + batch]).sum())
    return correct / max(len(x), 1)


def confusion_matrix(
    net: Network, x: np.ndarray, y: np.ndarray, num_classes: int,
    batch: int = 256,
) -> np.ndarray:
    """Confusion matrix ``C[true, predicted]`` of ``net`` on `(x, y)`."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for start in range(0, len(x), batch):
        preds = net.predict(x[start : start + batch])
        for true, pred in zip(y[start : start + batch], preds):
            matrix[int(true), int(pred)] += 1
    return matrix


def per_class_accuracy(
    net: Network, x: np.ndarray, y: np.ndarray, num_classes: int
) -> np.ndarray:
    """Recall per class (NaN-free: empty classes report 0)."""
    matrix = confusion_matrix(net, x, y, num_classes)
    totals = matrix.sum(axis=1)
    return np.divide(
        np.diag(matrix), totals,
        out=np.zeros(num_classes, dtype=np.float64),
        where=totals > 0,
    )


def top_k_accuracy(
    net: Network, x: np.ndarray, y: np.ndarray, k: int = 5, batch: int = 256
) -> float:
    """Top-``k`` accuracy of ``net`` on `(x, y)`."""
    correct = 0
    for start in range(0, len(x), batch):
        out = net.forward(x[start : start + batch])
        topk = np.argsort(-out, axis=1)[:, :k]
        labels = y[start : start + batch][:, None]
        correct += int((topk == labels).any(axis=1).sum())
    return correct / max(len(x), 1)


class Trainer:
    """Minibatch SGD trainer with momentum, weight decay, and snapshots.

    The trainer treats the network's final Softmax layer specially: the loss
    is computed on the logits feeding it (fused softmax cross-entropy), and
    gradients flow from there, mirroring Caffe's SoftmaxWithLoss.
    """

    def __init__(self, net: Network, config: SGDConfig) -> None:
        if not net.is_built:
            raise RuntimeError("build the network before training")
        self.net = net
        self.config = config
        self._velocity: dict[tuple[str, str], np.ndarray] = {}
        self._adam_m: dict[tuple[str, str], np.ndarray] = {}
        self._adam_v: dict[tuple[str, str], np.ndarray] = {}
        self._adam_t = 0

    def _logits_node(self) -> tuple[str, bool]:
        """Name of the node whose output the loss consumes.

        Returns `(node_name, ends_with_softmax)`.
        """
        output = self.net.output_name
        if self.net[output].kind == "SOFTMAX":
            return self.net.predecessor(output), True
        return output, False

    def train_step(self, x: np.ndarray, y: np.ndarray, iteration: int) -> float:
        """One SGD step; returns the minibatch loss."""
        cfg = self.config
        logits_node, _ = self._logits_node()
        logits = self.net.forward(x, training=True, upto=logits_node)
        loss, dlogits = softmax_cross_entropy(logits, y)
        self._backward_from(logits_node, dlogits)
        lr = cfg.learning_rate(iteration)
        if cfg.optimizer == "adam":
            self._adam_t += 1
        for layer in self.net.parametric_layers():
            layer_lr = lr * cfg.layer_lr_scale(layer.name)
            if layer_lr == 0.0:
                continue
            for key, param in layer.params.items():
                grad = layer.grads.get(key)
                if grad is None:
                    continue
                if cfg.weight_decay and key == "W":
                    grad = grad + cfg.weight_decay * param
                if cfg.grad_clip > 0.0:
                    norm = float(np.linalg.norm(grad))
                    if norm > cfg.grad_clip:
                        grad = grad * (cfg.grad_clip / norm)
                vkey = (layer.name, key)
                if cfg.optimizer == "adam":
                    step = self._adam_step(vkey, grad, layer_lr, param)
                else:
                    step = self._sgd_step(vkey, grad, layer_lr, param)
                layer.params[key] = (param + step).astype(np.float32)
        return loss

    def _sgd_step(
        self,
        vkey: tuple[str, str],
        grad: np.ndarray,
        layer_lr: float,
        param: np.ndarray,
    ) -> np.ndarray:
        cfg = self.config
        vel = self._velocity.get(vkey)
        if vel is None:
            vel = np.zeros_like(param)
        vel = cfg.momentum * vel - layer_lr * grad
        self._velocity[vkey] = vel
        if cfg.nesterov:
            return cfg.momentum * vel - layer_lr * grad
        return vel

    def _adam_step(
        self,
        vkey: tuple[str, str],
        grad: np.ndarray,
        layer_lr: float,
        param: np.ndarray,
    ) -> np.ndarray:
        cfg = self.config
        m = self._adam_m.get(vkey)
        v = self._adam_v.get(vkey)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        m = cfg.adam_beta1 * m + (1 - cfg.adam_beta1) * grad
        v = cfg.adam_beta2 * v + (1 - cfg.adam_beta2) * (grad * grad)
        self._adam_m[vkey] = m
        self._adam_v[vkey] = v
        m_hat = m / (1 - cfg.adam_beta1**self._adam_t)
        v_hat = v / (1 - cfg.adam_beta2**self._adam_t)
        return -layer_lr * m_hat / (np.sqrt(v_hat) + cfg.adam_eps)

    def _backward_from(self, node_name: str, grad: np.ndarray) -> None:
        """Backpropagate ``grad`` from ``node_name`` to the input.

        Delegates to the network's reverse-topological backward, which
        accumulates gradients correctly through fan-out and multi-input
        layers (residual Add, Concat).
        """
        self.net.backward(grad, from_node=node_name)

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
        measure_every: int = 20,
        callback: Optional[Callable[[int, float], bool]] = None,
        augmenter: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> TrainResult:
        """Train for ``config.epochs`` epochs.

        Args:
            measure_every: Iterations between log records.
            callback: Optional ``f(iteration, loss) -> stop`` early-stopping
                hook (used by DQL ``keep`` clauses).
            augmenter: Optional per-minibatch transform (see
                :mod:`repro.dnn.augment`).

        Returns:
            A :class:`TrainResult` with snapshots, the training log, and the
            final accuracy (when a test split is provided).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        result = TrainResult()
        iteration = 0
        stop = False
        last_loss = math.inf
        # Per-iteration telemetry rides the same seam as the user callback:
        # every iteration ends by reporting (iteration, loss) to both.
        iterations_counter = counter("training.iterations")
        examples_counter = counter("training.examples")
        loss_gauge = gauge("training.loss")
        step_seconds = histogram("training.step_seconds")
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(x_train))
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                batch = x_train[idx]
                if augmenter is not None:
                    batch = augmenter(batch)
                with trace_span(
                    "training.step", iteration=iteration, epoch=epoch
                ) as step_span:
                    loss = self.train_step(batch, y_train[idx], iteration)
                last_loss = float(loss)
                iterations_counter.inc()
                examples_counter.inc(len(idx))
                loss_gauge.set(last_loss)
                step_seconds.observe(step_span.elapsed)
                if iteration % measure_every == 0:
                    entry = {
                        "iteration": iteration,
                        "loss": float(loss),
                        "lr": cfg.learning_rate(iteration),
                        "epoch": epoch,
                    }
                    if x_test is not None:
                        entry["accuracy"] = accuracy(self.net, x_test, y_test)
                        gauge("training.accuracy").set(entry["accuracy"])
                    result.log.append(entry)
                if cfg.snapshot_every and iteration % cfg.snapshot_every == 0:
                    result.snapshots.append((iteration, self.net.get_weights()))
                iteration += 1
                if callback is not None and callback(iteration, float(loss)):
                    stop = True
                    break
            if not cfg.snapshot_every:
                result.snapshots.append((iteration, self.net.get_weights()))
            if stop:
                break
        if not result.snapshots or result.snapshots[-1][0] != iteration:
            result.snapshots.append((iteration, self.net.get_weights()))
        result.final_loss = last_loss
        if x_test is not None:
            result.final_accuracy = accuracy(self.net, x_test, y_test)
        return result
