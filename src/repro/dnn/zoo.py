"""Model zoo: architecture factories mirroring Table I of the paper.

Table I describes the popular object-recognition CNNs by layer-grammar
regular expressions:

    LeNet    (LconvLpool){2}Lip{2}                            4.31e5 flops
    AlexNet  (LconvLpool){2}(Lconv{2}Lpool){2}Lip{3}          6e7    flops
    VGG      (Lconv{2}Lpool){2}(Lconv{4}Lpool){3}Lip{3}       1.96e10 flops
    ResNet   (LconvLpool)(Lconv){150}LpoolLip                 1.13e10 flops

The factories here build networks with the same layer grammar.  LeNet is
built at (near) paper scale; AlexNet and VGG are scaled down so the full
experiment suite runs on a laptop — the paper-vs-built substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.dnn.layers import (
    Add,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.dnn.network import Network

#: Table I of the paper: architecture grammar and parameter counts.
ZOO_ARCHITECTURES: dict[str, dict] = {
    "LeNet": {
        "regex": "(LconvLpool){2}Lip{2}",
        "params": 4.31e5,
        "reference": "LeCun et al., NIPS 1990",
    },
    "AlexNet": {
        "regex": "(LconvLpool){2}(Lconv{2}Lpool){2}Lip{3}",
        "params": 6e7,
        "reference": "Krizhevsky et al., NIPS 2012",
    },
    "VGG": {
        "regex": "(Lconv{2}Lpool){2}(Lconv{4}Lpool){3}Lip{3}",
        "params": 1.96e10,
        "reference": "Simonyan & Zisserman, 2014",
    },
    "ResNet": {
        "regex": "(LconvLpool)(Lconv){150}LpoolLip",
        "params": 1.13e10,
        "reference": "He et al., CVPR 2016",
    },
}


def lenet(
    input_shape: tuple = (1, 12, 12),
    num_classes: int = 10,
    scale: float = 1.0,
    name: str = "lenet",
) -> Network:
    """LeNet: (conv pool){2} ip relu ip softmax.

    With the default 12x12 input the kernels shrink from 5x5 to 3x3 so the
    spatial dimensions stay valid; a 28x28 input reproduces the classic
    431K-parameter configuration of Fig. 2.
    """
    height = input_shape[1]
    kernel = 5 if height >= 20 else 3
    c1 = max(int(20 * scale), 2)
    c2 = max(int(50 * scale), 2)
    fc = max(int(500 * scale), 8)
    net = Network(input_shape, name=name)
    net.add(Conv2D("conv1", filters=c1, kernel=kernel))
    net.add(MaxPool2D("pool1", kernel=2))
    net.add(Conv2D("conv2", filters=c2, kernel=kernel))
    net.add(MaxPool2D("pool2", kernel=2))
    net.add(Flatten("flat"))
    net.add(Dense("ip1", units=fc))
    net.add(ReLU("relu1"))
    net.add(Dense("ip2", units=num_classes))
    net.add(Softmax("prob"))
    return net


def alexnet_mini(
    input_shape: tuple = (1, 16, 16),
    num_classes: int = 10,
    scale: float = 1.0,
    name: str = "alexnet-mini",
) -> Network:
    """Scaled-down AlexNet: (conv pool){2} (conv conv pool){2} ip{3}.

    Follows Table I's grammar with ReLU activations after every convolution
    and the first two fully connected layers.  Channel counts are scaled to
    fit a 16x16 input.
    """
    c = [max(int(f * scale), 2) for f in (12, 24, 32, 32)]
    fc = max(int(128 * scale), 8)
    net = Network(input_shape, name=name)
    net.add(Conv2D("conv1", filters=c[0], kernel=3, pad=1))
    net.add(ReLU("relu1"))
    net.add(MaxPool2D("pool1", kernel=2))
    net.add(Conv2D("conv2", filters=c[1], kernel=3, pad=1))
    net.add(ReLU("relu2"))
    net.add(MaxPool2D("pool2", kernel=2))
    net.add(Conv2D("conv3", filters=c[2], kernel=3, pad=1))
    net.add(ReLU("relu3"))
    net.add(Conv2D("conv4", filters=c[2], kernel=3, pad=1))
    net.add(ReLU("relu4"))
    net.add(MaxPool2D("pool3", kernel=2))
    net.add(Conv2D("conv5", filters=c[3], kernel=3, pad=1))
    net.add(ReLU("relu5"))
    net.add(Conv2D("conv6", filters=c[3], kernel=3, pad=1))
    net.add(ReLU("relu6"))
    net.add(MaxPool2D("pool4", kernel=2))
    net.add(Flatten("flat"))
    net.add(Dense("fc6", units=fc))
    net.add(ReLU("relu7"))
    net.add(Dense("fc7", units=fc))
    net.add(ReLU("relu8"))
    net.add(Dense("fc8", units=num_classes))
    net.add(Softmax("prob"))
    return net


def vgg_mini(
    input_shape: tuple = (1, 32, 32),
    num_classes: int = 10,
    scale: float = 1.0,
    name: str = "vgg-mini",
) -> Network:
    """Scaled-down VGG-16: (conv{2} pool){2} (conv{4} pool)... ip{3}.

    Uses three double-conv blocks instead of the full five-block stack so a
    32x32 input suffices, preserving VGG's defining 3x3-pad-1 stacking and
    three fully connected layers.
    """
    channels = [max(int(f * scale), 2) for f in (8, 16, 32)]
    fc = max(int(128 * scale), 8)
    net = Network(input_shape, name=name)
    idx = 1
    for block, ch in enumerate(channels, start=1):
        convs = 2 if block <= 2 else 4
        for _ in range(convs):
            net.add(Conv2D(f"conv{idx}", filters=ch, kernel=3, pad=1))
            net.add(ReLU(f"relu{idx}"))
            idx += 1
        net.add(MaxPool2D(f"pool{block}", kernel=2))
    net.add(Flatten("flat"))
    net.add(Dense("fc1", units=fc))
    net.add(ReLU(f"relu{idx}"))
    net.add(Dense("fc2", units=fc))
    net.add(ReLU(f"relu{idx + 1}"))
    net.add(Dense("fc3", units=num_classes))
    net.add(Softmax("prob"))
    return net


def resnet_mini(
    input_shape: tuple = (1, 16, 16),
    num_classes: int = 10,
    depth: int = 12,
    scale: float = 1.0,
    name: str = "resnet-mini",
) -> Network:
    """Scaled-down ResNet per Table I's grammar: (conv pool)(conv){n} pool ip.

    Table I describes ResNet-152 as ``(LconvLpool)(Lconv){150}LpoolLip`` —
    a long conv chain between two pools with a single prediction layer.
    (The table's grammar omits the residual shortcuts, and so do we; the
    layer-sequence statistics PAS cares about are unaffected.)
    """
    if depth < 1:
        raise ValueError(f"depth must be positive, got {depth}")
    channels = max(int(16 * scale), 2)
    net = Network(input_shape, name=name)
    net.add(Conv2D("conv0", filters=channels, kernel=3, pad=1))
    net.add(ReLU("relu0"))
    net.add(MaxPool2D("pool0", kernel=2))
    for i in range(1, depth + 1):
        net.add(Conv2D(f"conv{i}", filters=channels, kernel=3, pad=1))
        net.add(ReLU(f"relu{i}"))
    net.add(MaxPool2D("pool1", kernel=2))
    net.add(Flatten("flat"))
    net.add(Dense("ip", units=num_classes))
    net.add(Softmax("prob"))
    return net


def resnet_residual(
    input_shape: tuple = (1, 16, 16),
    num_classes: int = 10,
    blocks: int = 3,
    scale: float = 1.0,
    name: str = "resnet-residual",
) -> Network:
    """A small ResNet *with* residual skip connections.

    Each block is ``x + conv(relu(conv(x)))`` via an ``Add`` node — the
    identity-shortcut structure of He et al. that Table I's flat grammar
    omits.  Exercises the DAG substrate's multi-input fan-in.
    """
    if blocks < 1:
        raise ValueError(f"blocks must be positive, got {blocks}")
    channels = max(int(16 * scale), 2)
    net = Network(input_shape, name=name)
    net.add(Conv2D("conv0", filters=channels, kernel=3, pad=1))
    net.add(ReLU("relu0"))
    previous = "relu0"
    for b in range(1, blocks + 1):
        net.add(Conv2D(f"conv{b}a", filters=channels, kernel=3, pad=1), previous)
        net.add(ReLU(f"relu{b}a"))
        net.add(Conv2D(f"conv{b}b", filters=channels, kernel=3, pad=1))
        net.add(Add(f"add{b}"), f"conv{b}b", extra_inputs=[previous])
        net.add(ReLU(f"relu{b}b"))
        previous = f"relu{b}b"
    net.add(MaxPool2D("pool", kernel=2), previous)
    net.add(Flatten("flat"))
    net.add(Dense("ip", units=num_classes))
    net.add(Softmax("prob"))
    return net


def tiny_mlp(
    input_shape: tuple = (1, 8, 8),
    num_classes: int = 4,
    hidden: int = 16,
    name: str = "tiny-mlp",
) -> Network:
    """A minimal flatten/dense/softmax model for fast unit tests."""
    net = Network(input_shape, name=name)
    net.add(Flatten("flat"))
    net.add(Dense("fc1", units=hidden))
    net.add(ReLU("relu1"))
    net.add(Dense("fc2", units=num_classes))
    net.add(Softmax("prob"))
    return net


MODEL_FACTORIES = {
    "lenet": lenet,
    "alexnet-mini": alexnet_mini,
    "vgg-mini": vgg_mini,
    "resnet-mini": resnet_mini,
    "resnet-residual": resnet_residual,
    "tiny-mlp": tiny_mlp,
}


def build_model(factory_name: str, seed: int = 0, **kwargs) -> Network:
    """Construct and build a zoo model by factory name."""
    if factory_name not in MODEL_FACTORIES:
        raise KeyError(
            f"unknown model {factory_name!r}; known: {sorted(MODEL_FACTORIES)}"
        )
    return MODEL_FACTORIES[factory_name](**kwargs).build(seed)


__all__ = [
    "ZOO_ARCHITECTURES",
    "MODEL_FACTORIES",
    "alexnet_mini",
    "build_model",
    "lenet",
    "resnet_mini",
    "resnet_residual",
    "tiny_mlp",
    "vgg_mini",
]
