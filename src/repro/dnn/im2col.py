"""im2col / col2im utilities shared by the convolution and pooling layers.

Convolutions are implemented by unrolling input patches into a matrix and
multiplying by the (reshaped) weight matrix — the standard trick used by
Caffe itself, which keeps the numpy implementation fast enough for the
paper's laptop-scale experiments.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unroll `(N, C, H, W)` input into `(N * oh * ow, C * k * k)` patches.

    Returns the patch matrix together with the output spatial sizes.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, pad)
    ow = conv_output_size(w, kernel, stride, pad)
    if pad > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=x.dtype)
    for ky in range(kernel):
        y_end = ky + stride * oh
        for kx in range(kernel):
            x_end = kx + stride * ow
            cols[:, :, ky, kx, :, :] = x[:, :, ky:y_end:stride, kx:x_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        n * oh * ow, c * kernel * kernel
    )
    return cols, oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patches back to `(N, C, H, W)`."""
    n, c, h, w = x_shape
    oh = conv_output_size(h, kernel, stride, pad)
    ow = conv_output_size(w, kernel, stride, pad)
    cols = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ky in range(kernel):
        y_end = ky + stride * oh
        for kx in range(kernel):
            x_end = kx + stride * ow
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[
                :, :, ky, kx, :, :
            ]
    if pad > 0:
        return padded[:, :, pad : pad + h, pad : pad + w]
    return padded
