"""``repro.faults`` — deterministic fault injection for storage code.

The durability story of PAS/DLV (journaled commits, fsck, degraded
retrieval) is only trustworthy if every crash point is actually
exercised.  This package provides:

* :class:`FaultPlan` / :class:`FaultPoint` — a declarative schedule of
  injected failures: ``OSError`` at a site, torn writes, bit flips, or a
  hard crash at the N-th instrumented filesystem operation;
* :func:`inject` — context manager installing the process-global plan;
* :mod:`repro.faults.fs` — instrumented filesystem primitives
  (write+fsync, atomic replace, dir fsync, copy) used by
  :class:`~repro.core.chunkstore.ChunkStore`, the DLV journal, and the
  hub, each a named fault site.

See ``docs/api.md`` ("Durability & recovery") for the site table and a
worked crash-matrix example.
"""

from repro.faults.plan import (
    CrashSimulated,
    FaultError,
    FaultPlan,
    FaultPoint,
    FiredFault,
    get_plan,
    inject,
    set_plan,
)

__all__ = [
    "CrashSimulated",
    "FaultError",
    "FaultPlan",
    "FaultPoint",
    "FiredFault",
    "get_plan",
    "inject",
    "set_plan",
]
