"""``repro.faults`` — deterministic fault injection for storage code.

The durability story of PAS/DLV (journaled commits, fsck, degraded
retrieval) is only trustworthy if every crash point is actually
exercised.  This package provides:

* :class:`FaultPlan` / :class:`FaultPoint` — a declarative schedule of
  injected failures: ``OSError`` at a site, torn writes, bit flips, or a
  hard crash at the N-th instrumented filesystem operation;
* :func:`inject` — context manager installing the process-global plan;
* :mod:`repro.faults.fs` — instrumented filesystem primitives
  (write+fsync, atomic replace, dir fsync, copy) used by
  :class:`~repro.core.chunkstore.ChunkStore`, the DLV journal, and the
  hub, each a named fault site;
* :mod:`repro.faults.net` — the *network* fault layer:
  :class:`NetFaultPlan` / :class:`NetFaultPoint` inject error responses,
  connection drops, truncated bodies, 503+``Retry-After``, and fixed
  delays at the hub HTTP handler seam, which is how the replicated
  fleet's failover and resume paths are chaos-tested deterministically.

See ``docs/api.md`` ("Durability & recovery") for the site table and a
worked crash-matrix example.
"""

from repro.faults.net import (
    FiredNetFault,
    NetFaultPlan,
    NetFaultPoint,
    get_net_plan,
    inject_net,
    set_net_plan,
)
from repro.faults.plan import (
    CrashSimulated,
    FaultError,
    FaultPlan,
    FaultPoint,
    FiredFault,
    get_plan,
    inject,
    set_plan,
)

__all__ = [
    "CrashSimulated",
    "FaultError",
    "FaultPlan",
    "FaultPoint",
    "FiredFault",
    "FiredNetFault",
    "NetFaultPlan",
    "NetFaultPoint",
    "get_net_plan",
    "get_plan",
    "inject",
    "inject_net",
    "set_net_plan",
    "set_plan",
]
