"""Deterministic fault injection: plans, points, and the active-plan hook.

Crash safety cannot be tested by waiting for real crashes.  This module
lets a test declare *exactly* which storage operation misbehaves and how:

* raise :class:`OSError` at a named I/O site,
* tear a write at a byte offset (partial data lands, then the process
  "dies"),
* flip a bit in the bytes being written (silent corruption),
* simulate a hard crash at the N-th instrumented filesystem operation —
  after which every further instrumented operation also fails, exactly as
  a dead process performs no further I/O.

Instrumented sites (:mod:`repro.faults.fs` wrappers inside
:class:`~repro.core.chunkstore.ChunkStore`, the DLV journal, the catalog
commit point, and the hub) consult the process-global *active plan*.
With no plan installed every hook is a no-op, so production code pays a
single ``is None`` check.

Typical use::

    plan = FaultPlan.crash_at_op(7)
    with inject(plan):
        with pytest.raises(CrashSimulated):
            repo.commit(net, name="doomed")
    # plan.ops now reports how far the commit got; the repository on disk
    # is whatever a real crash at that point would have left behind.
"""

from __future__ import annotations

import fnmatch
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

__all__ = [
    "CrashSimulated",
    "FaultError",
    "FaultPoint",
    "FaultPlan",
    "FiredFault",
    "get_plan",
    "set_plan",
    "inject",
]

#: Fault actions a :class:`FaultPoint` can request.
ACTIONS = ("error", "crash", "torn", "bitflip")


class CrashSimulated(BaseException):
    """A simulated hard crash.

    Deliberately *not* an :class:`Exception` subclass: recovery code and
    retry wrappers must never be able to catch and absorb a simulated
    crash — a dead process does not handle exceptions.  Tests catch it
    explicitly.
    """


class FaultError(OSError):
    """The default injected I/O failure (an ``OSError`` subclass)."""


@dataclass
class FaultPoint:
    """One trigger: when a matching op runs, perform ``action``.

    Attributes:
        site: ``fnmatch`` pattern matched against the instrumented site
            name (e.g. ``"chunkstore.put.*"``); ``"*"`` matches any site.
        op: Fire on the N-th *matching* operation (0-based).  ``None``
            fires on the first match.
        action: ``"error"`` raises :class:`FaultError`; ``"crash"``
            raises :class:`CrashSimulated` and kills all later ops;
            ``"torn"`` truncates the write to ``offset`` bytes and then
            crashes; ``"bitflip"`` flips bit ``bit`` of the written
            payload and lets the write proceed (silent corruption).
        offset: Torn-write length in bytes.
        bit: Bit index flipped by ``bitflip`` (into the full payload).
        message: Text carried by the raised error.
        once: Fire at most one time (default) — a second matching op
            proceeds normally, which is what retry tests need.
    """

    site: str = "*"
    op: Optional[int] = None
    action: str = "error"
    offset: int = 0
    bit: int = 0
    message: str = "injected fault"
    once: bool = True

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        self.fired = False
        self._matches_seen = 0

    def matches(self, site: str, is_write: bool) -> bool:
        """Does this point trigger for the current operation?"""
        if self.fired and self.once:
            return False
        if not fnmatch.fnmatch(site, self.site):
            return False
        index = self._matches_seen
        self._matches_seen += 1
        if self.op is not None and index != self.op:
            return False
        if self.action in ("torn", "bitflip") and not is_write:
            return False
        return True


@dataclass
class FiredFault:
    """Record of one fault that actually triggered (for assertions)."""

    site: str
    op: int
    action: str


class FaultPlan:
    """A deterministic schedule of faults plus an op counter.

    A plan with no points and no ``crash_at`` never raises — it just
    counts instrumented operations, which is how the crash-matrix test
    measures how many ops a scenario performs before replaying it with a
    crash at every index.
    """

    def __init__(
        self,
        points: Sequence[FaultPoint] = (),
        crash_at: Optional[int] = None,
    ) -> None:
        self.points = list(points)
        self.crash_at = crash_at
        self.ops = 0
        self.crashed = False
        self.fired: list[FiredFault] = []
        self._lock = threading.RLock()

    @classmethod
    def crash_at_op(cls, n: int) -> "FaultPlan":
        """Plan that hard-crashes at the ``n``-th instrumented op (0-based)."""
        return cls(crash_at=n)

    # -- hooks called by repro.faults.fs ------------------------------------

    def on_op(self, site: str) -> None:
        """Count a non-write operation and maybe fault it."""
        with self._lock:
            self._step(site, is_write=False)

    def on_write(self, site: str, data: bytes) -> tuple[bytes, bool]:
        """Count a write; returns ``(data_to_write, crash_after_write)``.

        Torn writes return a truncated payload with ``crash_after=True``
        so the caller persists the partial bytes *before* the simulated
        death.  Bit flips return corrupted bytes that are written
        normally.
        """
        with self._lock:
            point = self._step(site, is_write=True)
            if point is None:
                return data, False
            if point.action == "torn":
                return data[: point.offset], True
            # bitflip
            flipped = bytearray(data)
            if flipped:
                index = (point.bit // 8) % len(flipped)
                flipped[index] ^= 1 << (point.bit % 8)
            return bytes(flipped), False

    def _step(self, site: str, is_write: bool) -> Optional[FaultPoint]:
        """Common counting/matching; raises for error/crash actions."""
        if self.crashed:
            raise CrashSimulated(
                f"operation {site!r} after simulated crash (op {self.ops})"
            )
        op_index = self.ops
        self.ops += 1
        if self.crash_at is not None and op_index == self.crash_at:
            self.crashed = True
            self.fired.append(FiredFault(site, op_index, "crash"))
            raise CrashSimulated(f"simulated crash at op {op_index} ({site})")
        for point in self.points:
            if not point.matches(site, is_write):
                continue
            point.fired = True
            self.fired.append(FiredFault(site, op_index, point.action))
            if point.action == "error":
                raise FaultError(f"{point.message} [site={site} op={op_index}]")
            if point.action == "crash":
                self.crashed = True
                raise CrashSimulated(
                    f"{point.message} [site={site} op={op_index}]"
                )
            if point.action == "torn":
                self.crashed = True
            return point
        return None


# -- the process-global active plan ---------------------------------------------

_active_plan: Optional[FaultPlan] = None


def get_plan() -> Optional[FaultPlan]:
    """The currently injected plan, or ``None`` (the default)."""
    return _active_plan


def set_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-global fault plan."""
    global _active_plan
    _active_plan = plan


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope a fault plan: active inside the block, cleared on exit.

    The plan is cleared even when the block dies with
    :class:`CrashSimulated`, so recovery code running *after* the
    simulated crash sees a healthy filesystem again — exactly like a
    process restart.
    """
    previous = get_plan()
    set_plan(plan)
    try:
        yield plan
    finally:
        set_plan(previous)
