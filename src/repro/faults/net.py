"""Deterministic *network* fault injection for the hub's HTTP tier.

:mod:`repro.faults.plan` models storage failures (torn writes, crashed
processes).  This module models the other half of a replicated hub's
failure surface: the network between a puller and a peer.  A
:class:`NetFaultPlan` declares exactly which HTTP requests misbehave and
how, at the handler seam inside
:class:`~repro.hub.httpd.HubHTTPServer` — the one point every request
passes through, whatever transport quirks the client has.

Fault actions:

``error``
    Respond with an HTTP error status (default 500) instead of routing.
``unavailable``
    Respond 503 with an optional ``Retry-After`` header — the polite
    overload signal :class:`~repro.hub.retry.Retrier` honors.
``drop``
    Close the connection without writing any response: the client sees
    ``RemoteDisconnected`` / ``ECONNRESET``, exactly like a peer dying
    mid-request.
``truncate``
    Send the response headers with the *full* ``Content-Length`` but
    only the first ``offset`` body bytes, then close: the client's read
    fails with ``IncompleteRead`` — a torn transfer.
``delay``
    Sleep ``delay_s`` (through the plan's injectable ``sleep``) before
    handling normally — a slow peer.  Tests inject a recording sleep so
    no real time passes.

Sites are ``"<peer>:<path>"`` strings (e.g.
``"n1:/v1/repos/demo/3/files/catalog.db"``) matched with ``fnmatch``
patterns, so a plan can target one peer, one route, or one exact file.
A point's ``op``/``count`` select *which* matching requests fire —
``op=4, count=2`` means "the 5th and 6th matching requests fail", which
is how flapping peers are scripted deterministically.

With no plan installed the hook is a single ``is None`` check per
request.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.obs.metrics import counter

__all__ = [
    "NET_ACTIONS",
    "FiredNetFault",
    "NetFaultPlan",
    "NetFaultPoint",
    "get_net_plan",
    "inject_net",
    "set_net_plan",
]

#: Fault actions a :class:`NetFaultPoint` can request.
NET_ACTIONS = ("error", "unavailable", "drop", "truncate", "delay")


@dataclass
class NetFaultPoint:
    """One trigger: when a matching request arrives, perform ``action``.

    Attributes:
        site: ``fnmatch`` pattern matched against ``"<peer>:<path>"``.
        op: Fire starting at the N-th *matching* request (0-based);
            ``None`` fires from the first match.
        count: Number of consecutive matching requests to fire on —
            ``count=2`` takes a peer down for exactly two requests, so a
            flapping peer is a list of points at different ``op`` values.
        action: One of :data:`NET_ACTIONS`.
        status: HTTP status for ``error`` (default 500).
        retry_after: ``Retry-After`` seconds sent with ``unavailable``.
        offset: Body bytes actually sent by ``truncate``.
        delay_s: Seconds slept by ``delay`` (via the plan's ``sleep``).
        message: Text carried in injected error bodies.
    """

    site: str = "*"
    op: Optional[int] = None
    count: int = 1
    action: str = "drop"
    status: int = 500
    retry_after: Optional[float] = None
    offset: int = 0
    delay_s: float = 0.0
    message: str = "injected network fault"

    def __post_init__(self) -> None:
        if self.action not in NET_ACTIONS:
            raise ValueError(
                f"unknown net fault action {self.action!r}; "
                f"expected one of {NET_ACTIONS}"
            )
        if self.count < 1:
            raise ValueError("count must be >= 1")
        self._matches_seen = 0
        self.fired_count = 0

    def matches(self, site: str) -> bool:
        """Does this point trigger for the current request?"""
        if not fnmatch.fnmatch(site, self.site):
            return False
        index = self._matches_seen
        self._matches_seen += 1
        first = self.op if self.op is not None else 0
        if not (first <= index < first + self.count):
            return False
        self.fired_count += 1
        return True


@dataclass
class FiredNetFault:
    """Record of one network fault that actually triggered."""

    site: str
    op: int
    action: str


class NetFaultPlan:
    """A deterministic schedule of network faults plus a request counter.

    Args:
        points: Fault triggers, consulted in order; the first match wins.
        sleep: Injectable sleep used by ``delay`` points — tests pass a
            recorder so chaos runs take no real wall time.
    """

    def __init__(
        self,
        points: Sequence[NetFaultPoint] = (),
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.points = list(points)
        self.sleep = sleep if sleep is not None else time.sleep
        self.ops = 0
        self.fired: list[FiredNetFault] = []
        self._lock = threading.Lock()

    def on_request(self, site: str) -> Optional[NetFaultPoint]:
        """Consult the plan for one request; returns the firing point.

        ``delay`` points sleep here (outside the plan lock is not needed
        — the injected sleep is the fault) and return ``None`` so the
        handler proceeds normally; every other action is interpreted by
        the caller.
        """
        with self._lock:
            op_index = self.ops
            self.ops += 1
            point = None
            # Every point sees every request (so each point's op window
            # counts *site matches*, not leftovers after earlier points);
            # the first firing point wins.
            for candidate in self.points:
                hit = candidate.matches(site)
                if hit and point is None:
                    point = candidate
            if point is None:
                return None
            self.fired.append(FiredNetFault(site, op_index, point.action))
            counter("faults.net.fired").inc()
            counter(f"faults.net.fired.{point.action}").inc()
        if point.action == "delay":
            self.sleep(point.delay_s)
            return None
        return point


# -- the process-global active plan ---------------------------------------------

_active_net_plan: Optional[NetFaultPlan] = None


def get_net_plan() -> Optional[NetFaultPlan]:
    """The currently injected network plan, or ``None`` (the default)."""
    return _active_net_plan


def set_net_plan(plan: Optional[NetFaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-global network plan."""
    global _active_net_plan
    _active_net_plan = plan


@contextmanager
def inject_net(plan: NetFaultPlan) -> Iterator[NetFaultPlan]:
    """Scope a network fault plan: active inside the block, cleared on exit."""
    previous = get_net_plan()
    set_net_plan(plan)
    try:
        yield plan
    finally:
        set_net_plan(previous)
