"""Fault-instrumented filesystem primitives with explicit durability.

Every mutation the storage layer performs — chunk blobs, journal intent
files, hub trees — goes through these wrappers so that

1. an injected :class:`~repro.faults.plan.FaultPlan` can fail, tear,
   corrupt, or crash any individual operation, and
2. durability is uniform: data files are fsynced before rename, and
   parent directories are fsynced after entry creation/removal, which is
   what makes ``os.replace``-based commits actually crash-safe on POSIX.

With no plan injected the wrappers add one ``is None`` check per call.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Optional

from repro.faults.plan import CrashSimulated, get_plan

__all__ = [
    "checkpoint",
    "copyfile",
    "copytree",
    "fsync_dir",
    "prepare_write",
    "replace",
    "unlink",
    "write_bytes",
]


def checkpoint(site: str) -> None:
    """Count a logical operation (e.g. a catalog commit) as a fault site."""
    plan = get_plan()
    if plan is not None:
        plan.on_op(site)


def prepare_write(site: str, data: bytes) -> tuple[bytes, bool]:
    """Run the active plan's write hook for a non-file write.

    Storage backends that persist bytes somewhere other than a loose
    file (a sqlite blob column, an in-memory table) call this with the
    payload they are about to store.  The returned bytes may be torn or
    bit-flipped; the caller must persist them *first* and only then
    raise :class:`CrashSimulated` when ``crash_after`` is true — the
    same persisted-partial-then-died semantics :func:`write_bytes`
    gives loose files.
    """
    plan = get_plan()
    if plan is None:
        return data, False
    return plan.on_write(site, data)


def write_bytes(
    path: str | Path, data: bytes, *, site: str, fsync: bool = True
) -> None:
    """Write ``data`` to ``path``, fsyncing the file before returning.

    Under an active fault plan the payload may be torn (partial bytes are
    persisted, then :class:`CrashSimulated` is raised) or bit-flipped
    (corrupt bytes persist silently), modelling the two classic
    half-write outcomes.
    """
    plan = get_plan()
    crash_after = False
    if plan is not None:
        data, crash_after = plan.on_write(site, data)
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    if crash_after:
        raise CrashSimulated(f"simulated crash after torn write ({site})")


def replace(src: str | Path, dst: str | Path, *, site: str) -> None:
    """Atomic rename (the commit point of a write-then-rename protocol)."""
    checkpoint(site)
    os.replace(src, dst)


def fsync_dir(path: str | Path, *, site: Optional[str] = None) -> None:
    """Fsync a directory so renames/creations inside it are durable.

    Directory fsync is advisory on some platforms; failures to *open*
    the directory are ignored (Windows), but an injected fault at the
    site still fires.
    """
    if site is not None:
        checkpoint(site)
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def unlink(path: str | Path, *, site: str, missing_ok: bool = False) -> None:
    """Remove a file."""
    checkpoint(site)
    Path(path).unlink(missing_ok=missing_ok)


def copyfile(src: str | Path, dst: str | Path, *, site: str) -> None:
    """Copy one file (associated-file ingestion, quarantine moves)."""
    checkpoint(site)
    shutil.copyfile(src, dst)


def copytree(src: str | Path, dst: str | Path, *, site: str) -> None:
    """Copy a directory tree (hub publish/pull)."""
    checkpoint(site)
    shutil.copytree(src, dst)
