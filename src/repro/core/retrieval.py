"""Physical archival and recreation of snapshots from a storage plan.

:class:`PlanArchive` takes a computed :class:`~repro.core.storage_graph.StoragePlan`
and actually writes the artifacts to a chunk store: each tree edge becomes
either a materialized matrix (root edges) or a delta payload, stored as
four separately-compressed byte planes (the segmented design of
Sec. IV-B).  Retrieval then supports:

* the three recreation schemes of Table III — independent (one matrix at a
  time), parallel (thread pool), and reusable (cache shared path
  prefixes);
* *partial* retrieval reading only the first ``k`` high-order byte planes
  (the Table V "2 bytes" / "1 byte" rows);
* interval retrieval, returning per-weight bounds for the progressive
  evaluator (Sec. IV-D).
"""

from __future__ import annotations

import contextvars
import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.obs.cost import charge
from repro.obs.metrics import counter, histogram
from repro.obs.tracing import trace_span

from repro.core.delta import apply_delta, delta_sub, delta_xor, embed_like
from repro.dedup.pages import decode_plane as _decode_paged_plane
from repro.dedup.pages import manifest_shas as _manifest_shas
from repro.core.segmentation import (
    NUM_PLANES,
    assemble_planes,
    bounds_from_prefix,
    segment_planes,
)
from repro.core.storage_graph import (
    ROOT,
    RetrievalScheme,
    StoragePlan,
)


@dataclass
class RecreationResult:
    """Outcome of recreating a snapshot.

    Attributes:
        matrices: ``matrix_id -> float32 array`` (approximate under partial
            retrieval).
        seconds: Wall-clock recreation time.
        bytes_read: Total stored (compressed) bytes touched.
        planes: How many byte planes were read per payload.
    """

    matrices: dict[str, np.ndarray]
    seconds: float
    bytes_read: int
    planes: int = NUM_PLANES


@dataclass
class RecoveryEvent:
    """One plane read that needed the recovery path.

    ``action`` is ``"replica"`` (exact bytes served from the replica
    tier) or ``"zero-fill"`` (low-order plane lost; zeros substituted —
    the partial-retrieval semantics of Table V, so the value is
    approximate but the snapshot stays readable).
    """

    matrix_id: str
    sha: str
    plane: int
    action: str
    exact: bool
    error: str

    def to_dict(self) -> dict:
        return {
            "matrix_id": self.matrix_id,
            "sha": self.sha,
            "plane": self.plane,
            "action": self.action,
            "exact": self.exact,
            "error": self.error,
        }


@dataclass
class RecoveryReport:
    """Structured account of every degraded/recovered read on an archive."""

    events: list[RecoveryEvent] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def degraded(self) -> bool:
        """True when at least one recovery was inexact (zero-filled)."""
        return any(not e.exact for e in self.events)

    def to_dict(self) -> dict:
        return {
            "events": [e.to_dict() for e in self.events],
            "degraded": self.degraded,
        }


@dataclass
class _StoredPayload:
    """Manifest entry for one archived matrix.

    ``kind="pages"`` payloads are root-anchored like ``materialize`` but
    store no plane chunks; instead ``pages`` maps each plane index to a
    page manifest (see :mod:`repro.dedup.pages`) resolving into the
    shared, refcounted page tier.
    """

    matrix_id: str
    parent: str
    kind: str  # "materialize" | "sub" | "xor" | "pages"
    shape: tuple
    chunk_ids: list[str] = field(default_factory=list)
    pages: Optional[dict[int, dict]] = None


class PlanArchive:
    """A storage plan made physical on a chunk store.

    Args:
        store: Chunk store for the high-order byte planes.
        level: zlib level (informational; stores own their compression).
        low_order_store: Optional second store for the low-order planes —
            the paper's "offload low-order bytes to remote storage"
            design.  When given, planes with index >= ``offload_from`` are
            written to and read from it.
        offload_from: First plane index routed to ``low_order_store``.
        replica_store: Optional redundancy tier holding second copies of
            the high-order planes (written for plane indexes below
            ``replicate_planes``).  On a failed integrity check, reads
            fall back to it — the archive's "alternate path".
        replicate_planes: How many leading planes are mirrored on write.
        degraded: Permit lossy recovery — when a plane with index >= 1
            cannot be read from either store, substitute zeros instead of
            raising, recording a :class:`RecoveryEvent`.  Plane 0
            (sign/exponent) is never zero-filled: without it the value
            would be garbage rather than an approximation.
        page_store: A :class:`~repro.dedup.store.PageStore` for
            ``kind="pages"`` payloads — required to build or read
            page-encoded (cross-model deduplicated) matrices.
        plane_cache: Optional :class:`~repro.serve.cache.PlaneCache`;
            when set, page blobs are read through it under
            ``("page", sha)`` keys, so pages shared across models occupy
            cache bytes once and cold loads coalesce (single-flight)
            across every model being served.
    """

    def __init__(
        self,
        store,
        level: int = 6,
        low_order_store=None,
        offload_from: int = 2,
        replica_store=None,
        replicate_planes: int = 2,
        degraded: bool = False,
        page_store=None,
        plane_cache=None,
    ) -> None:
        self.store = store
        self.level = level
        self.low_order_store = low_order_store
        self.offload_from = offload_from
        self.replica_store = replica_store
        self.replicate_planes = replicate_planes
        self.degraded = degraded
        self.page_store = page_store
        self.plane_cache = plane_cache
        self.recovery = RecoveryReport()
        self._manifest: dict[str, _StoredPayload] = {}
        self._snapshots: dict[str, list[str]] = {}

    def plane_store(self, plane: int):
        """The chunk store responsible for one byte plane."""
        if self.low_order_store is not None and plane >= self.offload_from:
            return self.low_order_store
        return self.store

    # -- writing ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        store,
        matrices: dict[str, np.ndarray],
        plan: StoragePlan,
        delta_kind: str = "sub",
        low_order_store=None,
        offload_from: int = 2,
        replica_store=None,
        replicate_planes: int = 2,
        page_store=None,
    ) -> "PlanArchive":
        """Archive ``matrices`` according to ``plan``.

        Args:
            store: A :class:`~repro.core.chunkstore.ChunkStore` (or the
                in-memory variant).
            matrices: ``matrix_id -> float32 array`` for every matrix the
                plan covers.
            plan: The storage plan to follow; every non-root edge becomes a
                delta of kind ``delta_kind``.
            delta_kind: ``"sub"`` or ``"xor"``.
            low_order_store / offload_from: Optional remote tier for the
                low-order byte planes (see class docs).
            replica_store / replicate_planes: Optional redundancy tier for
                the high-order byte planes (see class docs).
            page_store: Dedup page tier; required when the plan contains
                ``kind="pages"`` root edges (``--dedup`` archival).
        """
        plan.validate()
        archive = cls(
            store,
            low_order_store=low_order_store,
            offload_from=offload_from,
            replica_store=replica_store,
            replicate_planes=replicate_planes,
            page_store=page_store,
        )
        archive._snapshots = plan.graph.snapshots
        # Write parents before children so delta bases conceptually exist;
        # content-addressing makes the order immaterial on disk but the
        # traversal doubles as a completeness check.
        pending = list(plan.parent_edge)
        placed = {ROOT}
        while pending:
            progressed = False
            remaining = []
            for matrix_id in pending:
                parent = plan.parent(matrix_id)
                if parent not in placed:
                    remaining.append(matrix_id)
                    continue
                archive._write_payload(
                    matrix_id,
                    parent,
                    matrices,
                    delta_kind,
                    as_pages=plan.parent_edge[matrix_id].kind == "pages",
                )
                placed.add(matrix_id)
                progressed = True
            if not progressed:
                raise ValueError("storage plan contains an orphaned chain")
            pending = remaining
        return archive

    def _write_payload(
        self,
        matrix_id: str,
        parent: str,
        matrices: dict[str, np.ndarray],
        delta_kind: str,
        as_pages: bool = False,
    ) -> None:
        target = np.asarray(matrices[matrix_id], dtype=np.float32)
        if as_pages:
            self._write_paged_payload(matrix_id, target)
            return
        if parent == ROOT:
            payload = target
            kind = "materialize"
        else:
            base = np.asarray(matrices[parent], dtype=np.float32)
            if base.shape != target.shape:
                # Footnote-3 mismatched-dimension delta: crop/pad the base.
                base = embed_like(base, target.shape)
            if delta_kind == "sub":
                payload = delta_sub(target, base)
            else:
                payload = delta_xor(target, base).view("<f4")
            kind = delta_kind
        planes = segment_planes(payload)
        entry = _StoredPayload(matrix_id, parent, kind, target.shape)
        for index, plane in enumerate(planes):
            entry.chunk_ids.append(self.plane_store(index).put(plane))
            if self.replica_store is not None and index < self.replicate_planes:
                self.replica_store.put(plane)
        self._manifest[matrix_id] = entry

    def _write_paged_payload(self, matrix_id: str, target: np.ndarray) -> None:
        """Page-encode a matrix into the shared dedup tier.

        The replica tier still mirrors the leading *assembled* planes
        (keyed by the plane digest recorded in the manifest), so the
        exact-recovery guarantee of the replica design survives page
        encoding.
        """
        if self.page_store is None:
            raise ValueError(
                "plan contains page-dedup edges but no page_store was given"
            )
        entry = _StoredPayload(matrix_id, ROOT, "pages", target.shape, pages={})
        for index, plane in enumerate(segment_planes(target)):
            entry.pages[index] = self.page_store.encode_plane(plane)
            if self.replica_store is not None and index < self.replicate_planes:
                self.replica_store.put(plane)
        self._manifest[matrix_id] = entry

    # -- manifest -------------------------------------------------------------

    @property
    def manifest(self) -> dict[str, _StoredPayload]:
        return dict(self._manifest)

    def to_manifest_dict(self) -> dict:
        """JSON-serializable manifest (written by ``dlv archive``)."""
        payloads = {}
        for m, e in self._manifest.items():
            entry = {
                "parent": e.parent,
                "kind": e.kind,
                "shape": list(e.shape),
                "chunks": e.chunk_ids,
            }
            if e.pages is not None:
                entry["pages"] = {str(i): man for i, man in e.pages.items()}
            payloads[m] = entry
        return {"snapshots": self._snapshots, "payloads": payloads}

    @classmethod
    def from_manifest_dict(
        cls,
        store,
        manifest: dict,
        low_order_store=None,
        offload_from: int = 2,
        replica_store=None,
        replicate_planes: int = 2,
        degraded: bool = False,
        page_store=None,
        plane_cache=None,
    ) -> "PlanArchive":
        """Reopen an archive from its serialized manifest."""
        archive = cls(
            store,
            low_order_store=low_order_store,
            offload_from=offload_from,
            replica_store=replica_store,
            replicate_planes=replicate_planes,
            degraded=degraded,
            page_store=page_store,
            plane_cache=plane_cache,
        )
        archive._snapshots = {
            k: list(v) for k, v in manifest["snapshots"].items()
        }
        for matrix_id, entry in manifest["payloads"].items():
            pages = entry.get("pages")
            archive._manifest[matrix_id] = _StoredPayload(
                matrix_id,
                entry["parent"],
                entry["kind"],
                tuple(entry["shape"]),
                list(entry["chunks"]),
                {int(i): man for i, man in pages.items()}
                if pages is not None
                else None,
            )
        return archive

    def total_size(self) -> int:
        """Stored bytes of all chunks and pages referenced by this archive.

        Pages shared across matrices (the dedup win) count once.
        """
        seen = set()
        total = 0
        for entry in self._manifest.values():
            for index, sha in enumerate(entry.chunk_ids):
                if sha not in seen:
                    seen.add(sha)
                    total += self.plane_store(index).stored_size(sha)
            if entry.pages:
                for manifest in entry.pages.values():
                    for sha in _manifest_shas(manifest):
                        if sha not in seen:
                            seen.add(sha)
                            total += self.page_store.blobs.stored_size(sha)
        return total

    def plane_stored_size(self, entry: _StoredPayload, index: int) -> int:
        """Stored bytes behind one plane of one payload (pages-aware)."""
        if entry.kind == "pages":
            manifest = (entry.pages or {}).get(index)
            if manifest is None:
                return 0
            total = 0
            for sha in set(_manifest_shas(manifest)):
                try:
                    total += self.page_store.blobs.stored_size(sha)
                except KeyError:
                    continue
            return total
        return self.plane_store(index).stored_size(entry.chunk_ids[index])

    def snapshot_fingerprint(self, snapshot_id: str) -> Optional[str]:
        """Content fingerprint of a snapshot's stored weights.

        Two snapshots whose payload chains resolve to identical content
        (e.g. fine-tuned family members restored from the same base, or
        copies of one model served under two names) get equal
        fingerprints, letting the serve tier key shared caches by
        *content* instead of snapshot identity.  Returns ``None`` when
        any member's chain is unknown (caller falls back to the id).
        """
        members = self._snapshots.get(snapshot_id)
        if members is None:
            return None
        memo: dict[str, str] = {}

        def chain_fp(matrix_id: str) -> Optional[str]:
            chain = []
            current = matrix_id
            while current != ROOT and current not in memo:
                entry = self._manifest.get(current)
                if entry is None:
                    return None
                chain.append(entry)
                current = entry.parent
            below = memo.get(current, "root")
            for entry in reversed(chain):
                parts = [below, entry.kind, *entry.chunk_ids]
                if entry.pages:
                    for index in sorted(entry.pages):
                        for base, patch in entry.pages[index]["pages"]:
                            parts.append(patch or base)
                below = hashlib.sha256("|".join(parts).encode()).hexdigest()
                memo[entry.matrix_id] = below
            return memo[matrix_id]

        digest = hashlib.sha256()
        for matrix_id in sorted(members):
            fp = chain_fp(matrix_id)
            if fp is None:
                return None
            tail = matrix_id.rsplit("/", 1)[-1]
            digest.update(f"{tail}={fp};".encode())
        return digest.hexdigest()[:16]

    # -- reading ----------------------------------------------------------------

    def _read_payload(
        self, matrix_id: str, planes: int
    ) -> tuple[np.ndarray, int]:
        """Read one payload's first ``planes`` byte planes, zero-filling.

        Returns `(payload_array, stored_bytes_read)`.
        """
        entry = self._manifest[matrix_id]
        count = int(np.prod(entry.shape)) if entry.shape else 1
        buffers = []
        bytes_read = 0
        for i in range(NUM_PLANES):
            if i < planes:
                data, nbytes = self._fetch_plane(entry, i)
                buffers.append(data if data is not None else b"\x00" * count)
                bytes_read += nbytes
            else:
                buffers.append(b"\x00" * count)
        return assemble_planes(buffers, entry.shape), bytes_read

    def _fetch_plane(
        self, entry: _StoredPayload, index: int
    ) -> tuple[Optional[bytes], int]:
        """Read one plane chunk, taking the recovery path on failure.

        Returns ``(bytes, stored_size)``; ``(None, 0)`` means the plane
        was lost and the caller should zero-fill it (degraded mode).
        """
        if entry.kind == "pages":
            return self._fetch_paged_plane(entry, index)
        sha = entry.chunk_ids[index]
        store = self.plane_store(index)
        try:
            data, nbytes = store.get(sha), store.stored_size(sha)
        except (KeyError, ValueError) as exc:
            data, nbytes = self._recover_plane(entry, index, sha, exc)
        if data is not None:
            # Per-plane byte accounting for the active request's bill
            # (stored/compressed bytes — the paper's progressive-query
            # byte-savings unit).
            charge(planes_fetched=1, plane_bytes={index: nbytes})
        return data, nbytes

    def _fetch_page(self, sha: str) -> bytes:
        """Read one page blob, through the shared cache when present."""
        blobs = self.page_store.blobs
        if self.plane_cache is None:
            return blobs.get(sha)

        def load() -> tuple[bytes, int]:
            data = blobs.get(sha)
            return data, len(data)

        return self.plane_cache.get_or_load(("page", sha), load)

    def _fetch_paged_plane(
        self, entry: _StoredPayload, index: int
    ) -> tuple[Optional[bytes], int]:
        """Reassemble one page-encoded plane, with the recovery ladder.

        Bills the plane's stored (deduplicated) footprint exactly like a
        direct chunk read — ``charge(planes_fetched=1, plane_bytes=...)``
        — so page-assembled retrievals cost the same units as chunked
        ones.  A lost page falls back to the replica copy of the whole
        assembled plane, then (planes >= 1, degraded mode) to zero-fill.
        """
        if self.page_store is None:
            raise KeyError(
                f"{entry.matrix_id!r} is page-encoded but this archive has "
                "no page store"
            )
        manifest = (entry.pages or {}).get(index)
        if manifest is None:
            raise KeyError(
                f"{entry.matrix_id!r} has no page manifest for plane {index}"
            )
        nbytes = self.plane_stored_size(entry, index)
        try:
            data = _decode_paged_plane(manifest, self._fetch_page)
        except (KeyError, ValueError) as exc:
            data, nbytes = self._recover_paged_plane(entry, index, manifest, exc)
        if data is not None:
            charge(planes_fetched=1, plane_bytes={index: nbytes})
        return data, nbytes

    def _recover_paged_plane(
        self,
        entry: _StoredPayload,
        index: int,
        manifest: dict,
        exc: Exception,
    ) -> tuple[Optional[bytes], int]:
        """Alternate path for a paged plane: replica plane, then zero-fill."""
        plane_sha = manifest.get("sha", "")
        if self.replica_store is not None and plane_sha:
            try:
                data = self.replica_store.get(plane_sha)
            except (KeyError, ValueError):
                pass
            else:
                self.recovery.events.append(
                    RecoveryEvent(
                        entry.matrix_id, plane_sha, index, "replica", True,
                        str(exc),
                    )
                )
                counter("recovery.replica_reads").inc()
                try:
                    nbytes = self.replica_store.stored_size(plane_sha)
                except KeyError:  # pragma: no cover - store raced away
                    nbytes = len(data)
                return data, nbytes
        if self.degraded and index >= 1:
            lost: list[str] = []
            data = _decode_paged_plane(
                manifest,
                self._fetch_page,
                missing_ok=True,
                on_missing=lambda sha, _err: lost.append(sha),
            )
            for sha in lost:
                self.recovery.events.append(
                    RecoveryEvent(
                        entry.matrix_id, sha, index, "zero-fill", False,
                        str(exc),
                    )
                )
            counter("recovery.degraded_pages").inc(max(1, len(lost)))
            return data, self.plane_stored_size(entry, index)
        counter("recovery.failures").inc()
        raise exc

    def _recover_plane(
        self, entry: _StoredPayload, index: int, sha: str, exc: Exception
    ) -> tuple[Optional[bytes], int]:
        """Alternate-path read: replica tier first, then zero-fill."""
        if self.replica_store is not None:
            try:
                data = self.replica_store.get(sha)
            except (KeyError, ValueError):
                pass
            else:
                self.recovery.events.append(
                    RecoveryEvent(
                        entry.matrix_id, sha, index, "replica", True, str(exc)
                    )
                )
                counter("recovery.replica_reads").inc()
                try:
                    nbytes = self.replica_store.stored_size(sha)
                except KeyError:  # pragma: no cover - store raced away
                    nbytes = len(data)
                return data, nbytes
        if self.degraded and index >= 1:
            self.recovery.events.append(
                RecoveryEvent(
                    entry.matrix_id, sha, index, "zero-fill", False, str(exc)
                )
            )
            counter("recovery.degraded_planes").inc()
            return None, 0
        counter("recovery.failures").inc()
        raise exc

    def _resolve(
        self,
        matrix_id: str,
        planes: int,
        cache: Optional[dict[str, np.ndarray]] = None,
    ) -> tuple[np.ndarray, int]:
        """Recreate one matrix by walking its path from the root."""
        if cache is not None and matrix_id in cache:
            return cache[matrix_id], 0
        chain = []
        current = matrix_id
        while current != ROOT:
            if cache is not None and current in cache:
                break
            chain.append(current)
            current = self._manifest[current].parent
        value = cache[current] if (cache is not None and current != ROOT) else None
        bytes_read = 0
        for node in reversed(chain):
            payload, nbytes = self._read_payload(node, planes)
            bytes_read += nbytes
            entry = self._manifest[node]
            if entry.kind in ("materialize", "pages"):
                value = payload
            else:
                if value.shape != payload.shape:
                    value = embed_like(value, payload.shape)
                if entry.kind == "sub":
                    value = apply_delta(value, payload, "sub")
                else:
                    value = apply_delta(value, payload.view("<u4"), "xor")
            if cache is not None:
                cache[node] = value
        return value, bytes_read

    def recreate_matrix(
        self, matrix_id: str, planes: int = NUM_PLANES
    ) -> np.ndarray:
        """Recreate a single matrix (approximately when ``planes < 4``)."""
        if matrix_id not in self._manifest:
            raise KeyError(f"unknown matrix {matrix_id!r}")
        with trace_span("pas.matrix", matrix=matrix_id, planes=planes) as span:
            value, nbytes = self._resolve(matrix_id, planes)
            span.set_attr("bytes_read", nbytes)
        counter("retrieval.matrices").inc()
        counter("retrieval.bytes_read").inc(nbytes)
        return value

    def recreate_snapshot(
        self,
        snapshot_id: str,
        scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
        planes: int = NUM_PLANES,
        max_workers: int = 4,
    ) -> RecreationResult:
        """Recreate all matrices of a snapshot under a retrieval scheme."""
        if snapshot_id not in self._snapshots:
            raise KeyError(f"unknown snapshot {snapshot_id!r}")
        members = self._snapshots[snapshot_id]

        def resolve_traced(
            matrix_id: str, cache: Optional[dict[str, np.ndarray]] = None
        ) -> tuple[np.ndarray, int]:
            with trace_span(
                "pas.matrix", matrix=matrix_id, planes=planes
            ) as matrix_span:
                value, nbytes = self._resolve(matrix_id, planes, cache)
                matrix_span.set_attr("bytes_read", nbytes)
            return value, nbytes

        bytes_read = 0
        results: dict[str, np.ndarray] = {}
        with trace_span(
            "pas.snapshot",
            snapshot=snapshot_id,
            scheme=scheme.value,
            planes=planes,
        ) as span:
            if scheme is RetrievalScheme.INDEPENDENT:
                for matrix_id in members:
                    value, nbytes = resolve_traced(matrix_id)
                    results[matrix_id] = value
                    bytes_read += nbytes
            elif scheme is RetrievalScheme.PARALLEL:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    # Pool threads inherit no contextvars: copy the caller's
                    # context per task so per-matrix spans stay children of
                    # this snapshot span and cost charges reach the active
                    # request bill instead of vanishing.
                    futures = {
                        matrix_id: pool.submit(
                            contextvars.copy_context().run,
                            resolve_traced,
                            matrix_id,
                        )
                        for matrix_id in members
                    }
                    for matrix_id, future in futures.items():
                        value, nbytes = future.result()
                        results[matrix_id] = value
                        bytes_read += nbytes
            else:  # REUSABLE: cache shared path prefixes.
                cache: dict[str, np.ndarray] = {}
                for matrix_id in members:
                    value, nbytes = resolve_traced(matrix_id, cache)
                    results[matrix_id] = value
                    bytes_read += nbytes
            span.set_attr("bytes_read", bytes_read)
        counter("retrieval.snapshots").inc()
        counter("retrieval.matrices").inc(len(members))
        counter("retrieval.bytes_read").inc(bytes_read)
        histogram("retrieval.snapshot_seconds").observe(span.elapsed)
        return RecreationResult(results, span.elapsed, bytes_read, planes)

    # -- interval retrieval -------------------------------------------------------

    def matrix_bounds(
        self, matrix_id: str, planes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-weight value bounds from the first ``planes`` byte planes.

        Bounds compose along the delta chain by interval addition, so this
        is only supported for ``sub`` (and materialize) payloads; XOR
        deltas do not admit monotone bounds.
        """
        entry = self._manifest[matrix_id]
        chain = []
        current = matrix_id
        while current != ROOT:
            entry = self._manifest[current]
            if entry.kind == "xor":
                raise ValueError(
                    "interval retrieval requires sub deltas; "
                    f"{current!r} is stored as XOR"
                )
            chain.append(current)
            current = entry.parent
        lo_total: Optional[np.ndarray] = None
        hi_total: Optional[np.ndarray] = None
        for node in reversed(chain):
            entry = self._manifest[node]
            prefix = []
            for i in range(planes):
                if entry.kind == "pages":
                    data, _nbytes = self._fetch_paged_plane(entry, i)
                    if data is None:  # degraded zero-fill has no bounds
                        raise KeyError(
                            f"plane {i} of {node!r} is unreadable"
                        )
                    prefix.append(data)
                    continue
                store = self.plane_store(i)
                sha = entry.chunk_ids[i]
                prefix.append(store.get(sha))
                charge(
                    planes_fetched=1,
                    plane_bytes={i: store.stored_size(sha)},
                )
            lo, hi = bounds_from_prefix(prefix, entry.shape)
            if lo_total is None:
                lo_total, hi_total = lo.astype(np.float64), hi.astype(np.float64)
            else:
                if lo_total.shape != lo.shape:
                    # Mismatched-dimension delta: embed bounds (zero-padded
                    # positions are exact zeros, so embedding is exact).
                    lo_total = embed_like(lo_total, lo.shape).astype(np.float64)
                    hi_total = embed_like(hi_total, hi.shape).astype(np.float64)
                lo_total = lo_total + lo
                hi_total = hi_total + hi
        return lo_total, hi_total
