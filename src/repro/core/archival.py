"""Solvers for the Optimal Parameter Archival Storage problem (Sec. IV-C).

Problem 1: given a matrix storage graph, per-snapshot recreation budgets
``theta_i``, and a retrieval scheme, find the storage plan minimizing total
storage cost subject to every snapshot's recreation constraint.  The
problem is NP-hard (Theorem 1); the optimum is a spanning tree for the
independent and parallel schemes (Lemma 2).

Implemented solvers:

* :func:`minimum_spanning_tree` — min total storage, ignores constraints
  (the best-compression extreme of the tradeoff);
* :func:`shortest_path_tree` — min recreation cost per matrix (the
  full-materialization-like extreme; with direct materialization edges
  present this usually *is* materialization);
* :func:`last_tree` — the LAST balanced tree of Khuller et al. [21],
  the paper's baseline, which bounds each matrix's path to
  ``(1 + eps) * shortest`` but cannot see group (co-usage) constraints;
* :func:`pas_mt` — the paper's iterative-refinement algorithm: start from
  the MST and repair broken snapshot constraints with maximum-marginal-gain
  edge swaps (Eq. 1 for independent, Eq. 2 for parallel);
* :func:`pas_pt` — the paper's priority-based tree construction: grow the
  tree cheapest-storage-first, admitting an edge only when the affected
  snapshots' (estimated) budgets still hold, then adjust.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional

from repro.obs.metrics import counter, histogram
from repro.obs.tracing import trace_span

from repro.core.storage_graph import (
    ROOT,
    MatrixStorageGraph,
    RetrievalScheme,
    StorageEdge,
    StoragePlan,
)


def minimum_spanning_tree(graph: MatrixStorageGraph) -> StoragePlan:
    """Prim's MST over storage cost, rooted at ``v0``."""
    graph.validate_connected()
    plan = StoragePlan(graph)
    in_tree = {ROOT}
    heap: list[tuple[float, int, str, StorageEdge]] = []
    counter = 0

    def push_edges(vertex: str) -> None:
        nonlocal counter
        for edge in graph.incident_edges(vertex):
            other = edge.other(vertex)
            if other not in in_tree:
                heapq.heappush(heap, (edge.storage_cost, counter, other, edge))
                counter += 1

    push_edges(ROOT)
    while heap and len(in_tree) <= graph.num_matrices():
        _, _, vertex, edge = heapq.heappop(heap)
        if vertex in in_tree:
            continue
        in_tree.add(vertex)
        plan.parent_edge[vertex] = edge
        push_edges(vertex)
    plan.validate()
    return plan


def shortest_path_distances(
    graph: MatrixStorageGraph,
) -> tuple[dict[str, float], dict[str, StorageEdge]]:
    """Dijkstra from ``v0`` over recreation cost.

    Returns `(distance, best_parent_edge)` maps.
    """
    dist: dict[str, float] = {ROOT: 0.0}
    parent: dict[str, StorageEdge] = {}
    heap: list[tuple[float, int, str]] = [(0.0, 0, ROOT)]
    counter = 1
    settled: set[str] = set()
    while heap:
        d, _, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        for edge in graph.incident_edges(vertex):
            other = edge.other(vertex)
            nd = d + edge.recreation_cost
            if nd < dist.get(other, math.inf):
                dist[other] = nd
                parent[other] = edge
                heapq.heappush(heap, (nd, counter, other))
                counter += 1
    return dist, parent


def shortest_path_tree(graph: MatrixStorageGraph) -> StoragePlan:
    """Dijkstra shortest-path tree over recreation cost, rooted at ``v0``."""
    graph.validate_connected()
    _, parent = shortest_path_distances(graph)
    plan = StoragePlan(graph, dict(parent))
    plan.validate()
    return plan


def last_tree(graph: MatrixStorageGraph, eps: float = 0.5) -> StoragePlan:
    """The LAST balanced spanning tree of Khuller, Raghavachari & Young.

    Starts from the MST, walks it depth-first, and whenever a vertex's
    in-tree root path exceeds ``(1 + eps)`` times its shortest-path
    distance, reparents the vertex onto its shortest-path parent.  The
    result satisfies ``Cr(T, v) <= (1 + eps) * d_spt(v)`` per matrix while
    keeping total storage within ``1 + 2/eps`` of the MST — but it knows
    nothing about snapshot co-usage constraints, which is why the paper's
    algorithms beat it on Problem 1 instances (Fig. 6(c)).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    mst = minimum_spanning_tree(graph)
    spt_dist, spt_parent = shortest_path_distances(graph)
    plan = mst.copy()

    # DFS over the MST from the root, tracking the current in-plan distance.
    children: dict[str, list[str]] = {}
    for matrix_id, edge in mst.parent_edge.items():
        children.setdefault(edge.other(matrix_id), []).append(matrix_id)

    dist_in_plan: dict[str, float] = {ROOT: 0.0}
    stack = [(ROOT, iter(children.get(ROOT, [])))]
    while stack:
        vertex, it = stack[-1]
        child = next(it, None)
        if child is None:
            stack.pop()
            continue
        edge = mst.parent_edge[child]
        candidate = dist_in_plan[vertex] + edge.recreation_cost
        if candidate > (1.0 + eps) * spt_dist[child]:
            plan.parent_edge[child] = spt_parent[child]
            dist_in_plan[child] = spt_dist[child]
        else:
            dist_in_plan[child] = candidate
        stack.append((child, iter(children.get(child, []))))
    plan.validate()
    return plan


def alpha_constraints(
    graph: MatrixStorageGraph,
    alpha: float,
    scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
) -> dict[str, float]:
    """Per-snapshot budgets ``theta_i = alpha * Cr(SPT, s_i)`` (Sec. V-B).

    The SPT cost is the cheapest possible recreation, so ``alpha >= 1``
    scales how much recreation slack the optimizer may spend on storage
    savings.
    """
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    spt = shortest_path_tree(graph)
    return {
        snapshot_id: alpha * cost
        for snapshot_id, cost in spt.all_snapshot_costs(scheme).items()
    }


def frequency_constraints(
    graph: MatrixStorageGraph,
    latest_alpha: float = 1.2,
    checkpoint_alpha: float = 4.0,
    scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
) -> dict[str, float]:
    """Access-frequency-aware budgets (Sec. IV-A).

    Snapshot access is unbalanced: the latest snapshot of each version
    serves most queries, while intermediate checkpoints are touched only
    for debugging and comparisons.  This helper gives each version's
    highest-indexed snapshot a tight budget (``latest_alpha``) and every
    earlier checkpoint a loose one (``checkpoint_alpha``), letting the
    optimizer delta-compress cold snapshots aggressively while keeping hot
    ones fast.

    Snapshot ids must follow the repository convention ``v<X>/s<IDX>``;
    ids that do not parse are treated as latest (tight budget).
    """
    if latest_alpha < 1.0 or checkpoint_alpha < 1.0:
        raise ValueError("alphas must be >= 1")
    spt_costs = shortest_path_tree(graph).all_snapshot_costs(scheme)
    latest_index: dict[str, int] = {}
    parsed: dict[str, tuple[str, int]] = {}
    for snapshot_id in graph.snapshots:
        prefix, _, index_text = snapshot_id.rpartition("/s")
        try:
            index = int(index_text)
        except ValueError:
            continue
        parsed[snapshot_id] = (prefix, index)
        latest_index[prefix] = max(latest_index.get(prefix, -1), index)
    constraints = {}
    for snapshot_id, cost in spt_costs.items():
        if snapshot_id in parsed:
            prefix, index = parsed[snapshot_id]
            is_latest = index == latest_index[prefix]
        else:
            is_latest = True
        alpha = latest_alpha if is_latest else checkpoint_alpha
        constraints[snapshot_id] = alpha * cost
    return constraints


def _unsatisfied(
    plan: StoragePlan, constraints: dict[str, float], scheme: RetrievalScheme
) -> dict[str, float]:
    """Snapshots whose recreation cost exceeds their budget (with slack)."""
    costs = plan.all_snapshot_costs(scheme)
    return {
        s: costs[s] - theta
        for s, theta in constraints.items()
        if costs[s] > theta + 1e-9
    }


def _swap_refinement(
    graph: MatrixStorageGraph,
    plan: StoragePlan,
    constraints: dict[str, float],
    scheme: RetrievalScheme,
    max_iterations: Optional[int] = None,
) -> StoragePlan:
    """Greedy maximum-marginal-gain edge swapping until constraints hold.

    Implements the paper's Eq. 1 (independent) / Eq. 2 (parallel) swap
    selection.  Per iteration the tree is summarised once — an Euler tour
    for O(1) subtree tests and a bottom-up pass aggregating, for every
    vertex, how many (Eq. 1) or which (Eq. 2, as a bitmask) unsatisfied
    snapshots its subtree touches — so each candidate edge is scored in
    O(1).
    """
    snapshots = graph.snapshots
    snapshot_of = {m: s for s, members in snapshots.items() for m in members}
    limit = (
        max_iterations if max_iterations is not None else 4 * len(graph.edges)
    )
    # Minimum meaningful recreation decrease: parallel equal-cost edges and
    # float rounding otherwise produce infinite-gain no-op swaps that thrash.
    scale = max(constraints.values(), default=1.0)
    min_decrease = max(1e-9 * scale, 1e-15)

    for _ in range(limit):
        broken = _unsatisfied(plan, constraints, scheme)
        if not broken:
            break
        broken_bit = {s: 1 << i for i, s in enumerate(broken)}
        matrix_costs = plan.recreation_costs()
        intervals = plan.euler_intervals()
        children = plan.children_map()

        # Bottom-up aggregates over the tree (post-order via Euler exit).
        order = sorted(intervals, key=lambda v: intervals[v][1])
        broken_count: dict[str, int] = {}
        broken_mask: dict[str, int] = {}
        for vertex in order:
            snapshot = snapshot_of.get(vertex)
            count = 1 if snapshot in broken else 0
            mask = broken_bit.get(snapshot, 0)
            for child in children.get(vertex, []):
                count += broken_count[child]
                mask |= broken_mask[child]
            broken_count[vertex] = count
            broken_mask[vertex] = mask

        def in_subtree(ancestor: str, vertex: str) -> bool:
            tin_a, tout_a = intervals[ancestor]
            tin_v = intervals[vertex][0]
            return tin_a <= tin_v < tout_a

        best: Optional[tuple[float, str, StorageEdge]] = None
        for matrix_id in plan.parent_edge:
            if scheme is RetrievalScheme.INDEPENDENT:
                weight = broken_count[matrix_id]
            else:
                weight = bin(broken_mask[matrix_id]).count("1")
            if weight == 0:
                continue
            current_edge = plan.parent_edge[matrix_id]
            for edge in graph.incident_edges(matrix_id):
                new_parent = edge.other(matrix_id)
                if edge is current_edge:
                    continue
                if new_parent != ROOT and in_subtree(matrix_id, new_parent):
                    continue
                parent_cost = (
                    0.0 if new_parent == ROOT else matrix_costs[new_parent]
                )
                decrease = (
                    matrix_costs[matrix_id]
                    - parent_cost
                    - edge.recreation_cost
                )
                if decrease <= min_decrease:
                    continue
                gain_num = decrease * weight
                storage_increase = (
                    edge.storage_cost - current_edge.storage_cost
                )
                gain = (
                    math.inf
                    if storage_increase <= 0
                    else gain_num / storage_increase
                )
                if best is None or gain > best[0]:
                    best = (gain, matrix_id, edge)
        if best is None:
            break
        plan.swap(best[1], best[2])
    plan.validate()
    return plan


def pas_mt(
    graph: MatrixStorageGraph,
    constraints: dict[str, float],
    scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
    max_iterations: Optional[int] = None,
) -> StoragePlan:
    """PAS-MT: MST-based iterative refinement (Sec. IV-C).

    Starting from the minimum spanning tree, repeatedly pick the edge swap
    with the largest marginal gain for the unsatisfied snapshot constraints
    (Eq. 1 for the independent scheme, Eq. 2 for parallel) and apply it,
    until all constraints hold or no swap helps.
    """
    plan = minimum_spanning_tree(graph)
    return _swap_refinement(graph, plan, constraints, scheme, max_iterations)


def pas_pt(
    graph: MatrixStorageGraph,
    constraints: dict[str, float],
    scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
) -> StoragePlan:
    """PAS-PT: priority-based tree construction (Sec. IV-C).

    Grows the tree from ``v0`` examining edges in increasing storage cost.
    An edge admitting a new vertex is accepted only if the recreation
    budgets of the affected snapshots still hold, estimating not-yet-added
    members by their shortest-path lower bound.  After each admission the
    new vertex may adopt existing vertices as children when that lowers
    their storage without raising recreation.  Leftover vertices are
    materialized and the tree adjusted with Eq. 1 swaps.
    """
    graph.validate_connected()
    snapshots = graph.snapshots
    snapshot_of = {
        m: s for s, members in snapshots.items() for m in members
    }
    spt_dist, spt_parent = shortest_path_distances(graph)

    plan = StoragePlan(graph)
    in_tree = {ROOT}
    cost_in_tree: dict[str, float] = {ROOT: 0.0}

    heap: list[tuple[float, int, StorageEdge, str]] = []
    counter = 0

    def push(vertex: str) -> None:
        nonlocal counter
        for edge in graph.incident_edges(vertex):
            other = edge.other(vertex)
            if other not in in_tree:
                heapq.heappush(
                    heap, (edge.storage_cost, counter, edge, other)
                )
                counter += 1

    def group_feasible(candidate: str, candidate_cost: float) -> bool:
        """Check the affected snapshot's budget with lower-bound estimates."""
        snapshot_id = snapshot_of.get(candidate)
        if snapshot_id is None or snapshot_id not in constraints:
            return True
        members = snapshots[snapshot_id]
        costs = []
        for member in members:
            if member == candidate:
                costs.append(candidate_cost)
            elif member in in_tree:
                costs.append(cost_in_tree[member])
            else:
                costs.append(spt_dist[member])
        total = (
            sum(costs)
            if scheme is RetrievalScheme.INDEPENDENT
            else max(costs)
        )
        return total <= constraints[snapshot_id] + 1e-9

    push(ROOT)
    while heap:
        _, _, edge, vertex = heapq.heappop(heap)
        if vertex in in_tree:
            continue
        anchor = edge.other(vertex)
        if anchor not in in_tree:
            continue
        candidate_cost = cost_in_tree[anchor] + edge.recreation_cost
        if not group_feasible(vertex, candidate_cost):
            continue
        in_tree.add(vertex)
        cost_in_tree[vertex] = candidate_cost
        plan.parent_edge[vertex] = edge
        push(vertex)
        # Let existing vertices adopt the newcomer as parent when it's a
        # strictly better storage deal without a recreation regression.
        for inner in graph.incident_edges(vertex):
            other = inner.other(vertex)
            if other in (ROOT,) or other not in in_tree or other == vertex:
                continue
            current = plan.parent_edge.get(other)
            if current is None:
                continue
            if vertex in plan.subtree(other):
                continue
            better_storage = inner.storage_cost < current.storage_cost
            new_cost = cost_in_tree[vertex] + inner.recreation_cost
            not_worse = new_cost <= cost_in_tree[other] + 1e-12
            if better_storage and not_worse:
                plan.swap(other, inner)
                cost_in_tree[other] = new_cost
                _refresh_subtree_costs(plan, other, cost_in_tree)

    # Fallback: attach leftovers via their shortest-path parents.
    leftovers = set(graph.matrices) - in_tree
    for vertex in sorted(leftovers, key=lambda v: spt_dist[v]):
        edge = spt_parent[vertex]
        anchor = edge.other(vertex)
        if anchor not in in_tree:
            # Materialize directly when the SPT parent is also missing.
            direct = min(
                (
                    e
                    for e in graph.incident_edges(vertex)
                    if e.other(vertex) == ROOT
                ),
                key=lambda e: e.storage_cost,
                default=None,
            )
            edge = direct if direct is not None else edge
            anchor = edge.other(vertex)
            if anchor not in in_tree:
                continue
        plan.parent_edge[vertex] = edge
        in_tree.add(vertex)
        cost_in_tree[vertex] = cost_in_tree[anchor] + edge.recreation_cost

    # Any still-unplaced vertex (SPT parent chains outside the tree) —
    # resolve iteratively until a full pass adds nothing.
    remaining = set(graph.matrices) - in_tree
    while remaining:
        progressed = False
        for vertex in sorted(remaining, key=lambda v: spt_dist[v]):
            edge = spt_parent[vertex]
            anchor = edge.other(vertex)
            if anchor in in_tree:
                plan.parent_edge[vertex] = edge
                in_tree.add(vertex)
                cost_in_tree[vertex] = (
                    cost_in_tree[anchor] + edge.recreation_cost
                )
                progressed = True
        remaining = set(graph.matrices) - in_tree
        if not progressed:
            raise RuntimeError("PAS-PT could not complete a spanning tree")

    plan.validate()
    if _unsatisfied(plan, constraints, scheme):
        plan = _adjust_with_swaps(graph, plan, constraints, scheme)
    return plan


def _refresh_subtree_costs(
    plan: StoragePlan, vertex: str, cost_in_tree: dict[str, float]
) -> None:
    """Recompute root-path costs of ``vertex``'s subtree after a swap."""
    frontier = [vertex]
    while frontier:
        current = frontier.pop()
        for child in plan.children(current):
            cost_in_tree[child] = (
                cost_in_tree[current]
                + plan.parent_edge[child].recreation_cost
            )
            frontier.append(child)


def _adjust_with_swaps(
    graph: MatrixStorageGraph,
    plan: StoragePlan,
    constraints: dict[str, float],
    scheme: RetrievalScheme,
) -> StoragePlan:
    """Post-construction adjustment: reuse the Eq. 1/2 swap loop on ``plan``."""
    return _swap_refinement(graph, plan, constraints, scheme)


def spt_tightening(
    graph: MatrixStorageGraph,
    constraints: dict[str, float],
    scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
) -> StoragePlan:
    """Feasible-by-construction solver: start from the SPT and tighten.

    The SPT satisfies any ``alpha >= 1`` budget (its per-snapshot cost is
    the lower bound), so starting there and greedily applying the largest
    storage-saving swaps *that keep every constraint satisfied* yields a
    plan that is always feasible when one exists.  It trades solution
    quality for that guarantee; ``solve("best")`` uses it as the fallback
    when both PAS heuristics miss a budget.
    """
    plan = shortest_path_tree(graph)
    rejected: set[tuple[str, int]] = set()
    edge_index = {id(edge): i for i, edge in enumerate(graph.edges)}

    while True:
        intervals = plan.euler_intervals()
        candidates: list[tuple[float, str, StorageEdge]] = []
        for matrix_id in plan.parent_edge:
            current = plan.parent_edge[matrix_id]
            for edge in graph.incident_edges(matrix_id):
                key = (matrix_id, edge_index[id(edge)])
                if edge is current or key in rejected:
                    continue
                saving = current.storage_cost - edge.storage_cost
                if saving <= 0:
                    continue
                new_parent = edge.other(matrix_id)
                if new_parent != ROOT:
                    tin_a, tout_a = intervals[matrix_id]
                    if tin_a <= intervals[new_parent][0] < tout_a:
                        continue
                candidates.append((saving, matrix_id, edge))
        if not candidates:
            break
        candidates.sort(key=lambda c: -c[0])
        applied = False
        for saving, matrix_id, edge in candidates:
            previous = plan.parent_edge[matrix_id]
            plan.swap(matrix_id, edge)
            if plan.satisfies(constraints, scheme):
                applied = True
                break
            plan.parent_edge[matrix_id] = previous
            rejected.add((matrix_id, edge_index[id(edge)]))
        if not applied:
            break
    plan.validate()
    return plan


SOLVERS = {
    "mst": minimum_spanning_tree,
    "spt": shortest_path_tree,
}


def solve(
    graph: MatrixStorageGraph,
    constraints: Optional[dict[str, float]] = None,
    scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
    algorithm: str = "best",
) -> StoragePlan:
    """High-level entry point used by ``dlv archive``.

    ``algorithm`` is one of ``mst``, ``spt``, ``last``, ``pas-mt``,
    ``pas-pt``, or ``best`` — the paper's recommendation of running both
    PAS algorithms and keeping whichever satisfies the constraints with
    less storage.

    Every solver run is timed into the ``archival.solve`` span and the
    ``archival.solve_seconds`` histogram, attributed per algorithm, so
    ``dlv stats`` shows where plan-search time goes.
    """

    def timed(name: str, solver, *args) -> StoragePlan:
        with trace_span(
            "archival.solve",
            algorithm=name,
            matrices=graph.num_matrices(),
        ) as span:
            plan = solver(graph, *args)
        counter("archival.solves").inc()
        counter(f"archival.solves.{name}").inc()
        histogram("archival.solve_seconds").observe(span.elapsed)
        return plan

    if constraints is None or algorithm == "mst":
        return timed("mst", minimum_spanning_tree)
    if algorithm == "spt":
        return timed("spt", shortest_path_tree)
    if algorithm == "last":
        return timed("last", last_tree)
    if algorithm == "pas-mt":
        return timed("pas-mt", pas_mt, constraints, scheme)
    if algorithm == "pas-pt":
        return timed("pas-pt", pas_pt, constraints, scheme)
    if algorithm == "spt-tighten":
        return timed("spt-tighten", spt_tightening, constraints, scheme)
    if algorithm != "best":
        raise KeyError(f"unknown archival algorithm {algorithm!r}")
    candidates = [
        timed("pas-mt", pas_mt, constraints, scheme),
        timed("pas-pt", pas_pt, constraints, scheme),
    ]
    feasible = [p for p in candidates if p.satisfies(constraints, scheme)]
    if not feasible:
        # Feasible-by-construction fallback (always succeeds for budgets
        # at or above the SPT lower bound).
        feasible = [timed("spt-tighten", spt_tightening, constraints, scheme)]
    return min(feasible, key=lambda p: p.storage_cost())
