"""Parameter inspection from high-order segments only.

The paper notes (end of Sec. IV-D) that exploration queries — matrix
plots, summary statistics, visualizations, ``dlv desc`` / ``dlv diff`` —
can often be executed without retrieving the lower-order bytes at all.
This module implements those queries over a :class:`PlanArchive`: every
statistic is computed from the midpoint estimate of the high-order-prefix
interval, and reported together with a sound error bound derived from the
interval width.
"""

from __future__ import annotations

import numpy as np

from repro.core.retrieval import PlanArchive


def _estimate(archive: PlanArchive, matrix_id: str, planes: int):
    """Midpoint estimate and half-width from ``planes`` high-order bytes."""
    lo, hi = archive.matrix_bounds(matrix_id, planes)
    mid = (lo + hi) / 2.0
    half_width = (hi - lo) / 2.0
    return mid, half_width


def segment_stats(
    archive: PlanArchive, matrix_id: str, planes: int = 2
) -> dict:
    """Summary statistics of an archived matrix from its segment prefix.

    Returns mean/std/min/max/L2 of the midpoint estimate, plus
    ``max_error`` — a sound bound on how far any reported elementwise
    value can be from the true full-precision value.
    """
    mid, half_width = _estimate(archive, matrix_id, planes)
    return {
        "matrix_id": matrix_id,
        "planes": planes,
        "shape": list(mid.shape),
        "mean": float(mid.mean()),
        "std": float(mid.std()),
        "min": float(mid.min()),
        "max": float(mid.max()),
        "l2": float(np.linalg.norm(mid)),
        "max_error": float(half_width.max()),
    }


def segment_histogram(
    archive: PlanArchive,
    matrix_id: str,
    bins: int = 10,
    planes: int = 2,
) -> dict:
    """Histogram of an archived matrix from its segment prefix.

    A bin count is *certain* when every value's interval falls inside a
    single bin; the ``uncertain`` counter tallies values whose interval
    straddles a bin edge (they are assigned by midpoint).
    """
    mid, half_width = _estimate(archive, matrix_id, planes)
    counts, edges = np.histogram(mid, bins=bins)
    # A value is uncertain if its interval crosses the edge of its bin.
    bin_index = np.clip(
        np.digitize(mid, edges[1:-1]), 0, bins - 1
    )
    left = edges[bin_index]
    right = edges[bin_index + 1]
    uncertain = int(
        np.count_nonzero(
            ((mid - half_width) < left) | ((mid + half_width) > right)
        )
    )
    return {
        "matrix_id": matrix_id,
        "planes": planes,
        "counts": counts.tolist(),
        "edges": edges.tolist(),
        "uncertain": uncertain,
    }


def segment_compare(
    archive: PlanArchive,
    matrix_id_a: str,
    matrix_id_b: str,
    planes: int = 2,
) -> dict:
    """Distance statistics between two archived matrices from prefixes.

    The backbone of a partial-precision ``dlv diff``: relative L2 and max
    absolute difference of the midpoint estimates, with a sound bound on
    the estimation error of the reported max-abs difference.
    """
    mid_a, half_a = _estimate(archive, matrix_id_a, planes)
    mid_b, half_b = _estimate(archive, matrix_id_b, planes)
    if mid_a.shape != mid_b.shape:
        return {
            "a": matrix_id_a,
            "b": matrix_id_b,
            "comparable": False,
            "shapes": [list(mid_a.shape), list(mid_b.shape)],
        }
    diff = mid_a - mid_b
    norm_a = float(np.linalg.norm(mid_a))
    return {
        "a": matrix_id_a,
        "b": matrix_id_b,
        "comparable": True,
        "planes": planes,
        "relative_l2": float(np.linalg.norm(diff)) / (norm_a or 1.0),
        "max_abs": float(np.abs(diff).max()) if diff.size else 0.0,
        "max_error": float((half_a + half_b).max()) if diff.size else 0.0,
    }


def ascii_histogram(histogram: dict, width: int = 40) -> str:
    """Render a :func:`segment_histogram` result as fixed-width text.

    This is the terminal stand-in for the paper's HTML matrix plots.
    """
    counts = histogram["counts"]
    edges = histogram["edges"]
    peak = max(counts) or 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * max(int(round(width * count / peak)), 1 if count else 0)
        lines.append(f"[{edges[i]:+.4f}, {edges[i + 1]:+.4f}) {bar} {count}")
    if histogram["uncertain"]:
        lines.append(
            f"({histogram['uncertain']} values near bin edges are "
            f"midpoint-assigned)"
        )
    return "\n".join(lines)
