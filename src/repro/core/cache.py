"""LRU retrieval cache over a plan archive.

PAS is *read-optimized*: the same snapshots — above all the latest
snapshot of each version (Sec. IV-A's unbalanced access frequencies) —
are retrieved over and over by testing, comparison, and exploration
queries.  :class:`RetrievalCache` keeps recently recreated matrices in
memory under a byte budget so repeated group-retrieval queries skip the
decompress-and-apply-deltas work entirely.

Cached arrays are returned read-only; callers that need to mutate must
copy (this catches aliasing bugs instead of silently corrupting the
cache).

Hit/miss/eviction accounting is registry-backed (:mod:`repro.obs`): each
cache owns a private :class:`~repro.obs.MetricsRegistry` by default so
instances don't pollute each other's counts, and accepts an injected
registry (e.g. the process-global one) when its counters should surface
in ``dlv stats`` or benchmark sidecars.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.core.retrieval import PlanArchive, RecreationResult
from repro.core.segmentation import NUM_PLANES
from repro.core.storage_graph import RetrievalScheme
from repro.obs.cost import charge
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import trace_span


class RetrievalCache:
    """An LRU cache in front of a :class:`PlanArchive`.

    Args:
        archive: The archive to serve misses from.
        max_bytes: Cache capacity; entries are evicted least-recently-used
            once the total cached array bytes exceed it.
        registry: Metrics registry for the ``cache.*`` counters; a private
            registry is created when omitted.
    """

    def __init__(
        self,
        archive: PlanArchive,
        max_bytes: int = 64 << 20,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.archive = archive
        self.max_bytes = max_bytes
        self.registry = registry if registry is not None else MetricsRegistry()
        self._entries: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()
        self._bytes = 0
        self._hits = self.registry.counter("cache.hits")
        self._misses = self.registry.counter("cache.misses")
        self._evictions = self.registry.counter("cache.evictions")
        self._bytes_gauge = self.registry.gauge("cache.cached_bytes")
        self._entries_gauge = self.registry.gauge("cache.entries")

    # -- bookkeeping ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def _sync_gauges(self) -> None:
        self._bytes_gauge.set(self._bytes)
        self._entries_gauge.set(len(self._entries))

    def stats(self) -> dict:
        """Counter snapshot; every ratio is zero-guarded (no division by
        zero on a fresh or just-reset cache)."""
        hits, misses = self._hits.value, self._misses.value
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self._evictions.value,
            "hit_rate": hits / total if total else 0.0,
            "miss_rate": misses / total if total else 0.0,
            "cached_bytes": self._bytes,
            "entries": len(self._entries),
            "fill_fraction": self._bytes / self.max_bytes if self.max_bytes else 0.0,
        }

    def reset(self) -> None:
        """Zero the hit/miss/eviction counters, keeping cached entries.

        Benchmarks call this between phases to measure per-phase hit
        rates (e.g. cold fill vs. warm reuse) on one warmed cache.
        """
        self._hits.reset()
        self._misses.reset()
        self._evictions.reset()

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self._sync_gauges()

    def invalidate(self, matrix_id: str) -> int:
        """Drop all cached variants of one matrix (e.g. after re-archival)."""
        removed = 0
        for key in [k for k in self._entries if k[0] == matrix_id]:
            self._bytes -= self._entries.pop(key).nbytes
            removed += 1
        self._sync_gauges()
        return removed

    def _admit(self, key: tuple[str, int], value: np.ndarray) -> None:
        if value.nbytes > self.max_bytes:
            return  # larger than the whole cache: serve without caching
        self._entries[key] = value
        self._bytes += value.nbytes
        while self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._evictions.inc()
        self._sync_gauges()

    # -- retrieval -------------------------------------------------------------

    def recreate_matrix(
        self, matrix_id: str, planes: int = NUM_PLANES
    ) -> np.ndarray:
        """Cached equivalent of :meth:`PlanArchive.recreate_matrix`."""
        key = (matrix_id, planes)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self._hits.inc()
            charge(cache_hits=1)
            return cached
        self._misses.inc()
        charge(cache_misses=1)
        value = self.archive.recreate_matrix(matrix_id, planes)
        value.setflags(write=False)
        self._admit(key, value)
        return value

    def recreate_snapshot(
        self,
        snapshot_id: str,
        scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
        planes: int = NUM_PLANES,
    ) -> RecreationResult:
        """Cached group retrieval: misses fall through per matrix.

        The scheme argument is accepted for interface parity; cached
        retrieval is sequential (each miss resolves independently).
        """
        del scheme
        members = self.archive._snapshots.get(snapshot_id)
        if members is None:
            raise KeyError(f"unknown snapshot {snapshot_id!r}")
        with trace_span(
            "cache.snapshot", snapshot=snapshot_id, planes=planes
        ) as span:
            matrices = {
                matrix_id: self.recreate_matrix(matrix_id, planes)
                for matrix_id in members
            }
        return RecreationResult(matrices, span.elapsed, 0, planes)
