"""LRU retrieval cache over a plan archive.

PAS is *read-optimized*: the same snapshots — above all the latest
snapshot of each version (Sec. IV-A's unbalanced access frequencies) —
are retrieved over and over by testing, comparison, and exploration
queries.  :class:`RetrievalCache` keeps recently recreated matrices in
memory under a byte budget so repeated group-retrieval queries skip the
decompress-and-apply-deltas work entirely.

Cached arrays are returned read-only; callers that need to mutate must
copy (this catches aliasing bugs instead of silently corrupting the
cache).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.retrieval import PlanArchive, RecreationResult
from repro.core.segmentation import NUM_PLANES
from repro.core.storage_graph import RetrievalScheme


class RetrievalCache:
    """An LRU cache in front of a :class:`PlanArchive`.

    Args:
        archive: The archive to serve misses from.
        max_bytes: Cache capacity; entries are evicted least-recently-used
            once the total cached array bytes exceed it.
    """

    def __init__(self, archive: PlanArchive, max_bytes: int = 64 << 20) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.archive = archive
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- bookkeeping ---------------------------------------------------------

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
            "cached_bytes": self._bytes,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def invalidate(self, matrix_id: str) -> int:
        """Drop all cached variants of one matrix (e.g. after re-archival)."""
        removed = 0
        for key in [k for k in self._entries if k[0] == matrix_id]:
            self._bytes -= self._entries.pop(key).nbytes
            removed += 1
        return removed

    def _admit(self, key: tuple[str, int], value: np.ndarray) -> None:
        if value.nbytes > self.max_bytes:
            return  # larger than the whole cache: serve without caching
        self._entries[key] = value
        self._bytes += value.nbytes
        while self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.evictions += 1

    # -- retrieval -------------------------------------------------------------

    def recreate_matrix(
        self, matrix_id: str, planes: int = NUM_PLANES
    ) -> np.ndarray:
        """Cached equivalent of :meth:`PlanArchive.recreate_matrix`."""
        key = (matrix_id, planes)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        value = self.archive.recreate_matrix(matrix_id, planes)
        value.setflags(write=False)
        self._admit(key, value)
        return value

    def recreate_snapshot(
        self,
        snapshot_id: str,
        scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
        planes: int = NUM_PLANES,
    ) -> RecreationResult:
        """Cached group retrieval: misses fall through per matrix.

        The scheme argument is accepted for interface parity; cached
        retrieval is sequential (each miss resolves independently).
        """
        import time

        del scheme
        members = self.archive._snapshots.get(snapshot_id)
        if members is None:
            raise KeyError(f"unknown snapshot {snapshot_id!r}")
        start = time.perf_counter()
        matrices = {
            matrix_id: self.recreate_matrix(matrix_id, planes)
            for matrix_id in members
        }
        elapsed = time.perf_counter() - start
        return RecreationResult(matrices, elapsed, 0, planes)
