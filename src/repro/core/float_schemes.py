"""Float representation schemes for archived parameter matrices.

PAS offers a handful of float representations so the user can trade storage
efficiency for lossyness per snapshot (Sec. IV-B of the paper):

* ``float32`` — the IEEE 754 single precision the models are trained with
  (lossless).
* ``float16`` — IEEE half precision.
* ``bfloat16`` — TensorFlow-style truncated 16 bits (the high half of the
  float32 pattern).
* ``fixed-k`` — fixed point with one global exponent per matrix and ``k``
  bits of sign + mantissa; lossy, but drops the entropy considerably.
* ``quant-k`` — ``k <= 8``-bit quantization (``2^k`` codes) with a coding
  table, either ``uniform`` (bin centers of a uniform grid over the value
  range) or ``random`` (codebook sampled from the matrix values); most
  useful for snapshots kept only for fine-tuning initialization.

Every scheme is a codec: ``encode`` produces an :class:`EncodedMatrix`
(payload bytes + metadata) and ``decode`` reconstructs a float32 matrix
(exactly for lossless schemes, approximately otherwise).
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EncodedMatrix:
    """An encoded parameter matrix.

    Attributes:
        scheme: Name of the scheme that produced the payload.
        shape: Original matrix shape.
        payload: Raw encoded bytes (not yet zlib-compressed).
        meta: Scheme-specific metadata needed for decoding.
    """

    scheme: str
    shape: tuple
    payload: bytes
    meta: dict

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def compressed_size(self, level: int = 6) -> int:
        """Size after zlib compression (the paper's storage cost metric)."""
        return len(zlib.compress(self.payload, level))

    def to_bytes(self) -> bytes:
        """Self-describing serialization: header JSON + payload."""
        header = json.dumps(
            {"scheme": self.scheme, "shape": list(self.shape), "meta": self.meta}
        ).encode()
        return len(header).to_bytes(4, "big") + header + self.payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "EncodedMatrix":
        hlen = int.from_bytes(blob[:4], "big")
        header = json.loads(blob[4 : 4 + hlen])
        return cls(
            scheme=header["scheme"],
            shape=tuple(header["shape"]),
            payload=blob[4 + hlen :],
            meta=header["meta"],
        )


class FloatScheme:
    """Base codec interface."""

    name: str = "base"
    lossless: bool = False

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        raise NotImplementedError

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        raise NotImplementedError

    def roundtrip(self, matrix: np.ndarray) -> np.ndarray:
        """Encode then decode — the matrix a user gets back from PAS."""
        return self.decode(self.encode(matrix))

    def _check(self, encoded: EncodedMatrix) -> None:
        if encoded.scheme != self.name:
            raise ValueError(
                f"scheme mismatch: payload is {encoded.scheme!r}, "
                f"decoder is {self.name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Float32Scheme(FloatScheme):
    """Lossless IEEE 754 single precision."""

    name = "float32"
    lossless = True

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        arr = np.ascontiguousarray(matrix, dtype="<f4")
        return EncodedMatrix(self.name, arr.shape, arr.tobytes(), {})

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        self._check(encoded)
        return np.frombuffer(encoded.payload, dtype="<f4").reshape(encoded.shape).copy()


class Float16Scheme(FloatScheme):
    """IEEE 754 half precision (the 16-bit proposal mentioned in Sec. IV-B)."""

    name = "float16"

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        arr = np.ascontiguousarray(matrix, dtype="<f2")
        return EncodedMatrix(self.name, arr.shape, arr.tobytes(), {})

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        self._check(encoded)
        half = np.frombuffer(encoded.payload, dtype="<f2").reshape(encoded.shape)
        return half.astype(np.float32)


class BFloat16Scheme(FloatScheme):
    """TensorFlow-style truncated 16 bits: the high half of the float32 bits."""

    name = "bfloat16"

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        arr = np.ascontiguousarray(matrix, dtype="<f4")
        bits = arr.view("<u4")
        high = (bits >> 16).astype("<u2")
        return EncodedMatrix(self.name, arr.shape, high.tobytes(), {})

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        self._check(encoded)
        high = np.frombuffer(encoded.payload, dtype="<u2").reshape(encoded.shape)
        bits = high.astype("<u4") << 16
        return bits.view("<f4").copy()


class FixedPointScheme(FloatScheme):
    """Fixed point: one global exponent per matrix, ``k``-bit signed mantissas.

    The matrix is scaled by its max magnitude and each value rounded to a
    ``k``-bit signed integer, so at most ``2^k`` distinct values can be
    expressed and tail positions are dropped — lossy, but the entropy of
    the payload drops considerably, aiding compression (Sec. IV-B).
    """

    def __init__(self, bits: int = 8) -> None:
        if bits not in (8, 16):
            raise ValueError(f"fixed point supports 8 or 16 bits, got {bits}")
        self.bits = bits
        self.name = f"fixed{bits}"

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        arr = np.ascontiguousarray(matrix, dtype=np.float32)
        if arr.size and not np.isfinite(arr).all():
            raise ValueError(
                "fixed point encoding requires finite values (found NaN/Inf)"
            )
        max_abs = float(np.max(np.abs(arr))) if arr.size else 0.0
        if max_abs == 0.0:
            exponent = 0
        else:
            exponent = int(math.ceil(math.log2(max_abs))) if max_abs > 0 else 0
        scale = float(2.0**exponent)
        qmax = 2 ** (self.bits - 1) - 1
        dtype = "<i1" if self.bits == 8 else "<i2"
        if scale == 0.0:
            codes = np.zeros(arr.shape, dtype=dtype)
        else:
            codes = np.clip(
                np.round(arr / scale * qmax), -qmax - 1, qmax
            ).astype(dtype)
        return EncodedMatrix(
            self.name, arr.shape, codes.tobytes(),
            {"exponent": exponent, "bits": self.bits},
        )

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        self._check(encoded)
        bits = encoded.meta["bits"]
        dtype = "<i1" if bits == 8 else "<i2"
        qmax = 2 ** (bits - 1) - 1
        codes = np.frombuffer(encoded.payload, dtype=dtype).reshape(encoded.shape)
        scale = float(2.0 ** encoded.meta["exponent"])
        return (codes.astype(np.float32) / qmax * scale).astype(np.float32)


class QuantizationScheme(FloatScheme):
    """``k``-bit codebook quantization (``k <= 8``), uniform or random.

    * ``uniform``: the codebook holds the centers of ``2^k`` equal-width
      bins spanning the matrix's value range.
    * ``random``: the codebook is a random sample of the matrix's own
      values; each weight maps to the nearest code.  This mirrors the
      paper's "random manner" quantization.
    """

    def __init__(self, bits: int = 8, method: str = "uniform", seed: int = 0) -> None:
        if not 1 <= bits <= 8:
            raise ValueError(f"quantization supports 1..8 bits, got {bits}")
        if method not in ("uniform", "random"):
            raise ValueError(f"method must be 'uniform' or 'random', got {method!r}")
        self.bits = bits
        self.method = method
        self.seed = seed
        self.name = f"quant{bits}-{method}"

    def _codebook(self, flat: np.ndarray) -> np.ndarray:
        levels = 2**self.bits
        lo, hi = float(flat.min()), float(flat.max())
        if self.method == "uniform" or lo == hi:
            edges = np.linspace(lo, hi, levels + 1)
            return ((edges[:-1] + edges[1:]) / 2.0).astype(np.float32)
        rng = np.random.default_rng(self.seed)
        sample = rng.choice(flat, size=min(levels * 64, flat.size), replace=False)
        quantiles = np.linspace(0.0, 1.0, levels)
        return np.quantile(sample, quantiles).astype(np.float32)

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        arr = np.ascontiguousarray(matrix, dtype=np.float32)
        if arr.size and not np.isfinite(arr).all():
            raise ValueError(
                "quantization requires finite values (found NaN/Inf)"
            )
        flat = arr.reshape(-1)
        if flat.size == 0:
            return EncodedMatrix(
                self.name, arr.shape, b"", {"codebook": [], "bits": self.bits}
            )
        codebook = np.unique(self._codebook(flat))
        # Nearest-code assignment via the midpoints between adjacent codes.
        midpoints = (codebook[:-1] + codebook[1:]) / 2.0
        codes = np.searchsorted(midpoints, flat).astype(np.uint8)
        return EncodedMatrix(
            self.name, arr.shape, codes.tobytes(),
            {"codebook": codebook.tolist(), "bits": self.bits},
        )

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        self._check(encoded)
        codebook = np.asarray(encoded.meta["codebook"], dtype=np.float32)
        if codebook.size == 0:
            return np.zeros(encoded.shape, dtype=np.float32)
        codes = np.frombuffer(encoded.payload, dtype=np.uint8)
        return codebook[codes].reshape(encoded.shape)


_FIXED_SCHEMES = {
    "float32": Float32Scheme,
    "float16": Float16Scheme,
    "bfloat16": BFloat16Scheme,
}


def get_scheme(name: str) -> FloatScheme:
    """Look up a scheme by name.

    Accepts ``float32``, ``float16``, ``bfloat16``, ``fixed8``, ``fixed16``,
    ``quant<k>-uniform``, and ``quant<k>-random``.
    """
    if name in _FIXED_SCHEMES:
        return _FIXED_SCHEMES[name]()
    if name.startswith("fixed"):
        return FixedPointScheme(bits=int(name[len("fixed") :]))
    if name.startswith("quant"):
        spec, _, method = name[len("quant") :].partition("-")
        return QuantizationScheme(bits=int(spec), method=method or "uniform")
    raise KeyError(f"unknown float scheme {name!r}")


def compression_ratio(matrix: np.ndarray, scheme: FloatScheme, level: int = 6) -> float:
    """Original float32 bytes divided by compressed encoded bytes."""
    encoded = scheme.encode(matrix)
    compressed = encoded.compressed_size(level)
    original = matrix.size * 4
    return original / max(compressed, 1)
