"""Content-addressed compressed chunk store.

Every artifact PAS persists — encoded matrices, byte planes, deltas — is a
blob.  Blobs are stored zlib-compressed under their SHA-256, which gives
deduplication for free (identical matrices across versions share storage,
a common outcome of fine-tuning with frozen layers).

Every store counts its traffic — calls, uncompressed bytes in/out, and
dedup hits — into a :class:`~repro.obs.MetricsRegistry` (the process
global one unless an instance is injected), so ``dlv stats`` and the
benchmark sidecars can report where bytes actually go.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import zlib
from pathlib import Path
from typing import Iterator, Optional

from repro.faults import fs as ffs
from repro.obs.cost import charge
from repro.obs.metrics import MetricsRegistry, get_registry


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ChunkIntegrityError(ValueError):
    """A stored blob failed verification (hash mismatch or undecodable)."""

    def __init__(self, sha: str, reason: str) -> None:
        super().__init__(f"chunk {sha} is corrupt ({reason})")
        self.sha = sha
        self.reason = reason


#: Process-wide sequence making concurrent writers' tmp names distinct.
_tmp_counter = itertools.count()


class _StoreMetrics:
    """The chunk-store counter set, bound to one registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.put_calls = self.registry.counter("chunkstore.put_calls")
        self.put_bytes = self.registry.counter("chunkstore.put_bytes")
        self.dedup_hits = self.registry.counter("chunkstore.dedup_hits")
        self.dedup_bytes = self.registry.counter("chunkstore.dedup_bytes")
        self.get_calls = self.registry.counter("chunkstore.get_calls")
        self.get_bytes = self.registry.counter("chunkstore.get_bytes")

    def record_put(self, nbytes: int, deduplicated: bool) -> None:
        self.put_calls.inc()
        self.put_bytes.inc(nbytes)
        if deduplicated:
            self.dedup_hits.inc()
            self.dedup_bytes.inc(nbytes)

    def record_get(self, nbytes: int) -> None:
        self.get_calls.inc()
        self.get_bytes.inc(nbytes)
        # Bill the active request, if any: this is the single choke point
        # every chunk read (disk- or memory-backed) passes through.
        charge(bytes_read=nbytes, chunks_fetched=1)


class ChunkStore:
    """Filesystem-backed content-addressed store.

    Blobs live at ``<root>/<sha[:2]>/<sha>`` compressed with zlib.  The
    address is the SHA-256 of the *uncompressed* content, so integrity is
    verifiable on read.
    """

    def __init__(
        self,
        root: str | Path,
        level: int = 6,
        registry: Optional[MetricsRegistry] = None,
        durable: bool = True,
    ) -> None:
        self.root = Path(root)
        self.level = level
        self.durable = durable
        self.metrics = _StoreMetrics(registry)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sweep_stale_tmps()

    def _path(self, sha: str) -> Path:
        return self.root / sha[:2] / sha

    def blob_path(self, sha: str) -> Path:
        """On-disk location of one blob (it may not exist)."""
        return self._path(sha)

    def sweep_stale_tmps(self) -> int:
        """Remove ``*.tmp`` litter left by crashed writers; returns count."""
        removed = 0
        for tmp in self.root.glob("*/*.tmp"):
            ffs.unlink(tmp, site="chunkstore.sweep", missing_ok=True)
            removed += 1
        if removed:
            self.metrics.registry.counter("chunkstore.tmps_swept").inc(removed)
        return removed

    def put(self, data: bytes) -> str:
        """Store a blob; returns its content address (idempotent).

        The write is crash-safe: the compressed blob goes to a tmp file
        unique to this call (concurrent writers of the same sha never
        collide), is fsynced, renamed into place, and the bucket
        directory is fsynced so the entry survives power loss.  A crash
        leaves at worst a stale tmp, swept on the next store open.
        """
        sha = _digest(data)
        path = self._path(sha)
        existed = path.exists()
        if not existed:
            path.parent.mkdir(exist_ok=True)
            tmp = path.parent / f"{sha}.{os.getpid()}-{next(_tmp_counter)}.tmp"
            try:
                ffs.write_bytes(
                    tmp,
                    zlib.compress(data, self.level),
                    site="chunkstore.put.write",
                    fsync=self.durable,
                )
                ffs.replace(tmp, path, site="chunkstore.put.replace")
            except Exception:
                # Graceful failure: clean our tmp.  A CrashSimulated
                # (BaseException) deliberately skips this — a dead
                # process leaves litter, which the sweep handles.
                tmp.unlink(missing_ok=True)
                raise
            if self.durable:
                ffs.fsync_dir(path.parent, site="chunkstore.put.dirsync")
        self.metrics.record_put(len(data), deduplicated=existed)
        return sha

    def get(self, sha: str) -> bytes:
        """Retrieve and verify a blob.

        Raises:
            KeyError: when the address is unknown.
            ChunkIntegrityError: when the stored content fails integrity
                checking (a :class:`ValueError` subclass).
        """
        path = self._path(sha)
        if not path.exists():
            raise KeyError(f"no chunk {sha}")
        try:
            data = zlib.decompress(path.read_bytes())
        except zlib.error as exc:
            raise ChunkIntegrityError(sha, f"undecodable: {exc}") from exc
        if _digest(data) != sha:
            raise ChunkIntegrityError(sha, "hash mismatch")
        self.metrics.record_get(len(data))
        return data

    def verify_blob(self, sha: str) -> bool:
        """Re-hash one stored blob; ``False`` when corrupt or undecodable."""
        try:
            self.get(sha)
        except ChunkIntegrityError:
            return False
        return True

    def __contains__(self, sha: str) -> bool:
        return self._path(sha).exists()

    def delete(self, sha: str) -> bool:
        """Remove a blob; returns whether it existed."""
        path = self._path(sha)
        if path.exists():
            path.unlink()
            return True
        return False

    def stored_size(self, sha: str) -> int:
        """On-disk (compressed) size of one blob."""
        path = self._path(sha)
        if not path.exists():
            raise KeyError(f"no chunk {sha}")
        return path.stat().st_size

    def total_size(self) -> int:
        """Total on-disk bytes across all blobs."""
        return sum(
            p.stat().st_size
            for p in self.root.glob("*/*")
            if p.is_file() and p.suffix != ".tmp"
        )

    def addresses(self) -> Iterator[str]:
        """Iterate over every stored content address."""
        for path in sorted(self.root.glob("*/*")):
            if path.is_file() and path.suffix != ".tmp":
                yield path.name


class LatencyStore:
    """Wraps a chunk store with simulated per-operation latency.

    Stands in for the paper's *remote storage* tier: PAS can offload the
    low-order byte planes to slower, cheaper storage (Sec. IV-B), and the
    archival optimizer can model such edges with higher recreation cost.
    The latency is charged once per ``get``/``put`` — a fixed round trip.
    """

    def __init__(self, inner, get_latency: float = 0.0, put_latency: float = 0.0) -> None:
        self.inner = inner
        self.get_latency = get_latency
        self.put_latency = put_latency
        self.get_count = 0
        self.put_count = 0

    def _wait(self, seconds: float) -> None:
        if seconds > 0:
            import time

            time.sleep(seconds)

    def put(self, data: bytes) -> str:
        self.put_count += 1
        self._wait(self.put_latency)
        return self.inner.put(data)

    def get(self, sha: str) -> bytes:
        self.get_count += 1
        self._wait(self.get_latency)
        return self.inner.get(sha)

    def __contains__(self, sha: str) -> bool:
        return sha in self.inner

    def delete(self, sha: str) -> bool:
        return self.inner.delete(sha)

    def stored_size(self, sha: str) -> int:
        return self.inner.stored_size(sha)

    def total_size(self) -> int:
        return self.inner.total_size()

    def addresses(self) -> Iterator[str]:
        return self.inner.addresses()

    def verify_blob(self, sha: str) -> bool:
        """Re-hash one stored blob (latency is charged via ``get``)."""
        try:
            self.get(sha)
        except ChunkIntegrityError:
            return False
        return True


class MemoryChunkStore:
    """In-memory store with the same interface, for tests and benchmarks."""

    def __init__(
        self, level: int = 6, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.level = level
        self.metrics = _StoreMetrics(registry)
        self._blobs: dict[str, bytes] = {}

    def put(self, data: bytes) -> str:
        sha = _digest(data)
        existed = sha in self._blobs
        if not existed:
            self._blobs[sha] = zlib.compress(data, self.level)
        self.metrics.record_put(len(data), deduplicated=existed)
        return sha

    def get(self, sha: str) -> bytes:
        if sha not in self._blobs:
            raise KeyError(f"no chunk {sha}")
        try:
            data = zlib.decompress(self._blobs[sha])
        except zlib.error as exc:
            raise ChunkIntegrityError(sha, f"undecodable: {exc}") from exc
        if _digest(data) != sha:
            raise ChunkIntegrityError(sha, "hash mismatch")
        self.metrics.record_get(len(data))
        return data

    def __contains__(self, sha: str) -> bool:
        return sha in self._blobs

    def delete(self, sha: str) -> bool:
        return self._blobs.pop(sha, None) is not None

    def stored_size(self, sha: str) -> int:
        if sha not in self._blobs:
            raise KeyError(f"no chunk {sha}")
        return len(self._blobs[sha])

    def total_size(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    def addresses(self) -> Iterator[str]:
        return iter(sorted(self._blobs))

    def verify_blob(self, sha: str) -> bool:
        """Re-hash one stored blob; ``False`` when corrupt or undecodable."""
        try:
            self.get(sha)
        except ChunkIntegrityError:
            return False
        return True


#: Interface-conformant name for the latency wrapper (the historical
#: ``LatencyStore`` name remains as an alias).
LatencyChunkStore = LatencyStore
