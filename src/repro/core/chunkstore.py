"""Content-addressed compressed chunk store.

Every artifact PAS persists — encoded matrices, byte planes, deltas — is a
blob.  Blobs are stored zlib-compressed under their SHA-256, which gives
deduplication for free (identical matrices across versions share storage,
a common outcome of fine-tuning with frozen layers).
"""

from __future__ import annotations

import hashlib
import os
import zlib
from pathlib import Path
from typing import Iterator


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ChunkStore:
    """Filesystem-backed content-addressed store.

    Blobs live at ``<root>/<sha[:2]>/<sha>`` compressed with zlib.  The
    address is the SHA-256 of the *uncompressed* content, so integrity is
    verifiable on read.
    """

    def __init__(self, root: str | Path, level: int = 6) -> None:
        self.root = Path(root)
        self.level = level
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, sha: str) -> Path:
        return self.root / sha[:2] / sha

    def put(self, data: bytes) -> str:
        """Store a blob; returns its content address (idempotent)."""
        sha = _digest(data)
        path = self._path(sha)
        if not path.exists():
            path.parent.mkdir(exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(zlib.compress(data, self.level))
            os.replace(tmp, path)
        return sha

    def get(self, sha: str) -> bytes:
        """Retrieve and verify a blob.

        Raises:
            KeyError: when the address is unknown.
            ValueError: when the stored content fails integrity checking.
        """
        path = self._path(sha)
        if not path.exists():
            raise KeyError(f"no chunk {sha}")
        data = zlib.decompress(path.read_bytes())
        if _digest(data) != sha:
            raise ValueError(f"chunk {sha} is corrupt")
        return data

    def __contains__(self, sha: str) -> bool:
        return self._path(sha).exists()

    def delete(self, sha: str) -> bool:
        """Remove a blob; returns whether it existed."""
        path = self._path(sha)
        if path.exists():
            path.unlink()
            return True
        return False

    def stored_size(self, sha: str) -> int:
        """On-disk (compressed) size of one blob."""
        path = self._path(sha)
        if not path.exists():
            raise KeyError(f"no chunk {sha}")
        return path.stat().st_size

    def total_size(self) -> int:
        """Total on-disk bytes across all blobs."""
        return sum(p.stat().st_size for p in self.root.glob("*/*") if p.is_file())

    def addresses(self) -> Iterator[str]:
        """Iterate over every stored content address."""
        for path in sorted(self.root.glob("*/*")):
            if path.is_file():
                yield path.name


class LatencyStore:
    """Wraps a chunk store with simulated per-operation latency.

    Stands in for the paper's *remote storage* tier: PAS can offload the
    low-order byte planes to slower, cheaper storage (Sec. IV-B), and the
    archival optimizer can model such edges with higher recreation cost.
    The latency is charged once per ``get``/``put`` — a fixed round trip.
    """

    def __init__(self, inner, get_latency: float = 0.0, put_latency: float = 0.0) -> None:
        self.inner = inner
        self.get_latency = get_latency
        self.put_latency = put_latency
        self.get_count = 0
        self.put_count = 0

    def _wait(self, seconds: float) -> None:
        if seconds > 0:
            import time

            time.sleep(seconds)

    def put(self, data: bytes) -> str:
        self.put_count += 1
        self._wait(self.put_latency)
        return self.inner.put(data)

    def get(self, sha: str) -> bytes:
        self.get_count += 1
        self._wait(self.get_latency)
        return self.inner.get(sha)

    def __contains__(self, sha: str) -> bool:
        return sha in self.inner

    def delete(self, sha: str) -> bool:
        return self.inner.delete(sha)

    def stored_size(self, sha: str) -> int:
        return self.inner.stored_size(sha)

    def total_size(self) -> int:
        return self.inner.total_size()

    def addresses(self) -> Iterator[str]:
        return self.inner.addresses()


class MemoryChunkStore:
    """In-memory store with the same interface, for tests and benchmarks."""

    def __init__(self, level: int = 6) -> None:
        self.level = level
        self._blobs: dict[str, bytes] = {}

    def put(self, data: bytes) -> str:
        sha = _digest(data)
        if sha not in self._blobs:
            self._blobs[sha] = zlib.compress(data, self.level)
        return sha

    def get(self, sha: str) -> bytes:
        if sha not in self._blobs:
            raise KeyError(f"no chunk {sha}")
        return zlib.decompress(self._blobs[sha])

    def __contains__(self, sha: str) -> bool:
        return sha in self._blobs

    def delete(self, sha: str) -> bool:
        return self._blobs.pop(sha, None) is not None

    def stored_size(self, sha: str) -> int:
        if sha not in self._blobs:
            raise KeyError(f"no chunk {sha}")
        return len(self._blobs[sha])

    def total_size(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    def addresses(self) -> Iterator[str]:
        return iter(sorted(self._blobs))
