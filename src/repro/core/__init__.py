"""PAS — the parameter archival storage system (Sec. IV of the paper).

PAS maintains a large collection of learned float matrices as compactly as
possible without compromising query performance.  Its pieces:

* :mod:`repro.core.float_schemes` — float representations the user can pick
  per snapshot (IEEE float32/16, truncated bfloat16, fixed point,
  quantization) trading storage for lossyness (Sec. IV-B).
* :mod:`repro.core.segmentation` — bytewise segmented storage of float
  matrices: high-order bytes separate from low-order bytes, enabling
  partial retrieval with bounded error (Sec. IV-B).
* :mod:`repro.core.delta` — delta encoding across snapshots and versions
  (arithmetic subtraction and bitwise XOR), plus the normalization
  transform of Table IV (Sec. IV-B).
* :mod:`repro.core.storage_graph` — the matrix storage graph, storage
  plans, and storage/recreation cost models (Sec. IV-C, Def. 1 & 2).
* :mod:`repro.core.archival` — solvers for the Optimal Parameter Archival
  Storage problem: MST / SPT baselines, LAST, PAS-MT, PAS-PT (Sec. IV-C).
* :mod:`repro.core.chunkstore` — content-addressed compressed blob store.
* :mod:`repro.core.storage` — pluggable storage backends (loose files,
  single-file SQLite-WAL databases, in-memory) behind one
  :class:`~repro.core.storage.StorageBackend` interface, addressed by
  ``file://`` / ``sqlite://`` / ``mem://`` URLs.
* :mod:`repro.core.retrieval` — physical recreation of snapshots from an
  archived plan under independent / parallel / reusable schemes.
* :mod:`repro.core.progressive` — progressive query (inference) evaluation
  that reads low-order segments only when Lemma 4 cannot determine the
  prediction (Sec. IV-D).
"""

from repro.core.cache import RetrievalCache
from repro.core.chunkstore import (
    ChunkStore,
    LatencyChunkStore,
    LatencyStore,
    MemoryChunkStore,
)
from repro.core.storage import (
    StorageBackend,
    parse_storage_url,
    resolve_backend,
)
from repro.core.delta import (
    apply_delta,
    compressed_size,
    delta_sub,
    delta_xor,
    measure_schemes,
)
from repro.core.float_schemes import (
    BFloat16Scheme,
    EncodedMatrix,
    FixedPointScheme,
    Float16Scheme,
    Float32Scheme,
    FloatScheme,
    QuantizationScheme,
    get_scheme,
)
from repro.core.segmentation import (
    NUM_PLANES,
    assemble_planes,
    bounds_from_prefix,
    segment_planes,
)
from repro.core.storage_graph import (
    MatrixRef,
    MatrixStorageGraph,
    RetrievalScheme,
    StorageEdge,
    StoragePlan,
)
from repro.core.archival import (
    alpha_constraints,
    frequency_constraints,
    last_tree,
    minimum_spanning_tree,
    pas_mt,
    pas_pt,
    shortest_path_tree,
    solve,
    spt_tightening,
)
from repro.core.inspect import (
    ascii_histogram,
    segment_compare,
    segment_histogram,
    segment_stats,
)
from repro.core.retrieval import PlanArchive, RecreationResult
from repro.core.progressive import ProgressiveEvaluator, ProgressiveResult

__all__ = [
    "BFloat16Scheme",
    "ChunkStore",
    "EncodedMatrix",
    "FixedPointScheme",
    "Float16Scheme",
    "Float32Scheme",
    "FloatScheme",
    "LatencyChunkStore",
    "LatencyStore",
    "MatrixRef",
    "MatrixStorageGraph",
    "MemoryChunkStore",
    "NUM_PLANES",
    "PlanArchive",
    "ProgressiveEvaluator",
    "ProgressiveResult",
    "QuantizationScheme",
    "RecreationResult",
    "RetrievalCache",
    "RetrievalScheme",
    "StorageBackend",
    "StorageEdge",
    "StoragePlan",
    "alpha_constraints",
    "apply_delta",
    "ascii_histogram",
    "assemble_planes",
    "bounds_from_prefix",
    "compressed_size",
    "delta_sub",
    "delta_xor",
    "frequency_constraints",
    "get_scheme",
    "last_tree",
    "measure_schemes",
    "minimum_spanning_tree",
    "parse_storage_url",
    "pas_mt",
    "pas_pt",
    "resolve_backend",
    "segment_compare",
    "segment_histogram",
    "segment_planes",
    "segment_stats",
    "shortest_path_tree",
    "solve",
    "spt_tightening",
]
