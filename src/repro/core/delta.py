"""Delta encoding across checkpointed snapshots and model versions.

Fine-tuned models and nearby checkpoints of the same model have similar
parameters, so storing a *difference* from an already-stored matrix often
compresses far better than storing the matrix outright (Sec. IV-B).  Two
delta operators are supported:

* ``sub`` — arithmetic subtraction (float32), the consistently better
  operator in the paper's Fig. 6(b);
* ``xor`` — bitwise XOR of the IEEE 754 bit patterns.

The module also implements the *normalization* transform evaluated in
Table IV (adding a large constant so that radixes and signs align before
encoding) and measurement helpers used by the Fig. 6(b) / Table IV
benchmarks.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.core.float_schemes import FloatScheme
from repro.core.segmentation import segment_planes

DELTA_KINDS = ("sub", "xor")


def compressed_size(data: bytes, level: int = 6) -> int:
    """zlib-compressed size — the paper's storage cost for every artifact."""
    return len(zlib.compress(data, level))


def delta_sub(target: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Arithmetic delta: ``target - base`` as float32."""
    if target.shape != base.shape:
        raise ValueError(
            f"delta operands must share a shape: {target.shape} vs {base.shape}"
        )
    return (target.astype(np.float32) - base.astype(np.float32)).astype(np.float32)


def delta_xor(target: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Bitwise XOR delta of the float32 bit patterns (returned as uint32)."""
    if target.shape != base.shape:
        raise ValueError(
            f"delta operands must share a shape: {target.shape} vs {base.shape}"
        )
    t = np.ascontiguousarray(target, dtype="<f4").view("<u4")
    b = np.ascontiguousarray(base, dtype="<f4").view("<u4")
    return t ^ b


def apply_delta(base: np.ndarray, delta: np.ndarray, kind: str) -> np.ndarray:
    """Recreate a matrix from its base and stored delta."""
    if kind == "sub":
        return (base.astype(np.float32) + delta.astype(np.float32)).astype(
            np.float32
        )
    if kind == "xor":
        b = np.ascontiguousarray(base, dtype="<f4").view("<u4")
        return (b ^ delta).view("<f4").copy()
    raise ValueError(f"unknown delta kind {kind!r}; expected one of {DELTA_KINDS}")


def embed_like(base: np.ndarray, shape: tuple) -> np.ndarray:
    """Crop or zero-pad ``base`` per axis to match ``shape``.

    This is the paper's footnote-3 device for delta functions between
    matrices with different dimensions (e.g. a classifier layer re-sized
    for a new label space during fine-tuning): the overlapping region
    differences against the base, the remainder against zero.
    """
    base = np.asarray(base, dtype=np.float32)
    if base.ndim != len(shape):
        raise ValueError(
            f"rank mismatch: base is {base.ndim}-d, target shape {shape}"
        )
    out = np.zeros(shape, dtype=np.float32)
    overlap = tuple(
        slice(0, min(b, t)) for b, t in zip(base.shape, shape)
    )
    out[overlap] = base[overlap]
    return out


def delta_sub_mismatched(target: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Arithmetic delta against a crop/pad-embedded base (any shapes)."""
    return delta_sub(
        np.asarray(target, dtype=np.float32),
        embed_like(base, np.asarray(target).shape),
    )


def apply_delta_mismatched(
    base: np.ndarray, delta: np.ndarray, kind: str = "sub"
) -> np.ndarray:
    """Recreate a matrix whose base has a different shape."""
    return apply_delta(embed_like(base, np.asarray(delta).shape), delta, kind)


def normalization_offset(matrix: np.ndarray) -> float:
    """Offset that aligns radixes and signs of all values.

    With ``c = 3 * 2^ceil(log2(max|m|))`` every shifted value lands in
    ``[c - max, c + max] ⊂ [2^(k+1), 2^(k+2))`` — one binade — so all
    values become positive *and* share a binary exponent, making the
    high-order bytes of the shifted matrix nearly constant (Table IV's
    "After Normalization" rows).
    """
    max_abs = float(np.max(np.abs(matrix))) if matrix.size else 0.0
    if max_abs == 0.0:
        return 1.0
    return float(3.0 * 2.0 ** math.ceil(math.log2(max_abs)))


def normalize(matrix: np.ndarray, offset: float) -> np.ndarray:
    """Shift a matrix by ``offset`` (see :func:`normalization_offset`)."""
    return (matrix.astype(np.float32) + np.float32(offset)).astype(np.float32)


def denormalize(matrix: np.ndarray, offset: float) -> np.ndarray:
    """Inverse of :func:`normalize`."""
    return (matrix.astype(np.float32) - np.float32(offset)).astype(np.float32)


def _payload_bytes(arr: np.ndarray) -> bytes:
    return np.ascontiguousarray(arr).tobytes()


def _storage_cost(
    arr: np.ndarray,
    bytewise: bool,
    level: int,
    scheme: FloatScheme | None = None,
    normalized: bool = False,
) -> int:
    """Compressed byte count of one stored payload.

    The storage pipeline mirrors Table IV's configurations: the payload
    (a matrix or a delta) is optionally *normalized* (shifted so all values
    share a sign and binary exponent), optionally passed through a lossy
    float scheme (still stored in a 32-bit container — "32-bits" in the
    table caption), optionally split into byte planes, then zlib-compressed.
    """
    if arr.dtype == np.uint32:
        # XOR deltas: opaque bit patterns; transforms do not apply.
        payload = arr.view("<f4")
    else:
        payload = arr.astype(np.float32)
        if normalized:
            payload = normalize(payload, normalization_offset(payload))
        if scheme is not None:
            payload = scheme.roundtrip(payload)
    if not bytewise:
        return compressed_size(_payload_bytes(payload), level)
    return sum(
        compressed_size(p, level) for p in segment_planes(payload)
    )


def measure_schemes(
    target: np.ndarray,
    base: np.ndarray,
    bytewise: bool = False,
    scheme: FloatScheme | None = None,
    normalized: bool = False,
    level: int = 6,
) -> dict[str, int]:
    """Compressed sizes for Materialize / Delta-SUB / Delta-XOR.

    This is the measurement behind Fig. 6(b) and Table IV.

    Args:
        target: Matrix being archived.
        base: Candidate delta base (a similar matrix).
        bytewise: Compress byte planes separately (Table IV "bytewise").
        scheme: Optional lossy :class:`FloatScheme` applied to the stored
            payload (Table IV "Fix point" rows).
        normalized: Align signs/radixes of the stored payload before
            encoding (Table IV "After Normalization" rows).
        level: zlib compression level (the paper uses 6).

    Returns:
        ``{"materialize": bytes, "sub": bytes, "xor": bytes}``.
    """
    t = np.asarray(target, dtype=np.float32)
    b = np.asarray(base, dtype=np.float32)
    return {
        "materialize": _storage_cost(t, bytewise, level, scheme, normalized),
        "sub": _storage_cost(
            delta_sub(t, b), bytewise, level, scheme, normalized
        ),
        "xor": _storage_cost(delta_xor(t, b), bytewise, level),
    }


def snapshot_delta_cost(
    target: dict[str, dict[str, np.ndarray]],
    base: dict[str, dict[str, np.ndarray]],
    kind: str = "sub",
    level: int = 6,
) -> int:
    """Total compressed delta size between two weight dictionaries.

    Matrices present in only one snapshot are charged at their materialized
    cost.  Used when building matrix storage graphs from repositories.
    """
    total = 0
    for layer, params in target.items():
        for key, matrix in params.items():
            base_matrix = base.get(layer, {}).get(key)
            if base_matrix is None or base_matrix.shape != matrix.shape:
                total += compressed_size(_payload_bytes(matrix.astype(np.float32)), level)
            elif kind == "sub":
                total += compressed_size(
                    _payload_bytes(delta_sub(matrix, base_matrix)), level
                )
            else:
                total += compressed_size(
                    _payload_bytes(delta_xor(matrix, base_matrix)), level
                )
    return total
