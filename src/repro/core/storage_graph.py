"""The matrix storage graph and storage plans (Sec. IV-C, Defs. 1 and 2).

A repository's parameter matrices form the vertices of the *matrix storage
graph* (together with the empty matrix ``v0``); every way of obtaining a
matrix — materializing it, or recreating it from another matrix via a delta
— is an edge weighted by a storage cost ``cs`` and a recreation cost ``cr``.
Multiple parallel edges between the same pair are allowed (e.g. a
local-SSD delta and a remote-storage delta with different tradeoffs).

A *matrix storage plan* is a connected subgraph; for the independent and
parallel retrieval schemes the optimum is a spanning tree (Lemma 2), so
:class:`StoragePlan` represents a rooted tree (parent pointers towards
``v0``) and knows how to compute:

* total storage cost ``Cs`` — sum of its edges' storage costs;
* per-snapshot recreation cost ``Cr`` under the three retrieval schemes of
  Table III (independent / parallel / reusable).

Snapshots impose the *co-usage constraints*: all matrices of a snapshot are
retrieved together, so the constraint in Problem 1 is per snapshot, not per
matrix.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

ROOT = "v0"


class RetrievalScheme(enum.Enum):
    """How the matrices of a snapshot are recreated (Table III)."""

    INDEPENDENT = "independent"
    PARALLEL = "parallel"
    REUSABLE = "reusable"


@dataclass(frozen=True)
class MatrixRef:
    """A matrix vertex: identity plus the snapshot it belongs to.

    Attributes:
        matrix_id: Unique id within the graph (e.g. ``"v3/s2/conv1.W"``).
        snapshot_id: The co-usage group — all matrices of a snapshot are
            retrieved together.
        nbytes: Uncompressed float32 byte count (useful for reporting).
    """

    matrix_id: str
    snapshot_id: str
    nbytes: int = 0


@dataclass(frozen=True)
class StorageEdge:
    """An undirected storage option between two vertices.

    ``u == ROOT`` edges are materialization options; other edges are deltas.
    ``payload`` carries an opaque reference (e.g. chunk addresses) used by
    the physical archive; the optimizer only reads the costs.
    """

    u: str
    v: str
    storage_cost: float
    recreation_cost: float
    kind: str = "delta"
    payload: Optional[object] = None

    def other(self, vertex: str) -> str:
        """The endpoint opposite ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"{vertex!r} is not an endpoint of this edge")

    def touches(self, vertex: str) -> bool:
        return vertex in (self.u, self.v)


class MatrixStorageGraph:
    """The matrix storage graph ``G(V, E, cs, cr)`` of Definition 1."""

    def __init__(self) -> None:
        self._matrices: dict[str, MatrixRef] = {}
        self._edges: list[StorageEdge] = []
        self._adjacency: dict[str, list[int]] = {ROOT: []}
        self._snapshots: dict[str, list[str]] = {}

    # -- construction ------------------------------------------------------

    def add_matrix(self, ref: MatrixRef) -> None:
        """Register a matrix vertex and its snapshot group."""
        if ref.matrix_id == ROOT:
            raise ValueError(f"{ROOT!r} is reserved for the empty matrix")
        if ref.matrix_id in self._matrices:
            raise ValueError(f"duplicate matrix {ref.matrix_id!r}")
        self._matrices[ref.matrix_id] = ref
        self._adjacency[ref.matrix_id] = []
        self._snapshots.setdefault(ref.snapshot_id, []).append(ref.matrix_id)

    def add_edge(self, edge: StorageEdge) -> None:
        """Add a storage option; both endpoints must already exist."""
        for endpoint in (edge.u, edge.v):
            if endpoint != ROOT and endpoint not in self._matrices:
                raise KeyError(f"unknown vertex {endpoint!r}")
        if edge.u == edge.v:
            raise ValueError("self-loop edges are meaningless")
        if edge.storage_cost < 0 or edge.recreation_cost < 0:
            raise ValueError("costs must be non-negative")
        index = len(self._edges)
        self._edges.append(edge)
        self._adjacency[edge.u].append(index)
        self._adjacency[edge.v].append(index)

    def add_materialization(
        self, matrix_id: str, storage_cost: float, recreation_cost: float,
        payload: Optional[object] = None,
    ) -> None:
        """Convenience: add the ``v0 -> matrix`` materialization edge."""
        self.add_edge(
            StorageEdge(ROOT, matrix_id, storage_cost, recreation_cost,
                        kind="materialize", payload=payload)
        )

    # -- access ---------------------------------------------------------------

    @property
    def matrices(self) -> dict[str, MatrixRef]:
        return dict(self._matrices)

    @property
    def snapshots(self) -> dict[str, list[str]]:
        """Snapshot id -> matrix ids (the co-usage groups)."""
        return {k: list(v) for k, v in self._snapshots.items()}

    @property
    def edges(self) -> list[StorageEdge]:
        return list(self._edges)

    def vertices(self) -> list[str]:
        return [ROOT, *self._matrices]

    def incident_edges(self, vertex: str) -> list[StorageEdge]:
        return [self._edges[i] for i in self._adjacency.get(vertex, [])]

    def num_matrices(self) -> int:
        return len(self._matrices)

    def validate_connected(self) -> None:
        """Every matrix must be reachable from ``v0`` (else no plan exists)."""
        seen = {ROOT}
        frontier = [ROOT]
        while frontier:
            vertex = frontier.pop()
            for edge in self.incident_edges(vertex):
                other = edge.other(vertex)
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        missing = set(self._matrices) - seen
        if missing:
            raise ValueError(
                f"{len(missing)} matrices unreachable from {ROOT}: "
                f"{sorted(missing)[:5]}..."
            )


@dataclass
class StoragePlan:
    """A spanning-tree storage plan: each matrix's parent edge towards v0.

    Attributes:
        graph: The graph the plan was computed on.
        parent_edge: ``matrix_id -> StorageEdge`` connecting it to its
            parent (the edge endpoint closer to ``v0``).
    """

    graph: MatrixStorageGraph
    parent_edge: dict[str, StorageEdge] = field(default_factory=dict)

    def copy(self) -> "StoragePlan":
        return StoragePlan(self.graph, dict(self.parent_edge))

    def parent(self, matrix_id: str) -> str:
        """Parent vertex of a matrix in the tree."""
        return self.parent_edge[matrix_id].other(matrix_id)

    def children(self, vertex: str) -> list[str]:
        return [
            m for m, e in self.parent_edge.items() if e.other(m) == vertex
        ]

    def children_map(self) -> dict[str, list[str]]:
        """All children lists in one pass (O(n) instead of O(n) per vertex)."""
        result: dict[str, list[str]] = {}
        for matrix_id, edge in self.parent_edge.items():
            result.setdefault(edge.other(matrix_id), []).append(matrix_id)
        return result

    def euler_intervals(self) -> dict[str, tuple[int, int]]:
        """DFS enter/exit times: ``v`` is in subtree(``u``) iff
        ``tin[u] <= tin[v] < tout[u]`` — an O(1) ancestor test."""
        children = self.children_map()
        intervals: dict[str, tuple[int, int]] = {}
        clock = 0
        stack: list[tuple[str, bool]] = [
            (root, False) for root in reversed(children.get(ROOT, []))
        ]
        tin: dict[str, int] = {}
        while stack:
            vertex, done = stack.pop()
            if done:
                intervals[vertex] = (tin[vertex], clock)
                continue
            tin[vertex] = clock
            clock += 1
            stack.append((vertex, True))
            for child in reversed(children.get(vertex, [])):
                stack.append((child, False))
        return intervals

    def is_complete(self) -> bool:
        """True when every matrix in the graph has a parent edge."""
        return set(self.parent_edge) == set(self.graph.matrices)

    def validate(self) -> None:
        """Check the plan is a tree rooted at v0 covering all matrices."""
        if not self.is_complete():
            missing = set(self.graph.matrices) - set(self.parent_edge)
            raise ValueError(f"plan misses matrices: {sorted(missing)[:5]}")
        for matrix_id in self.parent_edge:
            seen = set()
            current = matrix_id
            while current != ROOT:
                if current in seen:
                    raise ValueError(f"cycle through {matrix_id!r}")
                seen.add(current)
                current = self.parent(current)

    # -- cost model -------------------------------------------------------------

    def storage_cost(self) -> float:
        """Total storage cost ``Cs``: the sum of the tree edges' cs."""
        return sum(e.storage_cost for e in self.parent_edge.values())

    def path_to_root(self, matrix_id: str) -> list[StorageEdge]:
        """Tree edges from ``matrix_id`` up to ``v0``."""
        path = []
        current = matrix_id
        while current != ROOT:
            edge = self.parent_edge[current]
            path.append(edge)
            current = edge.other(current)
        return path

    def recreation_costs(self) -> dict[str, float]:
        """Root-path recreation cost of every matrix, computed bottom-up."""
        costs: dict[str, float] = {ROOT: 0.0}

        def cost_of(matrix_id: str) -> float:
            # Iterative resolution to respect deep chains.
            stack = [matrix_id]
            while stack:
                current = stack[-1]
                if current in costs:
                    stack.pop()
                    continue
                parent = self.parent(current)
                if parent in costs:
                    costs[current] = (
                        costs[parent]
                        + self.parent_edge[current].recreation_cost
                    )
                    stack.pop()
                else:
                    stack.append(parent)
            return costs[matrix_id]

        for matrix_id in self.parent_edge:
            cost_of(matrix_id)
        costs.pop(ROOT)
        return costs

    def snapshot_recreation_cost(
        self, snapshot_id: str, scheme: RetrievalScheme,
        matrix_costs: Optional[dict[str, float]] = None,
    ) -> float:
        """``Cr`` of one snapshot under a retrieval scheme (Table III)."""
        members = self.graph.snapshots.get(snapshot_id)
        if not members:
            raise KeyError(f"unknown snapshot {snapshot_id!r}")
        if scheme is RetrievalScheme.REUSABLE:
            union: set[tuple[str, str]] = set()
            total = 0.0
            for matrix_id in members:
                for edge in self.path_to_root(matrix_id):
                    key = (edge.u, edge.v)
                    if key not in union:
                        union.add(key)
                        total += edge.recreation_cost
            return total
        costs = matrix_costs or self.recreation_costs()
        member_costs = [costs[m] for m in members]
        if scheme is RetrievalScheme.INDEPENDENT:
            return float(sum(member_costs))
        return float(max(member_costs))

    def all_snapshot_costs(
        self, scheme: RetrievalScheme
    ) -> dict[str, float]:
        """``Cr`` per snapshot; shares the matrix-cost computation."""
        matrix_costs = (
            None if scheme is RetrievalScheme.REUSABLE else self.recreation_costs()
        )
        return {
            snapshot_id: self.snapshot_recreation_cost(
                snapshot_id, scheme, matrix_costs
            )
            for snapshot_id in self.graph.snapshots
        }

    def satisfies(
        self, constraints: dict[str, float], scheme: RetrievalScheme,
        tol: float = 1e-9,
    ) -> bool:
        """Does the plan meet every snapshot's recreation budget?"""
        costs = self.all_snapshot_costs(scheme)
        return all(
            costs[s] <= theta + tol for s, theta in constraints.items()
        )

    def subtree(self, matrix_id: str) -> set[str]:
        """``matrix_id`` plus all its descendants in the tree."""
        children = self.children_map()
        result = {matrix_id}
        frontier = [matrix_id]
        while frontier:
            current = frontier.pop()
            for child in children.get(current, []):
                if child not in result:
                    result.add(child)
                    frontier.append(child)
        return result

    def swap(self, matrix_id: str, new_edge: StorageEdge) -> None:
        """Reparent ``matrix_id`` through ``new_edge`` (the swap operation).

        Raises:
            ValueError: when the new parent lies inside the matrix's own
                subtree (which would create a cycle).
        """
        if not new_edge.touches(matrix_id):
            raise ValueError("edge does not touch the matrix being swapped")
        new_parent = new_edge.other(matrix_id)
        if new_parent != ROOT and new_parent in self.subtree(matrix_id):
            raise ValueError(
                f"swap would create a cycle: {new_parent!r} is a descendant "
                f"of {matrix_id!r}"
            )
        self.parent_edge[matrix_id] = new_edge

    def summary(self, constraints: Optional[dict[str, float]] = None,
                scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT) -> dict:
        """Cost report used by benchmarks and ``dlv archive``."""
        costs = self.all_snapshot_costs(scheme)
        report = {
            "storage_cost": self.storage_cost(),
            "snapshot_costs": costs,
            "max_snapshot_cost": max(costs.values()) if costs else 0.0,
            "mean_snapshot_cost": (
                sum(costs.values()) / len(costs) if costs else 0.0
            ),
        }
        if constraints is not None:
            report["satisfied"] = self.satisfies(constraints, scheme)
        return report


def plan_from_parent_map(
    graph: MatrixStorageGraph, parents: dict[str, StorageEdge]
) -> StoragePlan:
    """Build and validate a plan from an explicit parent-edge mapping."""
    plan = StoragePlan(graph, dict(parents))
    plan.validate()
    return plan


def iter_edge_options(
    graph: MatrixStorageGraph, vertex: str, exclude: Iterable[str] = ()
) -> Iterable[StorageEdge]:
    """Edges incident to ``vertex`` whose other endpoint is not excluded."""
    banned = set(exclude)
    for edge in graph.incident_edges(vertex):
        if edge.other(vertex) not in banned:
            yield edge
