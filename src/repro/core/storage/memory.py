"""In-process repository storage for tests and ephemeral serving.

A ``mem://<name>`` repository is the SQLite backend pointed at a private
``:memory:`` database, registered process-wide under its name so the
same repository can be "reopened" by URL within one process.  An
in-memory SQLite database is visible only to the connection that created
it, so this backend shares one connection between all threads (guarded
by the backend's write lock); it trades the WAL reader/writer
concurrency of the file-backed variant for zero I/O.

``close`` is deliberately a no-op — a memory repo stays alive for
reopening until :func:`drop` (or :func:`reset`) discards it.
:func:`clone` snapshots one memory repo into a new name via the sqlite
backup API, which is how the crash matrix replays the same starting
state under many fault plans.
"""

from __future__ import annotations

import sqlite3
import threading

from repro.core.storage.base import TxnState
from repro.core.storage.sqlite import _STORE_SCHEMA, SQLiteBackend, SQLiteBlobStore, SQLiteJournal


class MemoryBackend(SQLiteBackend):
    """Whole-repository storage in one in-process SQLite database."""

    scheme = "memory"

    def __init__(
        self,
        name: str,
        *,
        create: bool = False,
        conn: sqlite3.Connection | None = None,
    ) -> None:
        self.name = name
        self.path = None
        self.root = f"mem://{name}"  # re-openable token: the URL itself
        self.txn = TxnState()
        self._write_lock = threading.RLock()
        self._owner_thread = threading.get_ident()
        self._readers: list[sqlite3.Connection] = []
        self._readers_lock = threading.Lock()
        self._closed = False
        if conn is None:
            conn = sqlite3.connect(":memory:", check_same_thread=False)
        conn.row_factory = sqlite3.Row
        self._writer = conn
        self._writer.executescript(_STORE_SCHEMA)
        self._writer.commit()
        from repro.dlv.catalog import Catalog

        self.catalog = Catalog(conn=self._writer, txn=self.txn)
        self.chunks = SQLiteBlobStore(self, "chunks")
        self.replica = SQLiteBlobStore(self, "replica")
        self.pages = SQLiteBlobStore(self, "pages")
        self.journal = SQLiteJournal(self)
        if create:
            self.write_config()

    def _read_conn(self) -> sqlite3.Connection:
        # A :memory: database exists only on its creating connection, so
        # every thread reads (and writes) through the one shared handle.
        return self._writer

    @property
    def url(self) -> str:
        return f"mem://{self.name}"

    def describe(self) -> dict:
        out = super().describe()
        out["location"] = self.name
        out["wal"] = False
        return out

    def close(self) -> None:
        """No-op: the repo stays reopenable until :func:`drop`."""

    def _destroy(self) -> None:
        self.catalog.close()
        self._writer.close()
        self._closed = True


_REGISTRY: dict[str, MemoryBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def create(name: str) -> MemoryBackend:
    """Create and register a fresh ``mem://name`` repository."""
    with _REGISTRY_LOCK:
        if name in _REGISTRY:
            raise FileExistsError(f"mem://{name} already is a dlv repository")
        backend = MemoryBackend(name, create=True)
        _REGISTRY[name] = backend
    return backend


def get(name: str) -> MemoryBackend:
    """Look up a previously created memory repository."""
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        raise FileNotFoundError(
            f"mem://{name} is not a dlv repository (run Repository.init)"
        )
    return backend


def drop(name: str) -> bool:
    """Discard a memory repository; returns whether it existed."""
    with _REGISTRY_LOCK:
        backend = _REGISTRY.pop(name, None)
    if backend is None:
        return False
    backend._destroy()
    return True


def reset() -> None:
    """Discard every registered memory repository (test teardown)."""
    with _REGISTRY_LOCK:
        backends = list(_REGISTRY.values())
        _REGISTRY.clear()
    for backend in backends:
        backend._destroy()


def clone(src_name: str, dst_name: str) -> MemoryBackend:
    """Snapshot one memory repo into a new name (sqlite backup API)."""
    src = get(src_name)
    if src.txn.active:
        raise RuntimeError("cannot clone inside an open transaction")
    conn = sqlite3.connect(":memory:", check_same_thread=False)
    with src._write_lock:
        src._writer.commit()
        src._writer.backup(conn)
    conn.commit()
    with _REGISTRY_LOCK:
        if dst_name in _REGISTRY:
            conn.close()
            raise FileExistsError(f"mem://{dst_name} already is a dlv repository")
        backend = MemoryBackend(dst_name, conn=conn)
        _REGISTRY[dst_name] = backend
    return backend
