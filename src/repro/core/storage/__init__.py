"""Pluggable repository storage backends.

The interface lives in :mod:`repro.core.storage.base`
(:class:`StorageBackend`, the :class:`BlobStore` protocol, and the
shared :class:`TxnState`); URL parsing and backend resolution in
:mod:`repro.core.storage.registry`; the three substrates in
:mod:`~repro.core.storage.localfs` (``file://``),
:mod:`~repro.core.storage.sqlite` (``sqlite://``, single WAL-mode db
file), and :mod:`~repro.core.storage.memory` (``mem://``).
"""

from repro.core.storage.base import (
    ARCHIVES_PREFIX,
    CONFIG_DOC,
    STAGE_DOC,
    BlobStore,
    StorageBackend,
    TxnState,
)
from repro.core.storage.registry import (
    BACKEND_NAMES,
    SCHEMES,
    parse_storage_url,
    resolve_backend,
)

__all__ = [
    "ARCHIVES_PREFIX",
    "BACKEND_NAMES",
    "CONFIG_DOC",
    "SCHEMES",
    "STAGE_DOC",
    "BlobStore",
    "StorageBackend",
    "TxnState",
    "parse_storage_url",
    "resolve_backend",
]
