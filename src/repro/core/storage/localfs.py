"""The loose-file storage backend (the original ``.dlv/`` layout).

Everything lives under ``<root>/.dlv/``: the sqlite3 catalog, the two
:class:`~repro.core.chunkstore.ChunkStore` tiers, content-addressed
associated files, the intent-file journal, and small documents (config,
stage, archive reports) as plain JSON files.  All mutations route
through :mod:`repro.faults.fs`, so fault plans tear/crash/corrupt this
backend exactly as before the storage seam existed.

Filesystem-only concepts — unique tmp names, the sweep of stale tmp
litter after a crash, quarantine as a directory move — are implemented
here and *only* here; the database backends have no such debris.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Optional

from repro.core.chunkstore import ChunkStore
from repro.core.storage.base import StorageBackend, TxnState, yield_path
from repro.faults import fs as ffs
from repro.obs.metrics import counter


class LocalFSBackend(StorageBackend):
    """Repository storage as loose files under ``<root>/.dlv/``."""

    scheme = "local-fs"
    DLV_DIR = ".dlv"

    def __init__(self, root: str | Path, *, create: bool = False) -> None:
        self.root = Path(root)
        self.dlv_dir = self.root / self.DLV_DIR
        if create:
            if self.dlv_dir.exists():
                raise FileExistsError(f"{self.root} already is a dlv repository")
            self.dlv_dir.mkdir(parents=True)
        elif not self.dlv_dir.exists():
            raise FileNotFoundError(
                f"{self.root} is not a dlv repository (run Repository.init)"
            )
        from repro.dlv.catalog import Catalog
        from repro.dlv.journal import Journal

        self.txn = TxnState()
        self.catalog = Catalog(self.dlv_dir / "catalog.db", txn=self.txn)
        # Opening the stores sweeps any stale tmp litter from a crash.
        self.chunks = ChunkStore(self.dlv_dir / "chunks")
        self.replica = ChunkStore(self.dlv_dir / "replica")
        # Dedup page tier; mkdir-on-open upgrades pre-dedup repositories.
        self.pages = ChunkStore(self.dlv_dir / "pages")
        self.files_dir = self.dlv_dir / "files"
        self.files_dir.mkdir(exist_ok=True)
        self.journal = Journal(self.dlv_dir / "journal")
        if create:
            self.write_config()

    @property
    def url(self) -> str:
        return f"file://{self.root}"

    def describe(self) -> dict:
        out = super().describe()
        out["location"] = str(self.root)
        return out

    # -- associated files ----------------------------------------------------

    def put_file(self, sha: str, data: bytes) -> None:
        """Land one associated file durably (write-tmp, fsync, rename)."""
        dest = self.files_dir / sha
        if dest.exists():
            return
        tmp = dest.with_name(f"{sha}.{os.getpid()}.tmp")
        ffs.write_bytes(tmp, data, site="repo.files.write")
        ffs.replace(tmp, dest, site="repo.files.replace")
        ffs.fsync_dir(self.files_dir)

    def get_file(self, sha: str) -> bytes:
        path = self.files_dir / sha
        if not path.exists():
            raise KeyError(f"no stored file {sha}")
        return path.read_bytes()

    def delete_file(self, sha: str) -> bool:
        path = self.files_dir / sha
        if path.exists():
            path.unlink()
            return True
        return False

    def stored_file_shas(self) -> set[str]:
        return {
            p.name
            for p in self.files_dir.iterdir()
            if p.is_file() and p.suffix != ".tmp"
        }

    # -- documents ------------------------------------------------------------

    def _doc_path(self, name: str) -> Path:
        return self.dlv_dir / name

    def read_doc(self, name: str) -> Optional[bytes]:
        path = self._doc_path(name)
        return path.read_bytes() if path.exists() else None

    def write_doc(self, name: str, data: bytes) -> None:
        path = self._doc_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)

    def delete_doc(self, name: str) -> bool:
        path = self._doc_path(name)
        if path.exists():
            path.unlink()
            return True
        return False

    def list_docs(self, prefix: str = "") -> list[str]:
        base = self.dlv_dir
        names = []
        pattern = f"{prefix}*" if prefix else "*"
        for path in base.glob(pattern):
            if path.is_file():
                names.append(str(path.relative_to(base)))
        return sorted(names)

    # -- fsck contract ---------------------------------------------------------

    def _store_for(self, kind: str) -> ChunkStore:
        if kind == "chunks":
            return self.chunks
        if kind == "replica":
            return self.replica
        if kind == "pages":
            return self.pages
        raise ValueError(f"unknown blob tier {kind!r}")

    def quarantine_blob(self, kind: str, sha: str) -> bool:
        """Move a corrupt blob into ``.dlv/quarantine/`` (forensics)."""
        store = self._store_for(kind)
        suffix = {"chunks": "", "replica": ".replica", "pages": ".page"}[kind]
        quarantine = self.dlv_dir / "quarantine"
        quarantine.mkdir(exist_ok=True)
        blob = store.blob_path(sha)
        if not blob.exists():
            return False
        shutil.move(str(blob), str(quarantine / f"{sha}{suffix}"))
        counter("fsck.quarantined").inc()
        return True

    def quarantined(self) -> list[str]:
        quarantine = self.dlv_dir / "quarantine"
        if not quarantine.exists():
            return []
        return sorted(p.name for p in quarantine.iterdir() if p.is_file())

    def litter(self, repair: bool) -> list[dict]:
        """Stale ``*.tmp`` files in either chunk store (F302)."""
        findings = []
        for store, label in (
            (self.chunks, "chunks"),
            (self.replica, "replica"),
            (self.pages, "pages"),
        ):
            for tmp in sorted(store.root.glob("*/*.tmp")):
                finding = {
                    "code": "F302",
                    "message": f"stale tmp {label}/{tmp.name}",
                    "repaired": False,
                    "repair": None,
                }
                if repair:
                    tmp.unlink(missing_ok=True)
                    finding["repaired"] = True
                    finding["repair"] = "deleted"
                findings.append(finding)
        return findings

    def sweep_stale_tmps(self) -> int:
        return (
            self.chunks.sweep_stale_tmps()
            + self.replica.sweep_stale_tmps()
            + self.pages.sweep_stale_tmps()
        )

    # -- hub publishing ---------------------------------------------------------

    def publish_tree(self):
        """The live ``.dlv`` directory *is* the publishable tree."""
        return yield_path(self.dlv_dir)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        self.catalog.close()
