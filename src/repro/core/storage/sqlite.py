"""Single-file SQLite repository storage in WAL mode.

The whole repository — both chunk-store tiers, associated files, the
stage and config documents, the write-ahead journal, the quarantine,
*and* the relational catalog — lives in one database file, so a repo
ships as a single artifact and replicates with one copy.

Concurrency model (the reason this backend exists):

* ``PRAGMA journal_mode=WAL`` lets readers proceed against the last
  committed snapshot while a writer's transaction is in flight —
  concurrent ``get`` during a journaled commit neither blocks nor
  observes torn/uncommitted state.
* One **writer connection** is shared between the catalog and the blob
  stores.  Blob writes issued while the catalog holds an open
  transaction (:class:`~repro.core.storage.base.TxnState`) join that
  transaction and commit (or roll back) with it — which makes
  ``archive`` / ``convert`` / ``prune`` / fsck-repair chunk rewrites
  atomic with their payload-table updates, something the loose-file
  backend can only approximate with orphan sweeps.
* Reads from other threads use **per-thread read connections** (WAL
  snapshots); reads on the owning thread use the writer connection so
  they observe its in-flight transaction (e.g. ``stored_size`` of a
  chunk written moments ago inside ``convert``).

Crash semantics mirror the journaled-commit protocol of the loose-file
backend: journal intents are inserted and committed *before* any chunk
lands (and refuse to run inside a catalog transaction), chunk writes at
transaction depth zero commit immediately, and the catalog transaction
that ends with the commit marker is the atomic commit point.  Fault
injection uses the same site names (``chunkstore.put.write``,
``journal.write``, ``journal.retire``, ``repo.files.write``,
``catalog.commit``) via :func:`repro.faults.fs.prepare_write`, so the
crash matrix runs unchanged over this backend.
"""

from __future__ import annotations

import json
import sqlite3
import tempfile
import threading
import uuid
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional

from repro.core.chunkstore import ChunkIntegrityError, _digest, _StoreMetrics
from repro.core.storage.base import StorageBackend, TxnState
from repro.faults import fs as ffs
from repro.faults.plan import CrashSimulated

_STORE_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_blob (
    ns    TEXT NOT NULL,
    sha   TEXT NOT NULL,
    data  BLOB NOT NULL,
    PRIMARY KEY (ns, sha)
);
CREATE TABLE IF NOT EXISTS store_file (
    sha   TEXT NOT NULL PRIMARY KEY,
    data  BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS store_doc (
    name  TEXT NOT NULL PRIMARY KEY,
    data  BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS store_journal (
    txid  TEXT NOT NULL PRIMARY KEY,
    seq   INTEGER NOT NULL,
    data  BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS store_quarantine (
    name  TEXT NOT NULL PRIMARY KEY,
    data  BLOB NOT NULL
);
"""

#: File name of the database inside a published tree / pulled ``.dlv``.
DB_NAME = "repo.db"


class SQLiteBlobStore:
    """One content-addressed tier (``chunks`` / ``replica``) as blob rows.

    Conforms to :class:`~repro.core.storage.base.BlobStore`; blobs are
    zlib-compressed and addressed by the SHA-256 of their uncompressed
    content, exactly like :class:`~repro.core.chunkstore.ChunkStore`.
    """

    def __init__(self, backend: "SQLiteBackend", ns: str, level: int = 6) -> None:
        self._backend = backend
        self.ns = ns
        self.level = level
        self.metrics = _StoreMetrics()

    def put(self, data: bytes) -> str:
        """Store a blob; commits immediately unless a catalog txn is open."""
        sha = _digest(data)
        backend = self._backend
        with backend._write_lock:
            existed = backend._blob_exists(self.ns, sha)
            if not existed:
                payload, crash_after = ffs.prepare_write(
                    "chunkstore.put.write", zlib.compress(data, self.level)
                )
                backend._writer.execute(
                    "INSERT OR REPLACE INTO store_blob (ns, sha, data) "
                    "VALUES (?, ?, ?)",
                    (self.ns, sha, payload),
                )
                backend._commit_if_root()
                if crash_after:
                    raise CrashSimulated(
                        "simulated crash after torn write (chunkstore.put.write)"
                    )
        self.metrics.record_put(len(data), deduplicated=existed)
        return sha

    def get(self, sha: str) -> bytes:
        """Retrieve and verify a blob.

        Raises:
            KeyError: when the address is unknown.
            ChunkIntegrityError: when the stored content fails integrity
                checking.
        """
        row = self._backend._read_conn().execute(
            "SELECT data FROM store_blob WHERE ns = ? AND sha = ?",
            (self.ns, sha),
        ).fetchone()
        if row is None:
            raise KeyError(f"no chunk {sha}")
        try:
            data = zlib.decompress(row[0])
        except zlib.error as exc:
            raise ChunkIntegrityError(sha, f"undecodable: {exc}") from exc
        if _digest(data) != sha:
            raise ChunkIntegrityError(sha, "hash mismatch")
        self.metrics.record_get(len(data))
        return data

    def __contains__(self, sha: str) -> bool:
        return self._backend._blob_exists(self.ns, sha, read=True)

    def delete(self, sha: str) -> bool:
        backend = self._backend
        with backend._write_lock:
            cur = backend._writer.execute(
                "DELETE FROM store_blob WHERE ns = ? AND sha = ?",
                (self.ns, sha),
            )
            backend._commit_if_root()
        return cur.rowcount > 0

    def stored_size(self, sha: str) -> int:
        """Stored (compressed) size of one blob."""
        row = self._backend._read_conn().execute(
            "SELECT length(data) FROM store_blob WHERE ns = ? AND sha = ?",
            (self.ns, sha),
        ).fetchone()
        if row is None:
            raise KeyError(f"no chunk {sha}")
        return row[0]

    def total_size(self) -> int:
        """Total stored bytes across this tier."""
        row = self._backend._read_conn().execute(
            "SELECT COALESCE(SUM(length(data)), 0) FROM store_blob "
            "WHERE ns = ?",
            (self.ns,),
        ).fetchone()
        return row[0]

    def addresses(self) -> Iterator[str]:
        """Iterate over every stored content address (sorted)."""
        rows = self._backend._read_conn().execute(
            "SELECT sha FROM store_blob WHERE ns = ? ORDER BY sha", (self.ns,)
        ).fetchall()
        return iter([r[0] for r in rows])

    def verify_blob(self, sha: str) -> bool:
        """Re-hash one stored blob; ``False`` when corrupt or undecodable."""
        try:
            self.get(sha)
        except ChunkIntegrityError:
            return False
        return True


class SQLiteJournal:
    """Write-ahead intent journal as rows of the same database.

    Journal writes always commit immediately on the writer connection —
    an intent must be durable before the data it describes, so recording
    or retiring one inside an open catalog transaction is a protocol
    violation and raises.
    """

    def __init__(self, backend: "SQLiteBackend") -> None:
        self._backend = backend

    def _guard_txn(self, action: str) -> None:
        if self._backend.txn.active:
            raise RuntimeError(
                f"journal {action} inside an open catalog transaction "
                "(intents must commit independently)"
            )

    def record(self, op: str, **payload):
        """Durably insert an intent row; returns the entry to retire later."""
        from repro.dlv.journal import JournalEntry

        self._guard_txn("record")
        txid = uuid.uuid4().hex
        data = {"txid": txid, "op": op, **payload}
        raw, crash_after = ffs.prepare_write(
            "journal.write", json.dumps(data, indent=2, default=str).encode()
        )
        backend = self._backend
        with backend._write_lock:
            backend._writer.execute(
                "INSERT INTO store_journal (txid, seq, data) VALUES (?, "
                "(SELECT COALESCE(MAX(seq), 0) + 1 FROM store_journal), ?)",
                (txid, raw),
            )
            backend._writer.commit()
        if crash_after:
            raise CrashSimulated(
                "simulated crash after torn write (journal.write)"
            )
        return JournalEntry(path=None, txid=txid, data=data)

    def retire(self, entry) -> None:
        """Remove a fulfilled (or rolled-back) intent."""
        self._guard_txn("retire")
        ffs.checkpoint("journal.retire")
        backend = self._backend
        with backend._write_lock:
            backend._writer.execute(
                "DELETE FROM store_journal WHERE txid = ?", (entry.txid,)
            )
            backend._writer.commit()

    def pending(self) -> list:
        """All intent rows, oldest first; torn ones have ``data=None``."""
        from repro.dlv.journal import JournalEntry

        rows = self._backend._read_conn().execute(
            "SELECT txid, data FROM store_journal ORDER BY seq"
        ).fetchall()
        entries = []
        for txid, raw in rows:
            try:
                data = json.loads(bytes(raw).decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                data = None
            entries.append(JournalEntry(path=None, txid=txid, data=data))
        return entries

    def write_raw(self, txid: str, text: str) -> None:
        """Test helper: store an intent payload verbatim (possibly torn)."""
        backend = self._backend
        with backend._write_lock:
            backend._writer.execute(
                "INSERT OR REPLACE INTO store_journal (txid, seq, data) "
                "VALUES (?, (SELECT COALESCE(MAX(seq), 0) + 1 FROM "
                "store_journal), ?)",
                (txid, text.encode()),
            )
            backend._writer.commit()


class SQLiteBackend(StorageBackend):
    """Whole-repository storage in one WAL-mode SQLite database file."""

    scheme = "sqlite"

    def __init__(self, path: str | Path, *, create: bool = False) -> None:
        self.path = Path(path)
        self.root = self.path  # re-openable token: the db file itself
        if create:
            if self.path.exists():
                raise FileExistsError(
                    f"{self.path} already is a dlv repository database"
                )
            self.path.parent.mkdir(parents=True, exist_ok=True)
        elif not self.path.exists():
            raise FileNotFoundError(
                f"{self.path} is not a dlv repository (run Repository.init)"
            )
        self.txn = TxnState()
        self._write_lock = threading.RLock()
        self._owner_thread = threading.get_ident()
        self._reader_local = threading.local()
        self._readers: list[sqlite3.Connection] = []
        self._readers_lock = threading.Lock()
        self._closed = False
        self._writer = self._connect()
        self._writer.executescript(_STORE_SCHEMA)
        self._writer.commit()
        from repro.dlv.catalog import Catalog

        self.catalog = Catalog(self.path, conn=self._writer, txn=self.txn)
        self.chunks = SQLiteBlobStore(self, "chunks")
        self.replica = SQLiteBlobStore(self, "replica")
        self.pages = SQLiteBlobStore(self, "pages")
        self.journal = SQLiteJournal(self)
        if create:
            self.write_config()

    # -- connections -----------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), check_same_thread=False)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=5000")
        return conn

    def _read_conn(self) -> sqlite3.Connection:
        """The connection reads should use on the current thread.

        The owning thread reads through the writer connection (so it
        sees its own in-flight transaction); every other thread gets a
        lazily created private connection, which in WAL mode reads the
        last committed snapshot without blocking the writer.
        """
        if threading.get_ident() == self._owner_thread:
            return self._writer
        conn = getattr(self._reader_local, "conn", None)
        if conn is None:
            conn = self._connect()
            self._reader_local.conn = conn
            with self._readers_lock:
                self._readers.append(conn)
        return conn

    def _commit_if_root(self) -> None:
        """Commit the writer now unless a catalog transaction is open."""
        if not self.txn.active:
            self._writer.commit()

    def _blob_exists(self, ns: str, sha: str, read: bool = False) -> bool:
        conn = self._read_conn() if read else self._writer
        row = conn.execute(
            "SELECT 1 FROM store_blob WHERE ns = ? AND sha = ?", (ns, sha)
        ).fetchone()
        return row is not None

    # -- identity ---------------------------------------------------------------

    @property
    def url(self) -> str:
        return f"sqlite://{self.path}"

    def describe(self) -> dict:
        out = super().describe()
        out["location"] = str(self.path)
        out["wal"] = True
        return out

    # -- associated files --------------------------------------------------------

    def put_file(self, sha: str, data: bytes) -> None:
        with self._write_lock:
            row = self._writer.execute(
                "SELECT 1 FROM store_file WHERE sha = ?", (sha,)
            ).fetchone()
            if row is not None:
                return
            payload, crash_after = ffs.prepare_write("repo.files.write", data)
            self._writer.execute(
                "INSERT OR REPLACE INTO store_file (sha, data) VALUES (?, ?)",
                (sha, payload),
            )
            self._commit_if_root()
            if crash_after:
                raise CrashSimulated(
                    "simulated crash after torn write (repo.files.write)"
                )

    def get_file(self, sha: str) -> bytes:
        row = self._read_conn().execute(
            "SELECT data FROM store_file WHERE sha = ?", (sha,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no stored file {sha}")
        return bytes(row[0])

    def delete_file(self, sha: str) -> bool:
        with self._write_lock:
            cur = self._writer.execute(
                "DELETE FROM store_file WHERE sha = ?", (sha,)
            )
            self._commit_if_root()
        return cur.rowcount > 0

    def stored_file_shas(self) -> set[str]:
        rows = self._read_conn().execute(
            "SELECT sha FROM store_file"
        ).fetchall()
        return {r[0] for r in rows}

    # -- documents ----------------------------------------------------------------

    def read_doc(self, name: str) -> Optional[bytes]:
        row = self._read_conn().execute(
            "SELECT data FROM store_doc WHERE name = ?", (name,)
        ).fetchone()
        return bytes(row[0]) if row is not None else None

    def write_doc(self, name: str, data: bytes) -> None:
        with self._write_lock:
            self._writer.execute(
                "INSERT OR REPLACE INTO store_doc (name, data) VALUES (?, ?)",
                (name, data),
            )
            self._commit_if_root()

    def delete_doc(self, name: str) -> bool:
        with self._write_lock:
            cur = self._writer.execute(
                "DELETE FROM store_doc WHERE name = ?", (name,)
            )
            self._commit_if_root()
        return cur.rowcount > 0

    def list_docs(self, prefix: str = "") -> list[str]:
        rows = self._read_conn().execute(
            "SELECT name FROM store_doc WHERE name LIKE ? ORDER BY name",
            (f"{prefix}%",),
        ).fetchall()
        return [r[0] for r in rows]

    # -- fsck contract --------------------------------------------------------------

    def quarantine_blob(self, kind: str, sha: str) -> bool:
        """Move a corrupt blob row into the quarantine table."""
        if kind not in ("chunks", "replica", "pages"):
            raise ValueError(f"unknown blob tier {kind!r}")
        suffix = {"chunks": "", "replica": ".replica", "pages": ".page"}[kind]
        with self._write_lock:
            row = self._writer.execute(
                "SELECT data FROM store_blob WHERE ns = ? AND sha = ?",
                (kind, sha),
            ).fetchone()
            if row is None:
                return False
            self._writer.execute(
                "INSERT OR REPLACE INTO store_quarantine (name, data) "
                "VALUES (?, ?)",
                (f"{sha}{suffix}", row[0]),
            )
            self._writer.execute(
                "DELETE FROM store_blob WHERE ns = ? AND sha = ?", (kind, sha)
            )
            self._commit_if_root()
        from repro.obs.metrics import counter

        counter("fsck.quarantined").inc()
        return True

    def quarantined(self) -> list[str]:
        rows = self._read_conn().execute(
            "SELECT name FROM store_quarantine ORDER BY name"
        ).fetchall()
        return [r[0] for r in rows]

    # litter(): inherited no-op — a database has no tmp-file debris.

    # -- hub publishing ----------------------------------------------------------------

    @contextmanager
    def publish_tree(self):
        """A temp tree holding one consistent ``repo.db`` snapshot.

        Uses the sqlite backup API, so the snapshot is transactionally
        consistent even while a writer is active, and carries no ``-wal``
        / ``-shm`` sidecars — the published repo really is one file.
        """
        if self.txn.active:
            raise RuntimeError("cannot publish inside an open transaction")
        with tempfile.TemporaryDirectory(prefix="dlv-publish-") as tmp:
            dest = Path(tmp) / DB_NAME
            snapshot = sqlite3.connect(str(dest))
            try:
                with self._write_lock:
                    self._writer.commit()
                    self._writer.backup(snapshot)
                snapshot.commit()
            finally:
                snapshot.close()
            yield Path(tmp)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.catalog.close()
        with self._readers_lock:
            readers, self._readers = self._readers, []
        for conn in readers:
            conn.close()
        self._writer.close()
