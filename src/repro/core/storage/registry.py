"""URL-scheme registry and backend resolution.

Repositories are addressed by URL: ``file://<dir>`` (loose files under
``<dir>/.dlv/``), ``sqlite://<db-file>`` (the whole repo as one WAL-mode
database file), or ``mem://<name>`` (in-process, for tests and ephemeral
serving).  Bare paths remain valid everywhere a URL is accepted and are
auto-detected:

* an existing *file* is opened as a sqlite repo database,
* a directory with ``.dlv/repo.db`` is a sqlite repo that was pulled or
  initialised into a directory,
* a directory with ``.dlv/catalog.db`` (or any ``.dlv/``) is loose-file,
* otherwise the ``backend`` field of ``.dlv/config.json`` decides.

This keeps ``Repository.open(path)`` working unchanged on every repo
created before the storage seam existed, while letting new call sites
pick a substrate explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple

#: Known URL schemes mapped to backend names.
SCHEMES = {
    "file": "local-fs",
    "sqlite": "sqlite",
    "mem": "memory",
}

#: Backend names accepted by ``Repository.init(..., backend=...)``.
BACKEND_NAMES = ("local-fs", "sqlite", "memory")

#: Database file name of a sqlite repo initialised into a directory.
SQLITE_DB_IN_DIR = "repo.db"

_DLV_DIR = ".dlv"


def parse_storage_url(target: str) -> Tuple[Optional[str], str]:
    """Split ``scheme://rest`` into ``(backend_name, rest)``.

    Returns ``(None, target)`` for bare paths.  Unknown schemes raise
    ``ValueError`` (a Windows drive letter like ``C:`` is not a scheme —
    only ``://`` separates one).
    """
    scheme, sep, rest = target.partition("://")
    if not sep:
        return None, target
    try:
        return SCHEMES[scheme], rest
    except KeyError:
        raise ValueError(
            f"unknown storage scheme {scheme!r} in {target!r} "
            f"(expected one of: {', '.join(sorted(SCHEMES))})"
        ) from None


def _detect_existing(path: Path) -> str:
    """Infer the backend of an existing on-disk repository location."""
    if path.is_file():
        return "sqlite"
    dlv = path / _DLV_DIR
    if (dlv / SQLITE_DB_IN_DIR).exists():
        return "sqlite"
    if (dlv / "catalog.db").exists():
        return "local-fs"
    config = dlv / "config.json"
    if config.exists():
        try:
            backend = json.loads(config.read_text()).get("backend")
        except (OSError, json.JSONDecodeError):
            backend = None
        if backend in BACKEND_NAMES:
            return backend
    if dlv.exists():
        return "local-fs"
    raise FileNotFoundError(
        f"{path} is not a dlv repository (run Repository.init)"
    )


def resolve_backend(target, *, create: bool = False, backend: Optional[str] = None):
    """Open (or create) the storage backend for a repository location.

    ``target`` is a URL or a bare path; ``backend`` (init only) forces a
    substrate for bare paths — a sqlite repo initialised at a bare path
    lands at ``<path>/.dlv/repo.db`` so the directory stays the
    re-openable unit and hub pulls keep their layout.
    """
    target = str(target)
    scheme_backend, rest = parse_storage_url(target)
    if backend is not None and backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {backend!r} "
            f"(expected one of: {', '.join(BACKEND_NAMES)})"
        )
    if scheme_backend is not None:
        if backend is not None and backend != scheme_backend:
            raise ValueError(
                f"backend {backend!r} conflicts with URL scheme of {target!r}"
            )
        name = scheme_backend
        location = rest
    elif create:
        name = backend or "local-fs"
        location = target
        if name == "memory":
            raise ValueError(
                "memory repositories need a mem://<name> URL, not a path"
            )
        if name == "sqlite":
            path = Path(target)
            # Bare-path sqlite init: the db lives inside <path>/.dlv/ so
            # the directory remains the repository unit.
            if path.suffix in (".db", ".sqlite", ".sqlite3"):
                location = str(path)
            else:
                location = str(path / _DLV_DIR / SQLITE_DB_IN_DIR)
    else:
        name = _detect_existing(Path(target))
        location = target
        if name == "sqlite" and not Path(target).is_file():
            location = str(Path(target) / _DLV_DIR / SQLITE_DB_IN_DIR)

    if name == "local-fs":
        from repro.core.storage.localfs import LocalFSBackend

        return LocalFSBackend(location, create=create)
    if name == "sqlite":
        from repro.core.storage.sqlite import SQLiteBackend

        return SQLiteBackend(location, create=create)
    from repro.core.storage import memory as mem

    return mem.create(location) if create else mem.get(location)
