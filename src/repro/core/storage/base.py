"""The storage-backend contract every repository substrate implements.

A :class:`~repro.dlv.repository.Repository` is versioning logic layered
over four kinds of state:

* **blobs** — content-addressed byte-plane chunks (main + replica tier)
  and dedup pages (the refcounted ``pages`` tier),
* **files** — content-addressed associated files (``dlv add``),
* **docs** — small named documents (repo config, the commit stage,
  archive-run reports),
* **journal** — write-ahead intent records for in-flight mutations,

plus the relational catalog.  A :class:`StorageBackend` owns all of it
for one physical substrate: loose files under ``.dlv/`` (``local-fs``),
one SQLite database in WAL mode (``sqlite``), or an in-process database
(``memory``).  The repository, fsck, and the hub publish path talk only
to this interface, which is the seam sharded and deduplicating stores
plug into.

Blob stores conform to :class:`BlobStore` — ``put`` / ``get`` /
``__contains__`` / ``delete`` / ``stored_size`` / ``total_size`` /
``addresses`` / ``verify_blob`` with SHA-256-of-uncompressed-content
addressing.  Transactionality is shared through one :class:`TxnState`:
while the catalog holds an open transaction (``txn.active``), a backend
whose blobs live in the same database joins that transaction instead of
committing per write, so a rollback takes speculative blobs with it.

Per-backend fsck contract: :meth:`StorageBackend.litter` reports (and
under repair deletes) substrate-specific debris — stale tmp files for
``local-fs``, nothing for the database backends — and
:meth:`StorageBackend.quarantine_blob` sets a corrupt blob aside where
no read path will ever touch it again.
"""

from __future__ import annotations

import abc
import datetime
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Protocol, runtime_checkable

#: Document name of the repository configuration.
CONFIG_DOC = "config.json"

#: Document name of the ``dlv add`` stage.
STAGE_DOC = "stage.json"

#: Document-name prefix under which archive-run reports are recorded.
ARCHIVES_PREFIX = "archives/"


def utcnow() -> str:
    """ISO-8601 UTC timestamp (the repo-wide convention)."""
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


class TxnState:
    """Transaction-nesting counter shared between a backend and its catalog.

    The catalog increments ``depth`` inside
    :meth:`~repro.dlv.catalog.Catalog.transaction` blocks; a backend
    whose writes can join that transaction checks :attr:`active` to
    decide between committing immediately and deferring to the
    transaction's single commit point.
    """

    __slots__ = ("depth",)

    def __init__(self) -> None:
        self.depth = 0

    @property
    def active(self) -> bool:
        """True while at least one catalog transaction block is open."""
        return self.depth > 0


@runtime_checkable
class BlobStore(Protocol):
    """Structural interface of a content-addressed chunk store.

    ``ChunkStore``, ``MemoryChunkStore``, ``LatencyChunkStore``, and the
    SQLite-backed store all conform; the address of a blob is the
    SHA-256 hex digest of its *uncompressed* content.
    """

    def put(self, data: bytes) -> str:
        """Store a blob; returns its content address (idempotent)."""

    def get(self, sha: str) -> bytes:
        """Retrieve and integrity-verify a blob (KeyError when absent)."""

    def __contains__(self, sha: str) -> bool:
        """Whether the address is stored."""

    def delete(self, sha: str) -> bool:
        """Remove a blob; returns whether it existed."""

    def stored_size(self, sha: str) -> int:
        """Stored (compressed) size of one blob."""

    def total_size(self) -> int:
        """Total stored bytes across all blobs."""

    def addresses(self) -> Iterator[str]:
        """Iterate over every stored content address."""

    def verify_blob(self, sha: str) -> bool:
        """Re-hash one stored blob; ``False`` when corrupt."""


class StorageBackend(abc.ABC):
    """One physical substrate holding a whole repository.

    Concrete backends expose, as attributes set during construction:

    ``chunks`` / ``replica`` / ``pages``
        :class:`BlobStore` instances for the main, replica, and dedup
        page tiers.
    ``catalog``
        The :class:`~repro.dlv.catalog.Catalog` (relational half).
    ``journal``
        The write-ahead intent journal (``record`` / ``retire`` /
        ``pending`` / ``write_raw``).
    ``txn``
        The shared :class:`TxnState`.
    ``root``
        A re-openable location token: the repository directory
        (``local-fs``), the database file (``sqlite``), or the
        ``mem://`` URL (``memory``).
    """

    #: URL scheme of this backend ("local-fs" registers as ``file://``).
    scheme: str = "?"

    # -- identity -----------------------------------------------------------

    @property
    @abc.abstractmethod
    def url(self) -> str:
        """Canonical ``<scheme>://<location>`` URL of this repository."""

    def describe(self) -> dict:
        """Backend identity for ``dlv stats`` and reports."""
        return {"backend": self.scheme, "url": self.url}

    # -- repo config --------------------------------------------------------

    def write_config(self, extra: Optional[dict] = None) -> None:
        """Create the repository config document (init-time)."""
        config = {"version": 1, "created_at": utcnow(), "backend": self.scheme}
        if extra:
            config.update(extra)
        self.write_doc(CONFIG_DOC, json.dumps(config, indent=2).encode())

    def read_config(self) -> dict:
        """The repository config document (empty dict when absent)."""
        raw = self.read_doc(CONFIG_DOC)
        return json.loads(raw) if raw else {}

    # -- associated files (content addressed) -------------------------------

    @abc.abstractmethod
    def put_file(self, sha: str, data: bytes) -> None:
        """Land one associated file durably under its digest."""

    @abc.abstractmethod
    def get_file(self, sha: str) -> bytes:
        """Read an associated file's content (KeyError when absent)."""

    @abc.abstractmethod
    def delete_file(self, sha: str) -> bool:
        """Remove an associated file; returns whether it existed."""

    @abc.abstractmethod
    def stored_file_shas(self) -> set[str]:
        """Digests of every stored associated file."""

    # -- small named documents ----------------------------------------------

    @abc.abstractmethod
    def read_doc(self, name: str) -> Optional[bytes]:
        """Read a named document, or ``None`` when absent."""

    @abc.abstractmethod
    def write_doc(self, name: str, data: bytes) -> None:
        """Write (or overwrite) a named document."""

    @abc.abstractmethod
    def delete_doc(self, name: str) -> bool:
        """Remove a document; returns whether it existed."""

    @abc.abstractmethod
    def list_docs(self, prefix: str = "") -> list[str]:
        """Sorted names of stored documents under ``prefix``."""

    # -- per-backend fsck contract -------------------------------------------

    @abc.abstractmethod
    def quarantine_blob(self, kind: str, sha: str) -> bool:
        """Set a corrupt blob aside (``kind``: "chunks"/"replica"/"pages").

        Returns whether a blob was actually moved.  Quarantined blobs
        are unreachable from every read path but retained for forensics.
        """

    @abc.abstractmethod
    def quarantined(self) -> list[str]:
        """Names of quarantined blobs (``<sha>`` / ``<sha>.replica``)."""

    def litter(self, repair: bool) -> list[dict]:
        """Substrate-specific debris findings for ``dlv fsck``.

        Returns dicts with ``code`` / ``message`` / ``repaired`` /
        ``repair`` keys (converted to fsck findings by the caller).
        The default is no debris — only ``local-fs`` has stale-tmp
        litter to report.
        """
        del repair
        return []

    def sweep_stale_tmps(self) -> int:
        """Remove crashed-writer debris; returns count (fs-only concept)."""
        return 0

    # -- hub publishing -------------------------------------------------------

    @abc.abstractmethod
    def publish_tree(self):
        """Context manager yielding a directory tree to publish to a hub.

        ``local-fs`` yields its live ``.dlv`` directory; the database
        backends yield a temp directory holding a consistent single-file
        ``repo.db`` snapshot.  The tree must stay valid for the duration
        of the ``with`` block.
        """

    # -- lifecycle -----------------------------------------------------------

    @abc.abstractmethod
    def close(self) -> None:
        """Release connections/handles.  Idempotent."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@contextmanager
def yield_path(path: Path):
    """Trivial context manager over a fixed path (local-fs publish)."""
    yield path
