"""Progressive query (inference) evaluation — Sec. IV-D of the paper.

Given weights archived in byte-plane segments, an inference query first
reads only the high-order planes.  Each weight is then known to lie in a
range; the interval forward pass of :mod:`repro.dnn.interval` propagates
those perturbations to the output, and Lemma 4 checks whether the
predicted label is already determined.  Only the data points whose
prediction is *not* determined trigger retrieval of the next plane,
guaranteeing exactness for arbitrary inputs while reading a fraction of
the stored bytes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.retrieval import PlanArchive
from repro.core.segmentation import NUM_PLANES
from repro.dnn.interval import Interval, argmax_determined, tight_intervals
from repro.dnn.network import Network
from repro.obs.cost import charge
from repro.obs.metrics import counter, histogram
from repro.obs.tracing import trace_span


def _bounds_nbytes(bounds: dict[str, dict[str, Interval]]) -> int:
    """Memory footprint of a bounds mapping (both bound arrays)."""
    return sum(
        interval.lo.nbytes + interval.hi.nbytes
        for params in bounds.values()
        for interval in params.values()
    )


def _weights_nbytes(weights: dict[str, dict[str, np.ndarray]]) -> int:
    return sum(
        array.nbytes for params in weights.values() for array in params.values()
    )


@dataclass
class ProgressiveResult:
    """Outcome of a progressive evaluation query.

    Attributes:
        predictions: Final predicted label per data point.
        resolved_at_plane: For each data point, the number of byte planes
            that were needed before Lemma 4 determined its prediction
            (``NUM_PLANES`` means full precision was required).
        determined_fraction: Per plane count ``k``, the fraction of points
            whose prediction was determined using ``<= k`` planes.
        bytes_fraction: Fraction of the archive's stored parameter bytes
            that were retrieved to answer the query.
    """

    predictions: np.ndarray
    resolved_at_plane: np.ndarray
    determined_fraction: dict[int, float] = field(default_factory=dict)
    bytes_fraction: float = 1.0


def _weights_key(matrix_id: str) -> tuple[str, str]:
    """Split a matrix id into its ``(layer, param)`` network address.

    Snapshot archives name matrices ``"layer.param"``; repository
    archives prefix the snapshot key (``"v3/s1/layer.param"``).  The
    network only knows bare layer names, so any path prefix is dropped —
    keying bounds by the prefixed id would silently miss every layer in
    ``forward_interval`` (which falls back to the network's installed
    weights, making the interval pass vacuous).
    """
    tail = matrix_id.rsplit("/", 1)[-1]
    layer, _, param = tail.rpartition(".")
    if not layer:
        raise ValueError(
            f"matrix id {matrix_id!r} is not of the form 'layer.param'"
        )
    return layer, param


class ProgressiveEvaluator:
    """Answers ``dlv eval`` queries progressively from a segmented archive.

    Args:
        net: A *built* network whose architecture matches the archived
            snapshot (its current weights are irrelevant — they are
            replaced by archive contents during evaluation).
        archive: The :class:`PlanArchive` holding the snapshot.
        snapshot_id: Which snapshot to evaluate; matrix ids inside the
            snapshot must be ``"<layer>.<param>"``.
        logits_node: Node whose output feeds the prediction; defaults to
            the input of a trailing Softmax (or the sink itself).
        tight: Use the tighter (costlier) interval products — pays off on
            deep networks, where the default midpoint-radius bound
            compounds layer by layer and rarely determines predictions.
        plane_cache: Optional shared cache with a
            ``get_or_load(key, loader)`` method (the serving layer's
            :class:`repro.serve.PlaneCache`); ``loader`` returns a
            ``(value, nbytes)`` pair.  When given, per-plane bounds and
            the exact weights are stored there — shared across every
            evaluator serving the same snapshot — instead of in the
            evaluator's private memo.

    The evaluator is *reusable*: interval bounds per plane count, the
    exact weights, and the stored-plane-size accounting are each computed
    from the archive once and memoized, so repeated ``evaluate`` calls
    against the same snapshot do not re-read any chunks.  The memo is
    guarded by a lock, making concurrent queries against one evaluator
    safe (the weight-installing exact fallback is serialized).
    """

    def __init__(
        self,
        net: Network,
        archive: PlanArchive,
        snapshot_id: str,
        logits_node: Optional[str] = None,
        tight: bool = False,
        plane_cache=None,
    ) -> None:
        if not net.is_built:
            raise RuntimeError("network must be built")
        self.net = net
        self.archive = archive
        self.snapshot_id = snapshot_id
        self.tight = tight
        self.plane_cache = plane_cache
        if logits_node is None:
            sink = net.output_name
            logits_node = (
                net.predecessor(sink) if net[sink].kind == "SOFTMAX" else sink
            )
        self.logits_node = logits_node
        snapshots = archive._snapshots
        if snapshot_id not in snapshots:
            raise KeyError(f"archive has no snapshot {snapshot_id!r}")
        self._members = snapshots[snapshot_id]
        # Shared-cache entries are keyed by *content* fingerprint when the
        # archive can compute one: two models whose chains resolve to the
        # same weights (common in dedup'd fine-tuned families) then share
        # bounds/weights entries and single-flight loads across evaluators.
        self._cache_ns = snapshot_id
        if plane_cache is not None:
            fingerprint = archive.snapshot_fingerprint(snapshot_id)
            if fingerprint is not None:
                self._cache_ns = fingerprint
        self._lock = threading.RLock()
        self._bounds_memo: dict[int, dict[str, dict[str, Interval]]] = {}
        self._weights_memo: Optional[dict[str, dict[str, np.ndarray]]] = None
        self._plane_sizes_memo: Optional[list[int]] = None
        self._exact_installed = False

    # -- bounds ------------------------------------------------------------

    def _param_bounds(self, planes: int) -> dict[str, dict[str, Interval]]:
        """Interval bounds for every archived parameter at ``planes`` depth.

        Uncached — this is the raw archive read; use :meth:`param_bounds`
        for the memoized entry point.
        """
        bounds: dict[str, dict[str, Interval]] = {}
        for matrix_id in self._members:
            layer, param = _weights_key(matrix_id)
            if planes >= NUM_PLANES:
                exact = self.archive.recreate_matrix(matrix_id)
                interval = Interval.exact(exact)
            else:
                lo, hi = self.archive.matrix_bounds(matrix_id, planes)
                interval = Interval.from_bounds(lo, hi)
            bounds.setdefault(layer, {})[param] = interval
        return bounds

    def param_bounds(self, planes: int) -> dict[str, dict[str, Interval]]:
        """Memoized interval bounds at ``planes`` depth (thread-safe).

        With a ``plane_cache`` the bounds live in the shared cache under
        ``("bounds", snapshot_id, planes)``; otherwise in a private memo.
        Either way the archive is read at most once per plane count.
        """
        planes = min(planes, NUM_PLANES)
        if self.plane_cache is not None:
            def load() -> tuple[dict, int]:
                bounds = self._param_bounds(planes)
                return bounds, _bounds_nbytes(bounds)

            return self.plane_cache.get_or_load(
                ("bounds", self._cache_ns, planes), load
            )
        with self._lock:
            bounds = self._bounds_memo.get(planes)
        if bounds is None:
            # Read the archive outside the lock: chunk retrieval can take
            # tens of milliseconds and must not serialize other queries.
            # Racing computes are possible; the first store wins so the
            # memo stays identity-stable.
            bounds = self._param_bounds(planes)
            with self._lock:
                bounds = self._bounds_memo.setdefault(planes, bounds)
        return bounds

    def exact_weights(self) -> dict[str, dict[str, np.ndarray]]:
        """The snapshot's full-precision weights, read from PAS once."""
        if self.plane_cache is not None:
            def load() -> tuple[dict, int]:
                weights = self._read_exact_weights()
                # Entries may be shared across models (content-keyed), so
                # freeze them — matching the RetrievalCache convention.
                for params in weights.values():
                    for value in params.values():
                        value.setflags(write=False)
                return weights, _weights_nbytes(weights)

            return self.plane_cache.get_or_load(
                ("weights", self._cache_ns), load
            )
        with self._lock:
            weights = self._weights_memo
        if weights is None:
            # PAS reconstruction stays outside the lock (see param_bounds);
            # first writer wins so every caller shares one array set.
            weights = self._read_exact_weights()
            with self._lock:
                if self._weights_memo is None:
                    self._weights_memo = weights
                weights = self._weights_memo
        return weights

    def _read_exact_weights(self) -> dict[str, dict[str, np.ndarray]]:
        weights: dict[str, dict[str, np.ndarray]] = {}
        for matrix_id in self._members:
            layer, param = _weights_key(matrix_id)
            weights.setdefault(layer, {})[param] = self.archive.recreate_matrix(
                matrix_id
            )
        return weights

    def _install_exact(
        self,
        weights: dict[str, dict[str, np.ndarray]],
        force: bool = False,
    ) -> None:
        """Install pre-fetched exact weights. Caller must hold ``_lock``.

        Idempotent between calls that truncate the weights: repeated
        progressive queries skip the (re-)install unless something
        installed other weights in between (``evaluate_at_planes`` resets
        the flag; pass ``force=True`` after external mutation).  The
        weights are fetched by the caller *outside* the lock
        (:meth:`exact_weights`) so chunk retrieval never serializes
        concurrent queries on I/O.
        """
        if self._exact_installed and not force:
            return
        self.net.set_weights(weights)
        self._exact_installed = True

    def _load_exact(self, force: bool = False) -> None:
        """Fetch and install the full-precision weights (convenience).

        Fetches outside the lock, installs under it.  Do not call while
        already holding ``_lock`` — use :meth:`exact_weights` +
        :meth:`_install_exact` there instead.
        """
        weights = self.exact_weights()
        with self._lock:
            self._install_exact(weights, force=force)

    def forward_exact_many(
        self, batches: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Forward several batches at full precision, atomically.

        The serving tier's exact primitive: exact weights are fetched
        first (shared-cache single-flight applies, no lock held), then
        the install plus every forward pass run under ``_lock`` so a
        concurrent :meth:`evaluate_at_planes` cannot swap truncated
        weights in mid-run.
        """
        weights = self.exact_weights()
        with self._lock:
            self._install_exact(weights)
            return self.net.forward_many(batches, upto=self.logits_node)

    def _stored_plane_sizes(self) -> list[int]:
        """Stored bytes per plane index across the snapshot's payload chains."""
        with self._lock:
            if self._plane_sizes_memo is not None:
                return self._plane_sizes_memo
        sizes = [0] * NUM_PLANES
        seen: set[str] = set()
        for matrix_id in self._members:
            current = matrix_id
            while current != "v0":
                if current in seen:
                    break
                seen.add(current)
                entry = self.archive.manifest[current]
                for i in range(NUM_PLANES):
                    sizes[i] += self.archive.plane_stored_size(entry, i)
                current = entry.parent
        with self._lock:
            self._plane_sizes_memo = sizes
        return sizes

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        x: np.ndarray,
        k: int = 1,
        start_planes: int = 1,
        batch: int = 256,
    ) -> ProgressiveResult:
        """Progressively predict labels for ``x`` with exactness guarantee.

        Starts at ``start_planes`` high-order byte planes and escalates
        only the undetermined points, plane by plane, finishing any
        remainder at full precision.

        Args:
            x: Input batch `(N, ...)`.
            k: Determine the top-``k`` label set (1 = plain argmax).
            start_planes: Initial number of planes to read.
            batch: Forward-pass batch size.
        """
        n = len(x)
        predictions = np.full(n, -1, dtype=np.int64)
        resolved_at = np.full(n, NUM_PLANES, dtype=np.int64)
        unresolved = np.arange(n)
        determined_fraction: dict[int, float] = {}
        planes_used = start_planes

        for planes in range(start_planes, NUM_PLANES):
            if unresolved.size == 0:
                determined_fraction[planes] = 1.0
                continue
            with trace_span(
                "progressive.plane",
                snapshot=self.snapshot_id,
                planes=planes,
                unresolved=int(unresolved.size),
            ) as plane_span:
                bounds = self.param_bounds(planes)
                still_open = []
                for start in range(0, unresolved.size, batch):
                    idx = unresolved[start : start + batch]
                    if self.tight:
                        with tight_intervals():
                            logit_iv = self.net.forward_interval(
                                x[idx], bounds, upto=self.logits_node
                            )
                    else:
                        logit_iv = self.net.forward_interval(
                            x[idx], bounds, upto=self.logits_node
                        )
                    determined, labels = argmax_determined(logit_iv, k=k)
                    done = idx[determined]
                    predictions[done] = labels[determined]
                    resolved_at[done] = planes
                    still_open.extend(idx[~determined].tolist())
                resolved_here = unresolved.size - len(still_open)
                plane_span.set_attr("resolved", resolved_here)
            counter("progressive.points_resolved").inc(resolved_here)
            histogram("progressive.plane_seconds").observe(plane_span.elapsed)
            charge(compute_s=plane_span.elapsed)
            unresolved = np.asarray(still_open, dtype=np.int64)
            determined_fraction[planes] = 1.0 - unresolved.size / n
            planes_used = planes
            if unresolved.size == 0:
                break

        if unresolved.size > 0:
            with trace_span(
                "progressive.exact",
                snapshot=self.snapshot_id,
                unresolved=int(unresolved.size),
            ) as exact_span:
                exact = self.exact_weights()
                with self._lock:
                    self._install_exact(exact)
                    planes_used = NUM_PLANES
                    for start in range(0, unresolved.size, batch):
                        idx = unresolved[start : start + batch]
                        out = self.net.forward(x[idx], upto=self.logits_node)
                        predictions[idx] = np.argmax(out, axis=1)
                        resolved_at[idx] = NUM_PLANES
            counter("progressive.points_resolved").inc(int(unresolved.size))
            counter("progressive.exact_fallbacks").inc()
            histogram("progressive.plane_seconds").observe(exact_span.elapsed)
            charge(compute_s=exact_span.elapsed)
        determined_fraction[NUM_PLANES] = 1.0
        counter("progressive.queries").inc()

        plane_sizes = self._stored_plane_sizes()
        total = sum(plane_sizes) or 1
        read = sum(plane_sizes[:planes_used])
        return ProgressiveResult(
            predictions=predictions,
            resolved_at_plane=resolved_at,
            determined_fraction=determined_fraction,
            bytes_fraction=read / total,
        )

    def evaluate_bounded(
        self, x: np.ndarray, planes: int, k: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """One interval pass at a fixed plane budget — no escalation.

        This is the serving layer's primitive: the
        :class:`~repro.serve.BatchScheduler` batches concurrent requests
        at a shared budget, keeps the rows Lemma 4 determines, and
        re-submits only the ambiguous remainder at the next budget.

        Returns:
            ``(determined, labels)`` per row — labels are trustworthy
            exactly where ``determined`` is True.
        """
        with trace_span(
            "progressive.bounded",
            snapshot=self.snapshot_id,
            planes=planes,
            rows=len(x),
        ) as span:
            bounds = self.param_bounds(planes)
            if self.tight:
                with tight_intervals():
                    logit_iv = self.net.forward_interval(
                        x, bounds, upto=self.logits_node
                    )
            else:
                logit_iv = self.net.forward_interval(
                    x, bounds, upto=self.logits_node
                )
            result = argmax_determined(logit_iv, k=k)
        charge(compute_s=span.elapsed)
        return result

    def evaluate_exact(self, x: np.ndarray) -> np.ndarray:
        """Full-precision predictions from the (cached) archive weights."""
        with trace_span(
            "progressive.exact", snapshot=self.snapshot_id, rows=len(x)
        ) as span:
            exact = self.exact_weights()
            with self._lock:
                self._install_exact(exact)
                out = self.net.forward(x, upto=self.logits_node)
        charge(compute_s=span.elapsed)
        return np.argmax(out, axis=1)

    def evaluate_at_planes(
        self, x: np.ndarray, planes: int, batch: int = 256
    ) -> np.ndarray:
        """Non-progressive baseline: predict from truncated weights.

        Reads exactly ``planes`` high-order byte planes, installs the
        truncated point estimates, and predicts — no error guarantee.
        Used by the Fig. 6(d) benchmark to measure the raw error rate of
        partial-precision evaluation.
        """
        weights: dict[str, dict[str, np.ndarray]] = {}
        for matrix_id in self._members:
            layer, param = _weights_key(matrix_id)
            weights.setdefault(layer, {})[param] = self.archive.recreate_matrix(
                matrix_id, planes=planes
            )
        with self._lock:
            self.net.set_weights(weights)
            self._exact_installed = planes >= NUM_PLANES
            preds = []
            for start in range(0, len(x), batch):
                out = self.net.forward(
                    x[start : start + batch], upto=self.logits_node
                )
                preds.append(np.argmax(out, axis=1))
        return np.concatenate(preds) if preds else np.empty(0, dtype=np.int64)
