"""Bytewise segmentation of float matrices.

The key storage idea of PAS (Sec. IV-B): a float32 matrix is stored in four
byte planes.  Plane 0 holds each value's most significant byte (sign + the
high 7 exponent bits), plane 1 the next byte, and so on.  The high-order
planes have low entropy and compress well with zlib; the low-order planes
can be offloaded or skipped entirely, because

* comparison/exploration queries tolerate the resulting small errors, and
* inference queries can be answered *progressively*: knowing a prefix of
  each value's bytes bounds the value to an interval, and Lemma 4 decides
  whether the prediction is already determined (see
  :mod:`repro.core.progressive`).

This module provides the plane split/assemble primitives and the interval
reconstruction from a high-order prefix.
"""

from __future__ import annotations

import numpy as np

#: float32 has four byte planes.
NUM_PLANES = 4

_FLOAT32_MAX = np.float32(np.finfo(np.float32).max)


def segment_planes(matrix: np.ndarray) -> list[bytes]:
    """Split a float32 matrix into ``NUM_PLANES`` byte planes (MSB first)."""
    arr = np.ascontiguousarray(matrix, dtype=">f4")
    raw = arr.view(np.uint8).reshape(-1, NUM_PLANES)
    return [raw[:, i].tobytes() for i in range(NUM_PLANES)]


def assemble_planes(planes: list[bytes], shape: tuple) -> np.ndarray:
    """Reassemble a float32 matrix from all four byte planes."""
    if len(planes) != NUM_PLANES:
        raise ValueError(f"need {NUM_PLANES} planes, got {len(planes)}")
    count = int(np.prod(shape)) if shape else 1
    raw = np.empty((count, NUM_PLANES), dtype=np.uint8)
    for i, plane in enumerate(planes):
        buf = np.frombuffer(plane, dtype=np.uint8)
        if buf.size != count:
            raise ValueError(
                f"plane {i} holds {buf.size} bytes, expected {count}"
            )
        raw[:, i] = buf
    return raw.reshape(-1).view(">f4").astype(np.float32).reshape(shape)


def _patterns_from_prefix(
    planes: list[bytes], shape: tuple, fill: int
) -> np.ndarray:
    """Bit patterns obtained by filling the missing low planes with ``fill``."""
    count = int(np.prod(shape)) if shape else 1
    raw = np.full((count, NUM_PLANES), fill, dtype=np.uint8)
    for i, plane in enumerate(planes):
        buf = np.frombuffer(plane, dtype=np.uint8)
        if buf.size != count:
            raise ValueError(
                f"plane {i} holds {buf.size} bytes, expected {count}"
            )
        raw[:, i] = buf
    return raw.reshape(-1).view(">f4").astype(np.float32)


def bounds_from_prefix(
    planes: list[bytes], shape: tuple
) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise value bounds given the leading byte planes.

    For each float, the unknown low-order bytes can be anything in
    ``0x00..0xFF``.  The two extreme bit patterns (all-zero fill and
    all-ones fill) bound the value: for non-negative floats a larger
    unsigned pattern is a larger value; for negative floats the ordering
    flips.  Non-finite extremes (possible only when the known exponent bits
    are saturated) are clamped to the float32 range.

    Returns:
        `(lo, hi)` float32 arrays of ``shape``.
    """
    if not 1 <= len(planes) <= NUM_PLANES:
        raise ValueError(f"need 1..{NUM_PLANES} planes, got {len(planes)}")
    if len(planes) == NUM_PLANES:
        exact = assemble_planes(planes, shape)
        return exact, exact.copy()
    zeros_fill = _patterns_from_prefix(planes, shape, 0x00)
    ones_fill = _patterns_from_prefix(planes, shape, 0xFF)
    ones_fill = np.nan_to_num(
        ones_fill, nan=_FLOAT32_MAX, posinf=_FLOAT32_MAX, neginf=-_FLOAT32_MAX
    )
    lo = np.minimum(zeros_fill, ones_fill).reshape(shape)
    hi = np.maximum(zeros_fill, ones_fill).reshape(shape)
    return lo, hi


def prefix_estimate(planes: list[bytes], shape: tuple) -> np.ndarray:
    """Point estimate from a prefix: the midpoint of the value bounds.

    Used by partial-retrieval queries (``dlv desc`` / ``dlv diff`` style)
    that tolerate small errors.
    """
    lo, hi = bounds_from_prefix(planes, shape)
    return ((lo.astype(np.float64) + hi.astype(np.float64)) / 2.0).astype(
        np.float32
    )


def plane_compressed_sizes(matrix: np.ndarray, level: int = 6) -> list[int]:
    """zlib-compressed size of each byte plane — shows the entropy gradient."""
    import zlib

    return [len(zlib.compress(p, level)) for p in segment_planes(matrix)]
