"""ModelHub reproduction: unified data and lifecycle management for deep learning.

This package reproduces the system described in "Towards Unified Data and
Lifecycle Management for Deep Learning" (Miao, Li, Davis, Deshpande —
ICDE 2017).  It is organised into five subpackages:

``repro.dnn``
    A from-scratch numpy deep learning substrate: layers, DAG networks,
    training with checkpointing, synthetic datasets, a model zoo, and an
    interval-arithmetic forward pass used by progressive queries.

``repro.core``
    PAS, the parameter archival store: float representation schemes,
    bytewise segmentation, delta encoding, the matrix storage graph and
    optimal archival algorithms (PAS-MT / PAS-PT / LAST), retrieval
    executors, and progressive query evaluation.

``repro.dlv``
    The DLV model version control system: repository, sqlite3 metadata
    catalog, command suite, and the ``dlv`` command line interface.

``repro.dql``
    The DQL domain specific language: lexer, parser, and executor for
    ``select`` / ``slice`` / ``construct`` / ``evaluate`` queries.

``repro.hub``
    A directory-backed ModelHub sharing service (publish / search / pull).

``repro.lifecycle``
    The synthetic auto-modeler that generates SD/RD-style repositories of
    related model versions for the archival experiments.

``repro.obs``
    The unified observability layer: a metrics registry (counters,
    gauges, histograms), nested tracing spans with a ring-buffer
    recorder, and the structured-logging bootstrap.  Every other
    subsystem reports into it; ``dlv stats`` and the benchmark harness
    read from it.
"""

import os as _os

from repro.version import __version__

__all__ = ["__version__"]

if _os.environ.get("REPRO_LOCKSAN") == "1":
    # Opt-in runtime lock sanitizer: instruments every threading.Lock /
    # RLock / Condition created after this import (see
    # repro.analysis.locksan).  CI runs the serve/obs suites with it on.
    from repro.analysis import locksan as _locksan

    _locksan.enable()
