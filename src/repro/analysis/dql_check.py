"""Semantic analysis of parsed DQL queries, before the executor runs.

The DQL executor discovers most mistakes deep inside execution — after
versions have been loaded, networks cloned, or (worst) training started.
This pass walks the AST from :mod:`repro.dql.parser` and reports every
statically decidable problem up front as spanned
:class:`~repro.analysis.diagnostics.Diagnostic` objects: unresolvable
names, unbound variables, ill-typed comparisons, invalid selectors and
templates, unusable ``vary`` targets, and enumerations that are provably
empty or unsatisfiable.

``DQLExecutor(strict=True)`` runs this analyzer first and refuses to
execute a query with error-severity findings.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.diagnostics import (
    Diagnostic,
    Span,
    record_diagnostics,
    span_from_offsets,
)
from repro.dql import hyperparams as hp
from repro.dql.ast_nodes import (
    BoolOp,
    Comparison,
    Condition,
    ConstructQuery,
    EvaluateQuery,
    HasClause,
    KeepClause,
    Path,
    Query,
    SelectQuery,
    SliceQuery,
    VaryClause,
)
from repro.dql.lexer import LexError
from repro.dql.parser import ParseError, parse
from repro.dql.selector import SelectorError, compile_selector

__all__ = ["check_query"]

#: Version attributes with a known scalar type.
_NUMERIC_ATTRS = {"accuracy", "final_accuracy", "loss", "final_loss", "id"}
_STRING_ATTRS = {"name", "created_at", "creation_time"}

#: Template kinds DQL mutations can instantiate (selector.py).
_CONSTRUCTIBLE_KINDS = {
    "RELU", "SIGMOID", "TANH", "SOFTMAX", "FLATTEN", "DROPOUT", "LRN",
    "POOL", "CONV", "FULL",
}
#: Kinds a `has` template may test for (any real layer kind).
_LAYER_KINDS = _CONSTRUCTIBLE_KINDS | {"ADD", "CONCAT", "BNORM"}

#: Config keys a 1-component vary target may address.
_KNOWN_CONFIG_KEYS = (
    set(hp._SOLVER_KEYS)
    | set(hp.AUTO_GRIDS)
    | {"input_data", "data_size", "data_classes"}
)

#: Metrics an evaluation row carries (hyperparams.apply_keep reads these).
_KEEP_METRICS = {"loss", "accuracy", "iterations"}


class _Checker:
    def __init__(
        self,
        repo=None,
        configs: Optional[dict] = None,
        results: Optional[dict] = None,
        text: Optional[str] = None,
    ) -> None:
        self.repo = repo
        self.configs = configs or {}
        self.results = results or {}
        self.text = text
        self.diagnostics: list[Diagnostic] = []
        self._catalog_names: Optional[set[str]] = None
        self._metadata_keys: Optional[set[str]] = None

    # -- helpers -----------------------------------------------------------

    def _span(self, node) -> Optional[Span]:
        span = getattr(node, "span", None) if node is not None else None
        if span is None:
            return None
        return span_from_offsets(self.text, span[0], span[1])

    def report(
        self,
        code: str,
        severity: str,
        message: str,
        node=None,
        hint: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                code, severity, message, span=self._span(node), hint=hint,
                source="dql",
            )
        )

    def _catalog(self) -> set[str]:
        if self._catalog_names is None:
            self._catalog_names = (
                {v.name for v in self.repo.list_versions()}
                if self.repo is not None
                else set()
            )
        return self._catalog_names

    def _known_metadata(self) -> set[str]:
        if self._metadata_keys is None:
            keys: set[str] = set()
            if self.repo is not None:
                for version in self.repo.list_versions():
                    keys.update(version.metadata)
            self._metadata_keys = keys
        return self._metadata_keys

    # -- conditions --------------------------------------------------------

    def check_condition(self, cond: Optional[Condition], var: str) -> None:
        if cond is None:
            return
        if isinstance(cond, BoolOp):
            for operand in cond.operands:
                self.check_condition(operand, var)
            if cond.op == "and":
                self._check_satisfiable(cond)
            return
        if isinstance(cond, Comparison):
            self._check_comparison(cond, var)
        elif isinstance(cond, HasClause):
            self._check_has(cond, var)

    def _check_path_var(self, path: Path, var: str) -> bool:
        if path.var != var:
            self.report(
                "DQL102", "error",
                f"condition references {path.var!r} but the query binds "
                f"{var!r}",
                path,
                hint=f"write the condition over {var!r}",
            )
            return False
        return True

    def _check_comparison(self, cond: Comparison, var: str) -> None:
        if not self._check_path_var(cond.path, var):
            return
        if not cond.path.attrs:
            self.report(
                "DQL104", "error",
                "comparison path needs an attribute "
                f"(e.g. {var}.accuracy)",
                cond.path,
            )
            return
        attr = cond.path.attrs[0]
        known = _NUMERIC_ATTRS | _STRING_ATTRS | self._known_metadata()
        if attr not in known:
            self.report(
                "DQL104", "warning",
                f"unknown attribute {attr!r} — not a built-in version "
                "attribute"
                + (
                    " or a metadata key in this repository"
                    if self.repo is not None
                    else ""
                ),
                cond.path,
                hint="built-ins: " + ", ".join(
                    sorted(_NUMERIC_ATTRS | _STRING_ATTRS)
                ),
            )
        if attr in _NUMERIC_ATTRS:
            if cond.op == "like":
                self.report(
                    "DQL103", "warning",
                    f"'like' pattern-matches strings but {attr!r} is numeric",
                    cond.path,
                )
            elif isinstance(cond.value, str):
                self.report(
                    "DQL103", "error",
                    f"{attr!r} is numeric but is compared to the string "
                    f"{cond.value!r}",
                    cond.path,
                    hint="compare against a number literal",
                )
        elif attr in _STRING_ATTRS and attr != "created_at":
            if cond.op in ("<", "<=", ">", ">=") and isinstance(
                cond.value, (int, float)
            ):
                self.report(
                    "DQL103", "error",
                    f"{attr!r} is a string attribute; ordering it against "
                    f"the number {cond.value!r} is meaningless",
                    cond.path,
                    hint="use = / != / like with a string",
                )
        if (
            attr == "name"
            and cond.op == "="
            and isinstance(cond.value, str)
            and self.repo is not None
            and cond.value not in self._catalog()
        ):
            self.report(
                "DQL101", "warning",
                f"no model named {cond.value!r} in the catalog; the "
                "condition matches nothing",
                cond.path,
                hint="check `dlv list` for available names",
            )

    def _check_has(self, cond: HasClause, var: str) -> None:
        if not self._check_path_var(cond.path, var):
            return
        if cond.path.selector is None:
            self.report(
                "DQL105", "error",
                '"has" conditions need a node selector',
                cond.path,
                hint=f'write {var}["conv*"] has ...',
            )
        else:
            self._check_selector(cond.path.selector, cond.path)
        for attr in cond.path.attrs:
            if attr not in ("next", "prev"):
                self.report(
                    "DQL106", "error",
                    f"unsupported traversal attribute {attr!r}",
                    cond.path,
                    hint="only .next and .prev traverse the DAG",
                )
        self._check_template(cond.template, _LAYER_KINDS)

    def _check_selector(self, pattern: str, node) -> None:
        try:
            compile_selector(pattern)
        except SelectorError as exc:
            self.report("DQL105", "error", str(exc), node)

    def _check_template(self, template, allowed: set[str]) -> None:
        if template is None:
            return
        if template.kind not in allowed:
            self.report(
                "DQL109", "error",
                f"unknown layer-template kind {template.kind!r}",
                template,
                hint="known kinds: " + ", ".join(sorted(allowed)),
            )

    def _check_satisfiable(self, cond: BoolOp) -> None:
        """Flag provably empty `and` chains of numeric range comparisons."""
        bounds: dict[str, dict] = {}
        for operand in cond.operands:
            if not isinstance(operand, Comparison):
                continue
            if not operand.path.attrs or not isinstance(
                operand.value, (int, float)
            ):
                continue
            attr = operand.path.attrs[0]
            entry = bounds.setdefault(
                attr,
                {"lo": float("-inf"), "hi": float("inf"), "eq": set(),
                 "node": operand.path},
            )
            value = float(operand.value)
            if operand.op in (">", ">="):
                entry["lo"] = max(entry["lo"], value)
            elif operand.op in ("<", "<="):
                entry["hi"] = min(entry["hi"], value)
            elif operand.op == "=":
                entry["eq"].add(value)
        for attr, entry in bounds.items():
            contradictory = entry["lo"] > entry["hi"] or len(entry["eq"]) > 1
            if not contradictory and entry["eq"]:
                eq = next(iter(entry["eq"]))
                contradictory = not entry["lo"] <= eq <= entry["hi"]
            if contradictory:
                self.report(
                    "DQL113", "error",
                    f"conditions on {attr!r} are unsatisfiable — no value "
                    "meets every bound in the 'and' chain",
                    entry["node"],
                    hint="relax one of the contradictory comparisons",
                )

    # -- per-query checks --------------------------------------------------

    def check(self, query: Query) -> None:
        if isinstance(query, SelectQuery):
            self.check_condition(query.where, query.var)
        elif isinstance(query, SliceQuery):
            self._check_slice(query)
        elif isinstance(query, ConstructQuery):
            self._check_construct(query)
        elif isinstance(query, EvaluateQuery):
            self._check_evaluate(query)

    def _check_slice(self, query: SliceQuery) -> None:
        if query.source_query is not None:
            self.check(query.source_query)
        self.check_condition(query.where, query.source_var)
        for label, path in (
            ("input", query.input_path), ("output", query.output_path)
        ):
            if path.var != query.source_var:
                self.report(
                    "DQL107", "error",
                    f"slice {label} endpoint selects nodes of {path.var!r}, "
                    f"not the source variable {query.source_var!r}",
                    path,
                    hint=f"write {query.source_var}[...] on both endpoints",
                )
            if path.selector is None:
                self.report(
                    "DQL105", "error",
                    f"slice {label} endpoint needs a node selector",
                    path,
                    hint=f'write {query.source_var}["conv1"]',
                )
            else:
                self._check_selector(path.selector, path)

    def _check_construct(self, query: ConstructQuery) -> None:
        if query.source_query is not None:
            self.check(query.source_query)
        self.check_condition(query.where, query.source_var)
        for mutation in query.mutations:
            if mutation.anchor.selector is None:
                self.report(
                    "DQL108", "error",
                    f"{mutation.action} mutation anchor has no node selector",
                    mutation.anchor,
                    hint=f'write {query.source_var}["conv*"].{mutation.action}',
                )
            else:
                self._check_selector(mutation.anchor.selector, mutation.anchor)
            allowed = (
                _CONSTRUCTIBLE_KINDS
                if mutation.action == "insert"
                else _LAYER_KINDS
            )
            self._check_template(mutation.template, allowed)

    def _check_evaluate(self, query: EvaluateQuery) -> None:
        if isinstance(query.source, str):
            known = query.source in self.results
            if not known and self.repo is not None:
                if not self.repo.list_versions(query.source):
                    self.report(
                        "DQL101", "error",
                        f"evaluate source {query.source!r} is neither a "
                        "registered result nor a model name pattern in the "
                        "catalog",
                        _SpanCarrier(query.source_span),
                        hint="run the producing query first, or check "
                        "`dlv list`",
                    )
        else:
            self.check(query.source)
        self._check_config(query)
        for clause in query.vary:
            self._check_vary(clause)
        self._check_keep(query.keep)

    def _check_config(self, query: EvaluateQuery) -> None:
        try:
            hp.load_config(query.config_ref, self.configs)
        except hp.ConfigError as exc:
            self.report(
                "DQL112", "error", str(exc),
                _SpanCarrier(query.config_span),
                hint="register the config on the executor or point at a "
                "JSON file",
            )

    def _check_vary(self, clause: VaryClause) -> None:
        target = clause.target
        dotted = "config." + ".".join(target)
        if len(target) == 1:
            if target[0] not in _KNOWN_CONFIG_KEYS:
                self.report(
                    "DQL110", "warning",
                    f"{dotted} is not a known hyperparameter dimension",
                    clause,
                    hint="known keys: " + ", ".join(
                        sorted(_KNOWN_CONFIG_KEYS)
                    ),
                )
        elif not (
            len(target) == 3 and target[0] == "net" and target[2] == "lr"
        ):
            self.report(
                "DQL110", "error",
                f"unsupported vary target {dotted}; only flat config keys "
                'and config.net["<layer>"].lr are tunable',
                clause,
            )
        if clause.auto and target[-1] not in hp.AUTO_GRIDS:
            self.report(
                "DQL111", "error",
                f"no auto grid for {dotted}",
                clause,
                hint="spell the grid out with `in [...]`, or vary one of: "
                + ", ".join(sorted(hp.AUTO_GRIDS)),
            )

    def _check_keep(self, keep: Optional[KeepClause]) -> None:
        if keep is None:
            return
        if keep.mode == "top":
            if keep.k is not None and keep.k <= 0:
                self.report(
                    "DQL113", "error",
                    f"keep top({keep.k}, ...) keeps nothing — the "
                    "enumeration result is always empty",
                    keep,
                    hint="use k >= 1",
                )
            if keep.iterations is not None and keep.iterations <= 0:
                self.report(
                    "DQL113", "warning",
                    f"keep top(..., {keep.iterations}) measures at a "
                    "non-positive iteration count",
                    keep,
                )
        metric = hp.metric_name(keep)
        if metric not in _KEEP_METRICS:
            self.report(
                "DQL114", "warning",
                f"keep ranks by unknown metric {metric!r}; candidates "
                "without it are dropped or unranked",
                keep,
                hint="known metrics: " + ", ".join(sorted(_KEEP_METRICS)),
            )


class _SpanCarrier:
    """Adapter giving plain ``(start, end)`` tuples a ``.span`` attribute."""

    def __init__(self, span) -> None:
        self.span = span


def check_query(
    query: Union[str, Query],
    repo=None,
    configs: Optional[dict] = None,
    results: Optional[dict] = None,
    text: Optional[str] = None,
) -> list[Diagnostic]:
    """Statically analyze one DQL statement.

    Args:
        query: Source text or an already-parsed AST.
        repo: Optional :class:`~repro.dlv.repository.Repository`; when
            given, names are resolved against its catalog (``DQL101``)
            and metadata keys inform attribute checks (``DQL104``).
        configs: Named tuning configs (as registered on an executor).
        results: Named query results available to ``evaluate ... from``.
        text: Original source when ``query`` is an AST, for line/col spans.

    Returns:
        Diagnostics sorted errors-first.  Syntax errors surface as a
        single ``DQL100`` diagnostic rather than an exception.
    """
    if isinstance(query, str):
        text = query
        try:
            ast = parse(query)
        except ParseError as exc:
            span = None
            if exc.offset is not None:
                span = span_from_offsets(
                    text, exc.offset, exc.offset + exc.length
                )
            return record_diagnostics(
                [
                    Diagnostic(
                        "DQL100", "error", str(exc), span=span, source="dql",
                        hint="fix the syntax before semantic checks can run",
                    )
                ],
                "dql",
            )
        except LexError as exc:
            return record_diagnostics(
                [Diagnostic("DQL100", "error", str(exc), source="dql")],
                "dql",
            )
    else:
        ast = query
    checker = _Checker(repo=repo, configs=configs, results=results, text=text)
    checker.check(ast)
    order = {"error": 0, "warning": 1, "info": 2}
    checker.diagnostics.sort(key=lambda d: order[d.severity])
    return record_diagnostics(checker.diagnostics, "dql")
