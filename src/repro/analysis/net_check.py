"""Static validation of :class:`~repro.dnn.network.Network` DAGs.

The validator re-derives every layer's output shape *symbolically* — the
same conv/pool arithmetic :mod:`repro.dnn.layers` applies in ``build`` —
without allocating a single weight array.  That lets DQL ``construct``
mutations and ``dlv check`` reject a shape-mismatched candidate before
any parameters exist, let alone any training runs.

Checks performed (codes from :data:`repro.analysis.diagnostics.CODES`):

* structure — cycles (``NET201``), dangling inputs (``NET202``),
  multi-sink ambiguity (``NET203``), nodes unreachable from the input
  (``NET204``);
* shapes — rank mismatches per layer kind (``NET205``), non-positive
  conv/pool output dimensions (``NET206``), disagreeing multi-input
  shapes (``NET207``);
* dtypes — float64 parameters on built networks (``NET208``), which
  would silently break PAS byte-plane segmentation
  (:mod:`repro.core.float_schemes` assumes 4-byte float32 patterns).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.diagnostics import (
    Diagnostic,
    has_errors,
    record_diagnostics,
)
from repro.dnn.im2col import conv_output_size
from repro.dnn.network import INPUT, GraphError, Network

__all__ = ["check_network", "validate_network"]

#: Layer kinds whose output shape equals their input shape.
_IDENTITY_KINDS = {
    "RELU", "SIGMOID", "TANH", "SOFTMAX", "DROPOUT", "BNORM",
}


def _diag(code, severity, message, hint=None) -> Diagnostic:
    return Diagnostic(code, severity, message, hint=hint, source="net")


def _check_structure(net: Network) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    dangling = net.dangling_inputs()
    for node, upstream in dangling:
        diagnostics.append(
            _diag(
                "NET202", "error",
                f"node {node!r} consumes {upstream!r}, which does not exist",
                hint="add the missing node first, or rewire the input",
            )
        )
    if dangling:
        # Cycle/reachability analysis needs a well-formed edge set.
        return diagnostics
    cyclic = False
    try:
        net.topological_order()
    except GraphError as exc:
        cyclic = True
        diagnostics.append(
            _diag(
                "NET201", "error", str(exc),
                hint="break the cycle by deleting or rewiring one of the "
                "listed nodes",
            )
        )
    if not cyclic:
        sinks = net.sinks()
        if len(net) and len(sinks) > 1:
            diagnostics.append(
                _diag(
                    "NET203", "warning",
                    f"network has {len(sinks)} sinks {sorted(sinks)}; "
                    "forward() and training need exactly one output",
                    hint="slice the intended head or delete the dead branch",
                )
            )
    # Reachability from the input sentinel, following consumer edges.  In a
    # well-formed DAG every node is reachable (each chain of inputs ends at
    # INPUT), so this pinpoints the island when a cycle is present.
    reachable: set[str] = set()
    frontier = [
        node.name for node in net.nodes() if INPUT in node.input_names
    ]
    while frontier:
        current = frontier.pop()
        if current in reachable:
            continue
        reachable.add(current)
        frontier.extend(net.consumers(current))
    for name in net.node_names():
        if name not in reachable:
            diagnostics.append(
                _diag(
                    "NET204", "warning",
                    f"node {name!r} is unreachable from the network input",
                    hint="connect it to the DAG or delete it",
                )
            )
    return diagnostics


def _infer_shape(
    kind: str,
    name: str,
    hyperparams: dict,
    in_shape,
    multi_input: bool,
) -> tuple[Optional[tuple], list[Diagnostic]]:
    """Output shape of one layer from its input shape(s), plus findings."""
    diagnostics: list[Diagnostic] = []
    if multi_input:
        shapes = [tuple(s) for s in in_shape]
        if kind == "ADD":
            if len(set(shapes)) != 1:
                diagnostics.append(
                    _diag(
                        "NET207", "error",
                        f"Add node {name!r} inputs disagree: {shapes}",
                        hint="Add requires identical shapes on every input",
                    )
                )
                return None, diagnostics
            return shapes[0], diagnostics
        if kind == "CONCAT":
            tails = {shape[1:] for shape in shapes}
            if len(tails) != 1 or not all(shapes):
                diagnostics.append(
                    _diag(
                        "NET207", "error",
                        f"Concat node {name!r} inputs disagree beyond the "
                        f"channel axis: {shapes}",
                        hint="Concat inputs may differ only in channels",
                    )
                )
                return None, diagnostics
            return (sum(s[0] for s in shapes), *shapes[0][1:]), diagnostics
        return None, diagnostics  # unknown multi-input kind: no inference
    shape = tuple(in_shape)
    if kind in _IDENTITY_KINDS:
        return shape, diagnostics
    if kind == "FLATTEN":
        return (int(np.prod(shape)) if shape else 1,), diagnostics
    if kind in ("CONV", "POOL", "LRN"):
        if len(shape) != 3:
            diagnostics.append(
                _diag(
                    "NET205", "error",
                    f"{kind.title()} node {name!r} needs a (C, H, W) input, "
                    f"got {shape}",
                    hint="feed it image-shaped activations",
                )
            )
            return None, diagnostics
        if kind == "LRN":
            return shape, diagnostics
        c, h, w = shape
        k = hyperparams["kernel"]
        s = hyperparams["stride"]
        p = hyperparams.get("pad", 0) if kind == "CONV" else 0
        try:
            oh = conv_output_size(h, k, s, p)
            ow = conv_output_size(w, k, s, p)
        except ValueError:
            diagnostics.append(
                _diag(
                    "NET206", "error",
                    f"{kind.title()} node {name!r} produces a non-positive "
                    f"output from input {shape} with kernel={k}, "
                    f"stride={s}, pad={p}",
                    hint="shrink the kernel/stride or pad the input",
                )
            )
            return None, diagnostics
        channels = hyperparams["filters"] if kind == "CONV" else c
        return (channels, oh, ow), diagnostics
    if kind == "FULL":
        if len(shape) != 1:
            diagnostics.append(
                _diag(
                    "NET205", "error",
                    f"Dense node {name!r} needs a flat (D,) input, got "
                    f"{shape}",
                    hint="insert a Flatten layer before it",
                )
            )
            return None, diagnostics
        return (hyperparams["units"],), diagnostics
    # Unknown kinds propagate their input shape, best-effort.
    return shape, diagnostics


def _check_shapes(net: Network) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    shapes: dict[str, Optional[tuple]] = {INPUT: tuple(net.input_shape)}
    for name in net.topological_order():
        layer = net[name]
        input_names = net.inputs_of(name)
        upstream = [shapes.get(i) for i in input_names]
        if any(s is None for s in upstream):
            shapes[name] = None  # upstream already failed; don't cascade
            continue
        in_shape = upstream if layer.multi_input else upstream[0]
        shapes[name], found = _infer_shape(
            layer.kind, name, layer.hyperparams, in_shape, layer.multi_input
        )
        diagnostics.extend(found)
    return diagnostics


def _check_dtypes(net: Network) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    if not net.is_built:
        return diagnostics
    for layer in net.layers():
        bad = [
            key for key, value in layer.params.items()
            if np.asarray(value).dtype != np.float32
        ]
        running = getattr(layer, "running_mean", None)
        if running is not None and np.asarray(running).dtype != np.float32:
            bad.append("running_mean")
        if bad:
            diagnostics.append(
                _diag(
                    "NET208", "error",
                    f"layer {layer.name!r} parameters {bad} are not float32; "
                    "PAS byte-plane segmentation assumes 4-byte floats",
                    hint="cast the parameters to np.float32 before committing",
                )
            )
    return diagnostics


def check_network(net: Network) -> list[Diagnostic]:
    """All static diagnostics for one network, worst severity first."""
    diagnostics = _check_structure(net)
    if not has_errors(diagnostics):
        diagnostics.extend(_check_shapes(net))
        diagnostics.extend(_check_dtypes(net))
    order = {"error": 0, "warning": 1, "info": 2}
    diagnostics.sort(key=lambda d: order[d.severity])
    return record_diagnostics(diagnostics, "net")


def validate_network(net: Network) -> None:
    """Raise :class:`GraphError` when :func:`check_network` finds errors.

    This is what ``Network.build(validate=True)`` calls before touching
    any weights.
    """
    diagnostics = check_network(net)
    errors = [d for d in diagnostics if d.severity == "error"]
    if errors:
        detail = "; ".join(f"[{d.code}] {d.message}" for d in errors)
        raise GraphError(
            f"network {net.name!r} failed static validation: {detail}"
        )
