"""``repro.analysis`` — static diagnostics for queries, graphs, and code.

Four coordinated passes share one :class:`Diagnostic` model (severity,
stable code, source span, fix hint) and one surface (``dlv check``):

* :mod:`repro.analysis.dql_check` — semantic analysis of parsed DQL
  (``DQL1xx``): name resolution against the DLV catalog, vary-target and
  config validation, condition type checking, unsatisfiable enumerations.
  ``DQLExecutor(strict=True)`` refuses to execute queries with errors.
* :mod:`repro.analysis.net_check` — symbolic shape/dtype inference over
  the network DAG without building weights (``NET2xx``): cycles, dangling
  inputs, shape mismatches, float64 leaks that would break PAS
  segmentation.  ``Network.build(validate=True)`` runs it first.
* :mod:`repro.analysis.lint` — ``ast``-based repo-invariant lint
  (``LINT3xx``), runnable as ``python -m repro.analysis.lint src/repro``
  and wired into CI.
* :mod:`repro.analysis.conc` — concurrency-safety checker (``CONC4xx``):
  guarded-by inference, lock-order inversion cycles, blocking calls
  under locks, thread daemon/join discipline.  Runnable as
  ``python -m repro.analysis.conc src/repro`` and wired into CI; its
  runtime companion is :mod:`repro.analysis.locksan`, an instrumented
  lock shim that turns real wait-for cycles into ``CONC407`` errors
  instead of hangs.

Every emission is counted in ``repro.obs`` under
``analysis.diagnostics_emitted`` (plus per-severity / per-pass counters).
"""

from repro.analysis.conc import check_file as conc_check_file
from repro.analysis.conc import check_paths as conc_check_paths
from repro.analysis.diagnostics import (
    CODES,
    PASS_PREFIXES,
    AnalysisError,
    Diagnostic,
    Span,
    codes_for_pass,
    format_diagnostic,
    format_diagnostics,
    has_errors,
    pragma_ignored,
)
from repro.analysis.dql_check import check_query
from repro.analysis.lint import lint_file, lint_paths
from repro.analysis.net_check import check_network, validate_network

__all__ = [
    "CODES",
    "PASS_PREFIXES",
    "AnalysisError",
    "Diagnostic",
    "Span",
    "check_network",
    "check_query",
    "codes_for_pass",
    "conc_check_file",
    "conc_check_paths",
    "format_diagnostic",
    "format_diagnostics",
    "has_errors",
    "lint_file",
    "lint_paths",
    "pragma_ignored",
    "validate_network",
]
