"""Static concurrency-safety analysis (``CONC4xx``) over Python sources.

PRs 4-5 turned this reproduction into a threaded serving stack — batch
workers, a shared single-flight plane cache, ``ThreadingHTTPServer``
handlers, the hub HTTP tier — where the dominant correctness risks are
data races and deadlocks, not shapes or dtypes.  This pass analyses the
``ast`` of each file symbolically and reports:

* ``CONC401`` — *unguarded shared write*.  Per class, the checker infers
  a guarded-by map: which lock attributes (``self._lock = threading.Lock()``
  style) protect which mutable attributes, by observing every
  ``self.attr = ...`` / ``self.attr += ...`` / mutating-method write and
  the set of locks held around it (``with self._lock:`` scopes, including
  locks guaranteed held on entry to private helpers — see below).  An
  attribute written both under a lock and outside any lock is an error;
  an attribute of a thread-owning class written with no guard anywhere
  while being accessed from several methods is a warning.
* ``CONC402`` — *inconsistent guard*: write sites that disagree on which
  lock protects an attribute (no common lock).
* ``CONC403`` — *lock-order inversion*: a static lock-acquisition-order
  graph is built across methods and intra-class call edges (acquiring B
  while holding A adds ``A -> B``); any cycle is a potential deadlock.
* ``CONC404`` — *double acquire*: a non-reentrant ``threading.Lock`` (or
  an explicit ``.acquire()`` on one) taken while provably already held.
* ``CONC405`` — *blocking under lock*: ``time.sleep``, socket/HTTP
  calls, file I/O, indefinite ``wait()``/``queue.get()``, and this
  repository's chunk-retrieval APIs (``recreate_matrix``,
  ``get_or_load``, ...) executed while holding a lock — directly or via
  an intra-class call chain.
* ``CONC406`` — *thread discipline*: ``threading.Thread`` constructed
  without ``daemon=`` in a file that never ``join``\\ s a thread (and
  ``Thread`` subclasses whose ``__init__`` sets no daemon flag).

The symbolic part: the checker propagates *must-hold* lock sets through
intra-class calls.  A private helper (``_admit``, ``_step``) whose every
call site holds ``self._cond`` is analysed as if that lock were held on
entry, so the common "public method locks, private helper mutates"
idiom needs no annotations.  Helpers reachable only from ``__init__``
are treated as initialization (single-threaded) and excluded from guard
inference.  Nested ``def``/``lambda`` bodies run later, in an unknown
context, so locks held at their *definition* site are not credited to
them.

Findings use the shared :class:`~repro.analysis.diagnostics.Diagnostic`
model and are suppressible with ``# lint: ignore[CODE]`` on the
offending line.  Run as ``python -m repro.analysis.conc src/repro
[--json] [--strict]``; exits 1 when any error remains (``--strict``:
when any finding remains).  ``dlv check --conc`` is the same pass.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.diagnostics import (
    Diagnostic,
    Span,
    format_diagnostic,
    has_errors,
    pragma_ignored,
    record_diagnostics,
)

__all__ = ["check_file", "check_paths", "main"]

#: ``threading`` factory names whose result is a lock-like guard.
LOCK_FACTORIES = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
    "allocate_lock": "lock",
}

#: Attribute names that read as locks when we cannot see their factory
#: (foreign objects: ``with evaluator._lock:``).
_LOCKISH_RE = re.compile(r"(?:^|_)(?:lock|cond|mutex|sem)(?:_|$)|_lock$|_cond$")

#: Method-call attribute names that block the calling thread: sockets,
#: HTTP, filesystem, subprocess — plus this repository's chunk-retrieval
#: and cache-load APIs, which hit the chunk store (disk or remote).
BLOCKING_CALL_ATTRS = {
    "sleep", "urlopen", "getresponse", "connect", "accept", "recv",
    "recvfrom", "sendall", "communicate", "check_output", "select",
    "read_bytes", "read_text", "write_bytes", "write_text",
    "recreate_matrix", "recreate_snapshot", "get_snapshot_weights",
    "matrix_bounds", "get_or_load", "fetch_tree", "pull",
    "pull_for_serving",
}

#: Plain-name calls that block (when imported directly).
BLOCKING_NAME_CALLS = {"open", "sleep", "urlopen"}

#: Container methods that mutate their receiver — a call
#: ``self.attr.append(x)`` is a write to ``attr``.
MUTATOR_ATTRS = {
    "append", "appendleft", "extend", "extendleft", "add", "discard",
    "remove", "insert", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "move_to_end",
}


def _expr_text(node: ast.AST) -> Optional[str]:
    """Dotted-path rendering of a simple Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_text(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _lock_factory_kind(value: ast.AST) -> Optional[str]:
    """Kind of lock a ``threading.Lock()``-style constructor creates."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return LOCK_FACTORIES.get(name) if name else None


@dataclass
class _Write:
    attr: str
    method: str
    lineno: int
    col: int
    held: frozenset


@dataclass
class _CallSite:
    callee: str
    method: str
    lineno: int
    col: int
    held: frozenset


@dataclass
class _Acquire:
    lock: str
    kind: str
    method: str
    lineno: int
    col: int
    held: tuple  # acquisition order matters for the edge graph


@dataclass
class _Blocking:
    desc: str
    method: str
    lineno: int
    col: int
    held: frozenset


@dataclass
class _MethodFacts:
    name: str
    writes: list = field(default_factory=list)
    calls: list = field(default_factory=list)
    acquires: list = field(default_factory=list)
    blocking: list = field(default_factory=list)
    reads: set = field(default_factory=set)
    entry_held: frozenset = frozenset()


class _FunctionWalker:
    """Walks one function body tracking the set of locks provably held.

    ``held`` is carried as a tuple to preserve acquisition order (the
    lock-order graph wants ``A -> B``, not an unordered pair).  Nested
    function/lambda bodies execute later in an unknown locking context,
    so they are walked with an empty held set and their blocking
    operations are kept out of the enclosing method's summary (flagged
    only if the closure itself locks).
    """

    def __init__(self, class_ctx: "_ClassContext", method: str) -> None:
        self.ctx = class_ctx
        self.method = method
        self.facts = _MethodFacts(method)

    # -- lock identification -------------------------------------------------

    def _lock_ref(self, expr: ast.AST) -> Optional[tuple[str, str]]:
        """``(lock_id, kind)`` when ``expr`` denotes a lock, else None."""
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                kind = self.ctx.lock_attrs.get(expr.attr)
                if kind is not None:
                    return f"{self.ctx.name}.self.{expr.attr}", kind
            if _LOCKISH_RE.search(expr.attr):
                text = _expr_text(expr)
                if text is not None:
                    return f"{self.ctx.name}.{text}", "unknown"
            return None
        if isinstance(expr, ast.Name) and _LOCKISH_RE.search(expr.id):
            return f"{self.ctx.name}.{expr.id}", "unknown"
        return None

    # -- statement walking ---------------------------------------------------

    def walk_body(self, body: list, held: tuple) -> None:
        for stmt in body:
            self.walk_stmt(stmt, held)

    def walk_stmt(self, node: ast.stmt, held: tuple) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: runs later, unknown context.
            nested = _FunctionWalker(self.ctx, self.method)
            nested.walk_body(node.body, ())
            self._absorb_nested(nested)
            return
        if isinstance(node, ast.ClassDef):
            return  # nested classes are analysed separately
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                ref = self._lock_ref(item.context_expr)
                if ref is not None:
                    lock, kind = ref
                    self._record_acquire(lock, kind, item.context_expr, inner)
                    if lock not in inner:
                        inner = inner + (lock,)
                else:
                    self.walk_expr(item.context_expr, held)
            self.walk_body(node.body, inner)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                self._record_write_target(target, node, held)
            if node.value is not None:
                self.walk_expr(node.value, held)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_write_target(target, node, held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self.walk_stmt(child, held)
            elif isinstance(child, ast.expr):
                self.walk_expr(child, held)

    def _absorb_nested(self, nested: "_FunctionWalker") -> None:
        """Keep a closure's writes/acquires; drop its may-block summary."""
        self.facts.writes.extend(nested.facts.writes)
        self.facts.acquires.extend(nested.facts.acquires)
        self.facts.reads |= nested.facts.reads
        # Closure-local blocking ops only matter if the closure locked:
        self.facts.blocking.extend(
            b for b in nested.facts.blocking if b.held
        )

    # -- expression walking --------------------------------------------------

    def walk_expr(self, node: ast.expr, held: tuple) -> None:
        if isinstance(node, ast.Lambda):
            nested = _FunctionWalker(self.ctx, self.method)
            nested.walk_expr(node.body, ())
            self._absorb_nested(nested)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, held)
            for arg in node.args:
                self.walk_expr(arg, held)
            for kw in node.keywords:
                self.walk_expr(kw.value, held)
            self.walk_expr(node.func, held)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                self.facts.reads.add(node.attr)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.walk_expr(child, held)

    # -- events --------------------------------------------------------------

    def _record_acquire(
        self, lock: str, kind: str, node: ast.AST, held: tuple
    ) -> None:
        self.facts.acquires.append(
            _Acquire(
                lock, kind, self.method,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                held,
            )
        )

    def _record_write_target(
        self, target: ast.AST, node: ast.stmt, held: tuple
    ) -> None:
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            self.facts.writes.append(
                _Write(
                    base.attr, self.method, node.lineno,
                    getattr(node, "col_offset", 0), frozenset(held),
                )
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write_target(element, node, held)

    def _visit_call(self, node: ast.Call, held: tuple) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            # self.attr.mutator(...) mutates self.attr
            if (
                func.attr in MUTATOR_ATTRS
                and isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
            ):
                self.facts.writes.append(
                    _Write(
                        receiver.attr, self.method, node.lineno,
                        node.col_offset, frozenset(held),
                    )
                )
            # explicit lock.acquire()
            if func.attr == "acquire":
                ref = self._lock_ref(receiver)
                if ref is not None:
                    self._record_acquire(ref[0], ref[1], node, held)
                    return
            # self.method(...) — intra-class call edge
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if func.attr in self.ctx.method_names:
                    self.facts.calls.append(
                        _CallSite(
                            func.attr, self.method, node.lineno,
                            node.col_offset, frozenset(held),
                        )
                    )
                    return
            desc = self._blocking_desc(node, func, held)
            if desc is not None:
                self.facts.blocking.append(
                    _Blocking(
                        desc, self.method, node.lineno, node.col_offset,
                        frozenset(held),
                    )
                )
        elif isinstance(func, ast.Name) and func.id in BLOCKING_NAME_CALLS:
            self.facts.blocking.append(
                _Blocking(
                    f"{func.id}()", self.method, node.lineno,
                    node.col_offset, frozenset(held),
                )
            )

    @staticmethod
    def _has_timeout(node: ast.Call) -> bool:
        if node.args:
            return True
        return any(kw.arg == "timeout" for kw in node.keywords)

    def _blocking_desc(
        self, node: ast.Call, func: ast.Attribute, held: tuple
    ) -> Optional[str]:
        """Describe a blocking call, or None when it is not one."""
        attr = func.attr
        if attr in BLOCKING_CALL_ATTRS:
            return f".{attr}()"
        if attr == "wait":
            ref = self._lock_ref(func.value)
            if ref is not None and ref[0] in held:
                return None  # cond.wait() releases the held condition
            if self._has_timeout(node):
                return None
            return ".wait() with no timeout"
        if attr == "get":
            text = _expr_text(func.value) or ""
            if "queue" in text.lower() and not self._has_timeout(node):
                return ".get() on a queue with no timeout"
        return None


class _ClassContext:
    """Per-class facts: lock attributes, method summaries, thread-ness."""

    def __init__(self, node: ast.ClassDef, module_name: str) -> None:
        self.node = node
        self.name = node.name
        self.module = module_name
        self.methods: dict[str, ast.FunctionDef] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
        self.method_names = set(self.methods)
        self.lock_attrs: dict[str, str] = {}
        self.is_thread_subclass = any(
            (_expr_text(base) or "").split(".")[-1] == "Thread"
            for base in node.bases
        )
        self.constructs_thread = False
        self.facts: dict[str, _MethodFacts] = {}
        self._find_lock_attrs()

    def _find_lock_attrs(self) -> None:
        for method in self.methods.values():
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign):
                    continue
                kind = _lock_factory_kind(stmt.value)
                if kind is None:
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.lock_attrs[target.attr] = kind

    @property
    def concurrent(self) -> bool:
        return bool(self.lock_attrs) or self.is_thread_subclass \
            or self.constructs_thread

    def analyse(self, thread_subclasses: set[str]) -> None:
        for name, method in self.methods.items():
            walker = _FunctionWalker(self, name)
            walker.walk_body(method.body, ())
            self.facts[name] = walker.facts
        # Does any method construct a thread (directly, or a Thread
        # subclass defined in the same file)?
        for method in self.methods.values():
            for call in ast.walk(method):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name == "Thread" or (name in thread_subclasses):
                    self.constructs_thread = True
        self._propagate_entry_held()

    def _propagate_entry_held(self) -> None:
        """Must-hold-on-entry sets for private helpers, to a fixpoint.

        A ``_``-private method called only with lock L held is analysed
        as if L were held throughout.  Public methods (callable from
        outside the class) always assume an empty entry set.
        """
        sites_by_callee: dict[str, list[_CallSite]] = {}
        for facts in self.facts.values():
            for call in facts.calls:
                sites_by_callee.setdefault(call.callee, []).append(call)
        universe = frozenset(
            f"{self.name}.self.{attr}" for attr in self.lock_attrs
        )
        entry = {
            name: (
                universe
                if name.startswith("_") and not name.startswith("__")
                and name in sites_by_callee
                else frozenset()
            )
            for name in self.facts
        }
        for _ in range(len(self.facts) + 1):
            changed = False
            for name, sites in sites_by_callee.items():
                if name not in entry or not entry[name]:
                    continue
                new = None
                for site in sites:
                    held = site.held | entry.get(site.method, frozenset())
                    new = held if new is None else (new & held)
                new = new if new is not None else frozenset()
                if new != entry[name]:
                    entry[name] = new
                    changed = True
            if not changed:
                break
        for name, facts in self.facts.items():
            facts.entry_held = entry.get(name, frozenset())

    def init_methods(self) -> set[str]:
        """``__init__`` plus private helpers reachable only from it."""
        sites_by_callee: dict[str, set[str]] = {}
        for facts in self.facts.values():
            for call in facts.calls:
                sites_by_callee.setdefault(call.callee, set()).add(
                    call.method
                )
        init: set[str] = {"__init__"} & set(self.facts)
        for _ in range(len(self.facts) + 1):
            grew = False
            for name, callers in sites_by_callee.items():
                if (
                    name not in init
                    and name.startswith("_")
                    and name in self.facts
                    and callers <= init
                ):
                    init.add(name)
                    grew = True
            if not grew:
                break
        return init


class _FileAnalysis:
    """One file's findings plus its contribution to the global order graph."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.findings: list[Diagnostic] = []
        # lock-order edges: (from_lock, to_lock) -> (file, lineno, col)
        self.edges: dict[tuple[str, str], tuple[str, int, int]] = {}
        self.lines: list[str] = []

    def report(
        self, code: str, severity: str, message: str, lineno: int,
        col: int, hint: str,
    ) -> None:
        if pragma_ignored(self.lines, lineno, code):
            return
        self.findings.append(
            Diagnostic(
                code, severity, message,
                span=Span(line=lineno, col=col + 1),
                hint=hint, source="conc", file=str(self.path),
            )
        )


def _short(lock: str) -> str:
    """Human lock name: ``PlaneCache.self._cond`` -> ``PlaneCache._cond``."""
    return lock.replace(".self.", ".")


def _analyse_class(ctx: _ClassContext, out: _FileAnalysis) -> None:
    init_methods = ctx.init_methods()

    def effective(held: frozenset, method: str) -> frozenset:
        return held | ctx.facts[method].entry_held

    # -- CONC404 + lock-order edges ------------------------------------------
    acquires_trans: dict[str, set[tuple[str, str]]] = {
        name: {(a.lock, a.kind) for a in facts.acquires}
        for name, facts in ctx.facts.items()
    }
    for _ in range(len(ctx.facts) + 1):
        changed = False
        for name, facts in ctx.facts.items():
            for call in facts.calls:
                extra = acquires_trans.get(call.callee, set())
                if not extra <= acquires_trans[name]:
                    acquires_trans[name] |= extra
                    changed = True
        if not changed:
            break

    for name, facts in ctx.facts.items():
        for acq in facts.acquires:
            held = effective(frozenset(acq.held), name)
            ordered = tuple(acq.held) + tuple(
                sorted(facts.entry_held - set(acq.held))
            )
            for prior in ordered:
                if prior != acq.lock:
                    self_edge = (prior, acq.lock)
                    self_site = (str(out.path), acq.lineno, acq.col)
                    out.edges.setdefault(self_edge, self_site)
            if acq.lock in held and acq.kind == "lock":
                out.report(
                    "CONC404", "error",
                    f"non-reentrant lock {_short(acq.lock)} acquired while "
                    f"already held (would self-deadlock)",
                    acq.lineno, acq.col,
                    hint="use threading.RLock, or restructure so the lock "
                    "is taken once",
                )
        for call in facts.calls:
            held = effective(call.held, name)
            for lock, kind in acquires_trans.get(call.callee, set()):
                if lock in held and kind == "lock":
                    out.report(
                        "CONC404", "error",
                        f"call to {call.callee}() re-acquires non-reentrant "
                        f"lock {_short(lock)} already held here",
                        call.lineno, call.col,
                        hint="use threading.RLock, or split the locked "
                        "section out of the callee",
                    )
                for prior in held:
                    if prior != lock:
                        out.edges.setdefault(
                            (prior, lock),
                            (str(out.path), call.lineno, call.col),
                        )

    # -- CONC405 blocking under lock -----------------------------------------
    may_block: dict[str, Optional[str]] = {
        name: (facts.blocking[0].desc if facts.blocking else None)
        for name, facts in ctx.facts.items()
    }
    for _ in range(len(ctx.facts) + 1):
        changed = False
        for name, facts in ctx.facts.items():
            if may_block[name]:
                continue
            for call in facts.calls:
                via = may_block.get(call.callee)
                if via:
                    may_block[name] = f"{call.callee}() -> {via}"
                    changed = True
                    break
        if not changed:
            break

    for name, facts in ctx.facts.items():
        for block in facts.blocking:
            held = effective(block.held, name)
            if held:
                locks = ", ".join(sorted(_short(h) for h in held))
                out.report(
                    "CONC405", "warning",
                    f"blocking call {block.desc} while holding {locks}",
                    block.lineno, block.col,
                    hint="move the blocking operation outside the critical "
                    "section (fetch first, install under the lock)",
                )
        for call in facts.calls:
            held = effective(call.held, name)
            via = may_block.get(call.callee)
            if held and via:
                locks = ", ".join(sorted(_short(h) for h in held))
                out.report(
                    "CONC405", "warning",
                    f"call to {call.callee}() blocks ({via}) while "
                    f"holding {locks}",
                    call.lineno, call.col,
                    hint="hoist the blocking work out of the locked "
                    "section, or document why it must block here",
                )

    # -- CONC401 / CONC402 guarded-by inference ------------------------------
    writes_by_attr: dict[str, list[_Write]] = {}
    methods_touching: dict[str, set[str]] = {}
    for name, facts in ctx.facts.items():
        for write in facts.writes:
            writes_by_attr.setdefault(write.attr, []).append(write)
            methods_touching.setdefault(write.attr, set()).add(name)
        for attr in facts.reads:
            methods_touching.setdefault(attr, set()).add(name)

    for attr, writes in sorted(writes_by_attr.items()):
        if attr in ctx.lock_attrs:
            continue  # the locks themselves are assigned at init
        shared = [w for w in writes if w.method not in init_methods]
        if not shared:
            continue
        guards = [effective(w.held, w.method) for w in shared]
        guarded = [g for g in guards if g]
        unguarded = [
            w for w, g in zip(shared, guards) if not g
        ]
        if guarded and unguarded:
            lock_names = ", ".join(
                sorted({_short(lock) for g in guarded for lock in g})
            )
            for write in unguarded:
                out.report(
                    "CONC401", "error",
                    f"{ctx.name}.{attr} is written here without a lock but "
                    f"under {lock_names} elsewhere",
                    write.lineno, write.col,
                    hint=f"hold {lock_names} at every write site (reads "
                    "may stay lockless)",
                )
        elif guarded:
            common = frozenset.intersection(*guarded)
            if not common:
                locks = ", ".join(
                    sorted({_short(lock) for g in guarded for lock in g})
                )
                first = shared[0]
                out.report(
                    "CONC402", "error",
                    f"{ctx.name}.{attr} write sites disagree on the "
                    f"guarding lock ({locks})",
                    first.lineno, first.col,
                    hint="pick one lock to guard this attribute and hold "
                    "it at every write site",
                )
        elif ctx.concurrent and len(
            methods_touching.get(attr, set()) - init_methods
        ) >= 2:
            first = min(shared, key=lambda w: (w.lineno, w.col))
            out.report(
                "CONC401", "warning",
                f"unguarded write to {ctx.name}.{attr}, shared state of a "
                f"thread-owning class",
                first.lineno, first.col,
                hint="guard writes with a lock, use an Event, or document "
                "single-writer ownership with a pragma",
            )


def _thread_discipline(
    tree: ast.Module, out: _FileAnalysis, thread_subclasses: set[str]
) -> None:
    """CONC406: threads constructed without ``daemon=`` or any join."""
    joins_or_daemon = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr == "join":
            joins_or_daemon = True
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr == "daemon":
                    joins_or_daemon = True
    if joins_or_daemon:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "Thread":
            continue
        if any(kw.arg == "daemon" for kw in node.keywords):
            continue
        out.report(
            "CONC406", "warning",
            "thread constructed without daemon= and never joined in this "
            "file",
            node.lineno, node.col_offset,
            hint="pass daemon=True for fire-and-forget threads, or join() "
            "them on shutdown",
        )
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef) \
                or klass.name not in thread_subclasses:
            continue
        init = next(
            (s for s in klass.body
             if isinstance(s, ast.FunctionDef) and s.name == "__init__"),
            None,
        )
        if init is None:
            continue
        disciplined = False
        for node in ast.walk(init):
            if isinstance(node, ast.Call) and any(
                kw.arg == "daemon" for kw in node.keywords
            ):
                disciplined = True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and target.attr == "daemon":
                        disciplined = True
        if not disciplined:
            out.report(
                "CONC406", "warning",
                f"Thread subclass {klass.name} sets no daemon flag and "
                "this file never joins it",
                klass.lineno, klass.col_offset,
                hint="pass daemon= through super().__init__, or join the "
                "thread on shutdown",
            )


def _analyse_file(path: Path) -> Optional[_FileAnalysis]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    out = _FileAnalysis(path)
    out.lines = source.splitlines()
    thread_subclasses = {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef) and any(
            (_expr_text(base) or "").split(".")[-1] == "Thread"
            for base in node.bases
        )
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            ctx = _ClassContext(node, path.stem)
            ctx.analyse(thread_subclasses)
            _analyse_class(ctx, out)
    _thread_discipline(tree, out, thread_subclasses)
    return out


def _order_cycles(
    edges: dict[tuple[str, str], tuple[str, int, int]]
) -> list[tuple[list[str], tuple[str, int, int]]]:
    """Cycles in the acquisition-order graph (each reported once)."""
    graph: dict[str, set[str]] = {}
    for (src, dst) in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())
    # Tarjan SCC, iterative.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    cycles = []
    for scc in sccs:
        in_scc = set(scc)
        site = min(
            (
                site for (src, dst), site in edges.items()
                if src in in_scc and dst in in_scc
            ),
            key=lambda s: (s[0], s[1]),
        )
        cycles.append((scc, site))
    return cycles


def check_file(path: str | Path) -> list[Diagnostic]:
    """Concurrency-check one file (intra-file lock-order graph only)."""
    return check_paths([path], _record=False)


def check_paths(
    paths: Iterable[str | Path], _record: bool = True
) -> list[Diagnostic]:
    """Concurrency-check every ``.py`` file under the given paths.

    The lock-acquisition-order graph is accumulated *across* files, so
    an inversion between two modules is still reported (anchored at one
    representative acquisition site).
    """
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            files.append(entry)
    findings: list[Diagnostic] = []
    edges: dict[tuple[str, str], tuple[str, int, int]] = {}
    analyses: dict[str, _FileAnalysis] = {}
    for file in files:
        analysis = _analyse_file(file)
        if analysis is None:
            continue
        findings.extend(analysis.findings)
        analyses[str(file)] = analysis
        for edge, site in analysis.edges.items():
            edges.setdefault(edge, site)
    for cycle, (file, lineno, col) in _order_cycles(edges):
        pretty = " -> ".join(_short(lock) for lock in cycle + cycle[:1])
        analysis = analyses.get(file)
        lines = analysis.lines if analysis is not None else []
        if pragma_ignored(lines, lineno, "CONC403"):
            continue
        findings.append(
            Diagnostic(
                "CONC403", "error",
                f"lock-order inversion cycle: {pretty}",
                span=Span(line=lineno, col=col + 1),
                hint="acquire these locks in one global order everywhere "
                "(or collapse them into one lock)",
                source="conc", file=file,
            )
        )
    findings.sort(key=lambda d: (d.file or "", d.span.line if d.span else 0))
    if _record:
        return record_diagnostics(findings, "conc")
    return findings


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.conc",
        description="static concurrency-safety checker (CONC4xx)",
    )
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on any finding, not just errors (CI runs this)",
    )
    args = parser.parse_args(argv)
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        # A vacuous pass over a mistyped path must not look clean in CI.
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = check_paths(args.paths)
    if args.json:
        json.dump([d.to_dict() for d in findings], sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for diag in findings:
            print(format_diagnostic(diag))
        errors = sum(1 for d in findings if d.severity == "error")
        print(f"{len(findings)} finding(s), {errors} error(s)")
    if args.strict:
        return 1 if findings else 0
    return 1 if has_errors(findings) else 0


if __name__ == "__main__":
    sys.exit(main())
