"""The unified diagnostic model shared by every static-analysis pass.

All four passes — the DQL semantic analyzer (``DQL1xx``), the network
graph validator (``NET2xx``), the repo-invariant linter (``LINT3xx``),
and the concurrency checker (``CONC4xx``) — report through one
:class:`Diagnostic` shape: a severity, a stable code, a human message,
an optional source :class:`Span`, and a fix hint.  ``dlv check`` renders
lists of them as text or JSON, and every emission is counted in
``repro.obs`` (``analysis.diagnostics_emitted`` plus per-severity and
per-pass counters).

File-based passes share one suppression mechanism: a
``# lint: ignore[CODE]`` comment on the offending line (parsed here by
:func:`pragma_ignored`, so lint and conc agree on the syntax).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.obs.metrics import counter

__all__ = [
    "CODES",
    "PASS_PREFIXES",
    "SEVERITIES",
    "AnalysisError",
    "Diagnostic",
    "Span",
    "codes_for_pass",
    "format_diagnostic",
    "format_diagnostics",
    "has_errors",
    "pragma_ignored",
    "record_diagnostics",
    "span_from_offsets",
]

SEVERITIES = ("error", "warning", "info")

#: Pass name -> code prefix, the key for ``dlv check --list-codes --pass``.
PASS_PREFIXES: dict[str, str] = {
    "dql": "DQL",
    "net": "NET",
    "lint": "LINT",
    "conc": "CONC",
}

#: Every diagnostic code any pass can emit, with a one-line description.
#: This table is the single source of truth: ``dlv check --list-codes``
#: prints it and ``docs/api.md`` mirrors it.
CODES: dict[str, str] = {
    # -- DQL semantic analysis (analysis/dql_check.py) --------------------
    "DQL100": "query does not parse (syntax error, carried over with its span)",
    "DQL101": "name does not resolve against the DLV catalog or result registry",
    "DQL102": "condition references a variable the query does not bind",
    "DQL103": "type mismatch in a comparison (e.g. numeric metric vs string)",
    "DQL104": "unknown attribute in a comparison path",
    "DQL105": "missing or malformed node selector",
    "DQL106": "unsupported graph-traversal attribute (only next/prev)",
    "DQL107": "slice endpoint bound to the wrong variable",
    "DQL108": "construct mutation anchor has no node selector",
    "DQL109": "unknown layer-template kind",
    "DQL110": "vary target is not a known hyperparameter dimension",
    "DQL111": "vary ... auto has no default grid for this dimension",
    "DQL112": "tuning config reference cannot be resolved",
    "DQL113": "enumeration is empty or unsatisfiable",
    "DQL114": "keep clause ranks by an unknown metric",
    # -- network graph validation (analysis/net_check.py) -----------------
    "NET201": "network DAG contains a cycle",
    "NET202": "node consumes an input that does not exist",
    "NET203": "network has multiple sinks (ambiguous output)",
    "NET204": "node is unreachable from the network input",
    "NET205": "layer input has an incompatible rank or shape",
    "NET206": "conv/pool arithmetic yields a non-positive output dimension",
    "NET207": "multi-input layer shapes disagree (Add/Concat)",
    "NET208": "float64 parameters would break PAS float-scheme segmentation",
    # -- repo-invariant lint (analysis/lint.py) ----------------------------
    "LINT301": "bare except: handler",
    "LINT302": "float64 dtype constructed in a PAS hot path",
    "LINT303": "in-place mutation of an array returned by chunkstore/retrieval",
    "LINT304": "instrumented core module lost its repro.obs coverage",
    # -- concurrency safety (analysis/conc.py + analysis/locksan.py) -------
    "CONC401": "shared attribute written without the lock that guards it "
               "elsewhere (unguarded shared write)",
    "CONC402": "attribute guarded by different locks at different write "
               "sites (inconsistent guard)",
    "CONC403": "lock-acquisition-order inversion cycle (potential deadlock)",
    "CONC404": "non-reentrant Lock/Condition acquired while already held "
               "(self-deadlock)",
    "CONC405": "blocking operation (sleep/socket/file I/O/chunk retrieval) "
               "executed while holding a lock",
    "CONC406": "thread started without daemon= or a matching join()",
    "CONC407": "runtime wait-for cycle detected by the lock sanitizer "
               "(would deadlock)",
}


def codes_for_pass(pass_name: Optional[str]) -> dict[str, str]:
    """The slice of :data:`CODES` one pass owns (all of them for ``None``).

    Raises:
        KeyError: unknown pass name (the valid ones are the
            :data:`PASS_PREFIXES` keys).
    """
    if pass_name is None:
        return dict(CODES)
    prefix = PASS_PREFIXES[pass_name]
    return {
        code: text for code, text in CODES.items()
        if code.startswith(prefix)
    }


#: ``# lint: ignore`` / ``# lint: ignore[CODE, CODE2]`` — the shared
#: suppression comment every file-based pass honors.
PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<codes>[A-Z0-9, ]+)\])?")


def pragma_ignored(lines: list[str], lineno: int, code: str) -> bool:
    """Is ``code`` suppressed by a pragma on 1-based line ``lineno``?

    A bare ``# lint: ignore`` suppresses every code on that line; the
    bracketed form suppresses only the listed codes.
    """
    if not 1 <= lineno <= len(lines):
        return False
    match = PRAGMA_RE.search(lines[lineno - 1])
    if not match:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return code in {c.strip() for c in codes.split(",")}


@dataclass(frozen=True)
class Span:
    """A half-open character span into one source (query text or file).

    ``line``/``col`` are 1-based; ``start``/``end`` are 0-based character
    offsets.  For file-based diagnostics (lint) only ``line``/``col`` are
    meaningful and offsets default to 0.
    """

    start: int = 0
    end: int = 0
    line: int = 1
    col: int = 1

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "line": self.line,
            "col": self.col,
        }


def span_from_offsets(
    text: Optional[str], start: int, end: Optional[int] = None
) -> Span:
    """Build a :class:`Span` from offsets, deriving line/col from ``text``."""
    if end is None:
        end = start + 1
    if text is None:
        return Span(start, end)
    from repro.dql.parser import line_col

    line, col = line_col(text, start)
    return Span(start, end, line, col)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Attributes:
        code: Stable identifier from :data:`CODES` (``DQL101`` ...).
        severity: ``error`` (blocks strict execution / fails CI),
            ``warning``, or ``info``.
        message: What is wrong, with the concrete names involved.
        span: Where in the source, when known.
        hint: How to fix it, when the pass can tell.
        source: Which pass produced it (``dql`` / ``net`` / ``lint`` /
            ``conc`` / ``locksan``).
        file: File path for lint diagnostics (None for query/graph ones).
    """

    code: str
    severity: str
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None
    source: str = "dql"
    file: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": self.span.to_dict() if self.span else None,
            "hint": self.hint,
            "source": self.source,
            "file": self.file,
        }


def format_diagnostic(diag: Diagnostic) -> str:
    """One-line human rendering: ``where: severity[CODE] message (hint)``."""
    where = ""
    if diag.file is not None:
        where = f"{diag.file}:"
        if diag.span is not None:
            where += f"{diag.span.line}:{diag.span.col}:"
        where += " "
    elif diag.span is not None:
        where = f"line {diag.span.line}, col {diag.span.col}: "
    text = f"{where}{diag.severity}[{diag.code}] {diag.message}"
    if diag.hint:
        text += f" (hint: {diag.hint})"
    return text


def format_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    return "\n".join(format_diagnostic(d) for d in diagnostics)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == "error" for d in diagnostics)


def record_diagnostics(
    diagnostics: list[Diagnostic], pass_name: str
) -> list[Diagnostic]:
    """Count a pass's findings in the obs registry; returns them unchanged."""
    counter(f"analysis.{pass_name}.runs").inc()
    if diagnostics:
        counter("analysis.diagnostics_emitted").inc(len(diagnostics))
        for diag in diagnostics:
            counter(f"analysis.diagnostics.{diag.severity}").inc()
    return diagnostics


class AnalysisError(ValueError):
    """Raised when strict execution refuses to run on error diagnostics."""

    def __init__(self, message: str, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = diagnostics
        details = format_diagnostics(
            [d for d in diagnostics if d.severity == "error"]
        )
        super().__init__(f"{message}\n{details}" if details else message)
