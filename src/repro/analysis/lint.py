"""``ast``-based lint enforcing this repository's own invariants.

Rules (all file/line spanned, suppressible with ``# lint: ignore[CODE]``
on the offending line):

* ``LINT301`` — no bare ``except:`` anywhere; swallowing
  ``KeyboardInterrupt``/``SystemExit`` has bitten long training runs.
* ``LINT302`` — no float64 array construction in PAS hot paths (modules
  under ``core/``): byte-plane segmentation and the float schemes assume
  4-byte float32 patterns, so a ``dtype=np.float64`` array that reaches
  storage silently breaks the segmentation guarantee.  Transient
  ``astype(np.float64)`` intermediates that are cast back are fine and
  not flagged.
* ``LINT303`` — arrays returned by chunkstore/retrieval APIs
  (``recreate_matrix``, ``recreate_snapshot``, ``get_snapshot_weights``)
  are shared with caches; mutating them in place corrupts cached state.
  Use the write-through APIs (copy, modify, re-commit) instead.
* ``LINT304`` — the instrumented core modules (chunkstore, cache,
  retrieval, archival, progressive) must keep at least one
  ``repro.obs`` reference (``trace_span`` / ``counter`` / ``histogram``
  / ``gauge``); losing it silently blinds ``dlv stats``.

Run as ``python -m repro.analysis.lint src/repro [--json]``; exits 1
when any error-severity finding remains.  CI runs exactly that.
"""

from __future__ import annotations

import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.diagnostics import (
    Diagnostic,
    Span,
    format_diagnostic,
    has_errors,
    pragma_ignored,
    record_diagnostics,
)

__all__ = ["lint_file", "lint_paths", "main"]

#: Modules whose float discipline PAS depends on.
_HOT_PATH_DIR = "core"

#: Core modules required to stay instrumented (see repro.obs docs).
_OBS_REQUIRED = {
    "chunkstore.py", "cache.py", "retrieval.py", "archival.py",
    "progressive.py",
}
_OBS_NAMES = {"trace_span", "counter", "histogram", "gauge"}

#: Retrieval-layer calls whose return arrays must not be mutated.
_RETRIEVAL_SOURCES = {
    "recreate_matrix", "recreate_snapshot", "get_snapshot_weights",
}

def _is_float64(node: ast.AST) -> bool:
    """Does this expression denote the float64 dtype?"""
    if isinstance(node, ast.Attribute) and node.attr == "float64":
        return True
    if isinstance(node, ast.Constant) and node.value in (
        "float64", "<f8", ">f8", "f8",
    ):
        return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, lines: list[str], hot: bool) -> None:
        self.path = path
        self.lines = lines
        self.hot = hot
        self.findings: list[Diagnostic] = []
        # name -> lineno of the retrieval call the name was assigned from,
        # per enclosing function scope.
        self._retrieved_stack: list[dict[str, int]] = [{}]

    def _report(
        self, code: str, node: ast.AST, message: str, hint: str,
        severity: str = "error",
    ) -> None:
        lineno = getattr(node, "lineno", 1)
        if pragma_ignored(self.lines, lineno, code):
            return
        self.findings.append(
            Diagnostic(
                code, severity, message,
                span=Span(line=lineno, col=getattr(node, "col_offset", 0) + 1),
                hint=hint, source="lint", file=self.path,
            )
        )

    # -- LINT301 -----------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "LINT301", node,
                "bare 'except:' catches KeyboardInterrupt and SystemExit",
                hint="catch Exception (or something narrower) instead",
            )
        self.generic_visit(node)

    # -- LINT302 -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.hot:
            for keyword in node.keywords:
                if keyword.arg == "dtype" and _is_float64(keyword.value):
                    self._report(
                        "LINT302", node,
                        "float64 array constructed in a PAS hot path",
                        hint="use np.float32 — segmentation assumes 4-byte "
                        "floats; annotate '# lint: ignore[LINT302]' if the "
                        "array provably never reaches storage",
                    )
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "float64"
            ):
                self._report(
                    "LINT302", node,
                    "np.float64 scalar/cast constructed in a PAS hot path",
                    hint="use np.float32, or keep the wide intermediate via "
                    ".astype and cast back",
                )
        self.generic_visit(node)

    # -- LINT303 -----------------------------------------------------------

    def _enter_scope(self, node) -> None:
        self._retrieved_stack.append({})
        self.generic_visit(node)
        self._retrieved_stack.pop()

    visit_FunctionDef = _enter_scope
    visit_AsyncFunctionDef = _enter_scope

    @staticmethod
    def _retrieval_call(value: ast.AST) -> bool:
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _RETRIEVAL_SOURCES
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        scope = self._retrieved_stack[-1]
        if self._retrieval_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    scope[target.id] = node.lineno
        for target in node.targets:
            self._check_mutation_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target(node.target)
        self.generic_visit(node)

    def _check_mutation_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Subscript):
            return
        base = target.value
        while isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Name)
            and base.id in self._retrieved_stack[-1]
        ):
            self._report(
                "LINT303", target,
                f"in-place mutation of {base.id!r}, an array returned by a "
                "retrieval API — cached state would be corrupted",
                hint="work on a .copy() and write back through commit APIs",
            )


def lint_file(path: str | Path) -> list[Diagnostic]:
    """Lint one Python file; unparsable files yield no findings."""
    path = Path(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return []
    lines = source.splitlines()
    hot = _HOT_PATH_DIR in path.parts
    visitor = _Visitor(str(path), lines, hot)
    visitor.visit(tree)
    if hot and path.name in _OBS_REQUIRED:
        names = {
            node.id for node in ast.walk(tree) if isinstance(node, ast.Name)
        } | {
            node.attr
            for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
        }
        if not names & _OBS_NAMES:
            visitor.findings.append(
                Diagnostic(
                    "LINT304", "error",
                    f"{path.name} is an instrumented core module but no "
                    "longer references repro.obs "
                    "(trace_span/counter/histogram/gauge)",
                    span=Span(),
                    hint="restore the instrumentation, or drop the module "
                    "from the obs coverage table deliberately",
                    source="lint", file=str(path),
                )
            )
    return visitor.findings


def lint_paths(paths: Iterable[str | Path]) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            files.append(entry)
    findings: list[Diagnostic] = []
    for file in files:
        findings.extend(lint_file(file))
    findings.sort(key=lambda d: (d.file or "", d.span.line if d.span else 0))
    return record_diagnostics(findings, "lint")


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repo-invariant linter for the repro codebase",
    )
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths)
    if args.json:
        json.dump(
            [d.to_dict() for d in findings], sys.stdout, indent=2
        )
        sys.stdout.write("\n")
    else:
        for diag in findings:
            print(format_diagnostic(diag))
        errors = sum(1 for d in findings if d.severity == "error")
        print(f"{len(findings)} finding(s), {errors} error(s)")
    return 1 if has_errors(findings) else 0


if __name__ == "__main__":
    sys.exit(main())
