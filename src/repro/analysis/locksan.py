"""Runtime lock sanitizer: instrumented ``threading`` primitives.

The static pass (:mod:`repro.analysis.conc`) proves what it can from
the AST; this module covers the rest at runtime.  When enabled it
replaces ``threading.Lock`` / ``threading.RLock`` /
``threading.Condition`` with instrumented wrappers that

* record, per thread, the stack of every lock currently held and where
  it was acquired;
* detect wait-for cycles *at acquire time* — a thread about to block on
  a lock whose owner chain leads back to itself raises
  :class:`DeadlockError` (code ``CONC407``, with both acquisition
  stacks) instead of hanging the process;
* feed hold-time / wait-time histograms and contention counters into
  ``repro.obs`` (``locksan.hold_seconds``, ``locksan.wait_seconds``,
  ``locksan.acquires``, ``locksan.contended``,
  ``locksan.deadlocks_detected``).

Enable with ``REPRO_LOCKSAN=1`` in the environment (picked up at
``import repro`` time — CI runs the serve/obs suites this way) or
programmatically::

    from repro.analysis import locksan
    locksan.enable()       # instruments locks created from now on
    ...
    locksan.disable()      # restores the real factories

Only locks created *while enabled* are instrumented; module-level
singletons created at import time stay raw, which also keeps the
sanitizer's own bookkeeping re-entrancy-safe.  Cycle detection uses a
bounded poll (50 ms slices) so a cycle formed *after* a thread parked
is still caught on the next slice.  ``Condition`` wait/notify is fully
supported: the sanitizer delegates ``_release_save`` /
``_acquire_restore`` / ``_is_owned`` so bookkeeping follows the lock
through ``wait()``.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Optional

__all__ = [
    "Condition",
    "DeadlockError",
    "Lock",
    "RLock",
    "disable",
    "enable",
    "enabled",
    "held_by_current_thread",
]

# Real factories, captured before anything can patch them.
_real_lock = threading.Lock
_real_rlock = threading.RLock
_real_condition = threading.Condition

#: Poll slice for blocking acquires: an undetected cycle parks a thread
#: for at most this long before the next wait-for-graph check.
_POLL_S = 0.05

# -- sanitizer state (always guarded by the raw _state_mu) ----------------

_state_mu = _real_lock()
_owners: dict[int, dict[int, int]] = {}  # lock id -> thread id -> depth
_held: dict[int, list["_Hold"]] = {}     # thread id -> holds, acquire order
_waiting: dict[int, "_SanLock"] = {}     # thread id -> lock being awaited
_thread_names: dict[int, str] = {}
_enabled = False

# Re-entrancy guard: metric observation can itself touch (instrumented)
# registry locks; bookkeeping must not recurse into itself.
_reentry = threading.local()


class _Hold:
    __slots__ = ("lock", "stack", "since")

    def __init__(self, lock: "_SanLock", stack: str, since: float) -> None:
        self.lock = lock
        self.stack = stack
        self.since = since


class DeadlockError(RuntimeError):
    """A blocking acquire would complete a wait-for cycle.

    Attributes:
        cycle: The threads/locks on the cycle, in wait-for order, as
            ``(thread_name, lock_repr)`` pairs ending at the raiser.
        stacks: ``{description: formatted acquisition stack}`` for every
            lock on the cycle — both sides of an ABBA inversion appear.
        diagnostic: The finding as a shared
            :class:`~repro.analysis.diagnostics.Diagnostic` (``CONC407``,
            source ``locksan``).
    """

    def __init__(
        self, message: str, cycle: list, stacks: dict[str, str]
    ) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.stacks = stacks
        from repro.analysis.diagnostics import Diagnostic

        self.diagnostic = Diagnostic(
            "CONC407", "error", message.splitlines()[0], span=None,
            hint="acquire these locks in one global order everywhere",
            source="locksan",
        )


_THIS_FILE = __file__


def _caller_site() -> str:
    """``file:line`` of the first frame outside this module."""
    for frame in reversed(traceback.extract_stack()):
        if frame.filename != _THIS_FILE:
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


def _acquire_stack() -> str:
    frames = [
        frame for frame in traceback.extract_stack()
        if frame.filename != _THIS_FILE
    ]
    return "".join(traceback.format_list(frames[-8:]))


def _thread_name(ident: int) -> str:
    """Best-effort thread name, with NO side effects.

    ``threading.current_thread()`` is off-limits here: called from a
    thread not yet in ``threading._active`` (e.g. ``_bootstrap_inner``
    sets the started Event *before* registering) it constructs a
    ``_DummyThread``, which sets another Event, which re-enters the
    sanitizer.
    """
    thread = getattr(threading, "_active", {}).get(ident)
    return thread.name if thread is not None else f"thread-{ident}"


def _observe(kind: str, value: Optional[float] = None) -> None:
    """Record one sanitizer metric, guarding against recursion."""
    if getattr(_reentry, "active", False):
        return
    _reentry.active = True
    try:
        from repro.obs.metrics import counter, histogram

        if value is None:
            counter(f"locksan.{kind}").inc()
        else:
            histogram(f"locksan.{kind}").observe(value)
    except Exception:
        pass  # metrics must never break the locks themselves
    finally:
        _reentry.active = False


def _find_cycle(me: int, lock: "_SanLock") -> Optional[list]:
    """Wait-for path from ``lock`` back to ``me``; call with _state_mu held.

    Follows owner -> awaited-lock edges.  Returns the path as
    ``[(thread_id, lock), ...]`` (empty list = self-deadlock on a
    non-reentrant lock) or None when no cycle exists.
    """
    path: list = []
    current = lock
    seen = {id(lock)}
    while True:
        owners = _owners.get(id(current))
        if not owners:
            return None
        if me in owners:
            return path
        advanced = False
        for owner in owners:
            awaited = _waiting.get(owner)
            if awaited is not None and id(awaited) not in seen:
                seen.add(id(awaited))
                path.append((owner, awaited))
                current = awaited
                advanced = True
                break
        if not advanced:
            return None


def _cycle_error(me: int, lock: "_SanLock", path: list) -> DeadlockError:
    """Build the would-deadlock report; call with _state_mu held."""
    my_name = _thread_names.get(me, f"thread-{me}")
    lines = [
        f"would deadlock: {my_name} blocking on {lock!r} completes a "
        "wait-for cycle"
    ]
    stacks: dict[str, str] = {}

    def describe(thread_id: int) -> None:
        name = _thread_names.get(thread_id, f"thread-{thread_id}")
        for hold in _held.get(thread_id, []):
            key = f"{name} holds {hold.lock!r}"
            lines.append(f"  {key}")
            stacks[key] = hold.stack

    describe(me)
    lines.append(f"  {my_name} wants {lock!r}")
    for thread_id, awaited in path:
        describe(thread_id)
        name = _thread_names.get(thread_id, f"thread-{thread_id}")
        lines.append(f"  {name} wants {awaited!r}")
    if not path:  # self-deadlock: non-reentrant lock re-acquired
        lines.append(
            f"  {my_name} already owns {lock!r} (non-reentrant re-acquire)"
        )
    for key, stack in stacks.items():
        lines.append(f"acquisition stack — {key}:")
        lines.append(stack.rstrip("\n"))
    return DeadlockError("\n".join(lines), [(me, lock)] + path, stacks)


class _SanLock:
    """Instrumented non-reentrant lock (``threading.Lock`` shape)."""

    _REENTRANT = False

    def __init__(self) -> None:
        self._inner = _real_lock()
        self._site = _caller_site()

    def __repr__(self) -> str:
        kind = "RLock" if self._REENTRANT else "Lock"
        return f"<locksan.{kind} created at {self._site}>"

    # -- bookkeeping ------------------------------------------------------

    def _note_acquired(self, me: int, stack: str) -> None:
        name = _thread_name(me)
        with _state_mu:
            _thread_names[me] = name
            depths = _owners.setdefault(id(self), {})
            depths[me] = depths.get(me, 0) + 1
            if depths[me] == 1:
                _held.setdefault(me, []).append(
                    _Hold(self, stack, time.monotonic())
                )

    def _note_released(self, me: int) -> None:
        held_for: Optional[float] = None
        with _state_mu:
            depths = _owners.get(id(self))
            if depths and me in depths:
                depths[me] -= 1
                if depths[me] <= 0:
                    del depths[me]
                    if not depths:
                        _owners.pop(id(self), None)
                    holds = _held.get(me, [])
                    for index in range(len(holds) - 1, -1, -1):
                        if holds[index].lock is self:
                            held_for = (
                                time.monotonic() - holds[index].since
                            )
                            del holds[index]
                            break
        if held_for is not None:
            _observe("hold_seconds", held_for)

    # -- lock protocol ----------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._REENTRANT:
            with _state_mu:
                owned = bool(_owners.get(id(self), {}).get(me))
            if owned:
                self._inner.acquire()  # re-entry: cannot block
                self._note_depth(me)
                return True
        if not blocking:
            got = self._inner.acquire(False)
            if got:
                self._note_acquired(me, _acquire_stack())
            else:
                _observe("contended")
            return got
        start = time.monotonic()
        # The cycle check and the waiting-registration are atomic under
        # _state_mu (so a thread that detects a cycle never appears as a
        # waiter to the other side), but metrics are observed outside it
        # — registry locks may themselves be instrumented.
        error: Optional[DeadlockError] = None
        with _state_mu:
            path = _find_cycle(me, self)
            if path is not None:
                error = _cycle_error(me, self, path)
            else:
                _waiting[me] = self
        if error is not None:
            _observe("deadlocks_detected")
            raise error
        contended = False
        try:
            while True:
                remaining = _POLL_S
                if timeout is not None and timeout >= 0:
                    remaining = min(
                        _POLL_S, timeout - (time.monotonic() - start)
                    )
                    if remaining <= 0:
                        _observe("contended")
                        return False
                got = self._inner.acquire(True, remaining)
                if got:
                    break
                contended = True
                with _state_mu:
                    path = _find_cycle(me, self)
                    if path is not None:
                        error = _cycle_error(me, self, path)
                if error is not None:
                    _observe("deadlocks_detected")
                    raise error
        finally:
            with _state_mu:
                _waiting.pop(me, None)
        self._note_acquired(me, _acquire_stack())
        _observe("acquires")
        waited = time.monotonic() - start
        _observe("wait_seconds", waited)
        if contended:
            _observe("contended")
        return True

    def _note_depth(self, me: int) -> None:
        with _state_mu:
            depths = _owners.setdefault(id(self), {})
            depths[me] = depths.get(me, 0) + 1

    def release(self) -> None:
        self._inner.release()
        self._note_released(threading.get_ident())

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


class _SanRLock(_SanLock):
    """Instrumented reentrant lock (``threading.RLock`` shape).

    Also implements the private Condition hooks so a real
    ``threading.Condition`` wrapped around it keeps the sanitizer's
    bookkeeping consistent across ``wait()``.
    """

    _REENTRANT = True

    def __init__(self) -> None:
        super().__init__()
        self._inner = _real_rlock()

    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self):
        state = self._inner._release_save()
        me = threading.get_ident()
        with _state_mu:
            depths = _owners.get(id(self))
            if depths and depths.pop(me, None) is not None:
                if not depths:
                    _owners.pop(id(self), None)
                holds = _held.get(me, [])
                for index in range(len(holds) - 1, -1, -1):
                    if holds[index].lock is self:
                        del holds[index]
                        break
        return state

    def _acquire_restore(self, state) -> None:
        # Re-acquire after a Condition wait(): woken by notify, so a
        # cycle through this edge would need the notifier itself to be
        # deadlocked — covered by its own acquire checks.
        self._inner._acquire_restore(state)
        self._note_acquired(threading.get_ident(), _acquire_stack())


def Lock() -> _SanLock:
    """Factory: instrumented ``threading.Lock``."""
    return _SanLock()


def RLock() -> _SanRLock:
    """Factory: instrumented ``threading.RLock``."""
    return _SanRLock()


def Condition(lock=None):
    """Factory: real ``threading.Condition`` over an instrumented RLock."""
    return _real_condition(lock if lock is not None else RLock())


def held_by_current_thread() -> list[str]:
    """Repr of every instrumented lock this thread holds (debug aid)."""
    with _state_mu:
        return [
            repr(hold.lock)
            for hold in _held.get(threading.get_ident(), [])
        ]


def enabled() -> bool:
    return _enabled


def enable() -> None:
    """Patch ``threading``'s factories; instruments locks created later."""
    global _enabled
    with _state_mu:
        if _enabled:
            return
        threading.Lock = Lock
        threading.RLock = RLock
        threading.Condition = Condition
        _enabled = True


def disable() -> None:
    """Restore the real factories (already-created wrappers keep working)."""
    global _enabled
    with _state_mu:
        if not _enabled:
            return
        threading.Lock = _real_lock
        threading.RLock = _real_rlock
        threading.Condition = _real_condition
        _enabled = False
