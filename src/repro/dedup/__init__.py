"""Cross-model page-level deduplication (the NeurStore-style tier).

Splits byte planes into fixed-size content-addressed pages, indexes
them by exact hash plus a band sketch so near-duplicate pages across
*unrelated* models resolve to one stored copy (with tiny XOR patch
deltas for near-misses), and plugs into archival as a ``kind="pages"``
storage-graph edge, into all three storage backends as a refcounted
``pages`` blob namespace, and into the serve tier through
content-hash-keyed :class:`~repro.serve.cache.PlaneCache` entries.
"""

from repro.dedup.index import DedupEstimator, SketchIndex
from repro.dedup.pages import (
    DEFAULT_PAGE_SIZE,
    SKETCH_BANDS,
    decode_plane,
    manifest_shas,
    page_digest,
    sketch_keys,
    split_pages,
    xor_bytes,
)
from repro.dedup.store import (
    DEFAULT_PATCH_MAX_RATIO,
    DEFAULT_PROBE_LIMIT,
    PageStore,
)

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_PATCH_MAX_RATIO",
    "DEFAULT_PROBE_LIMIT",
    "SKETCH_BANDS",
    "DedupEstimator",
    "PageStore",
    "SketchIndex",
    "decode_plane",
    "manifest_shas",
    "page_digest",
    "sketch_keys",
    "split_pages",
    "xor_bytes",
]
