"""Refcounted, similarity-indexed page store over a blob namespace.

:class:`PageStore` binds the dedup encoding of :mod:`repro.dedup.pages`
to a repository: page blobs land in the backend's ``pages`` blob
namespace, while manifests, refcounts, and sketch rows live in the
catalog so they commit atomically with the payload rewrite of an
archive run.

Write protocol (crash-safe on all three backends):

1. ``encode_plane`` puts page/patch blobs immediately — they are
   content-addressed and idempotent, so a crash strands at worst
   unreferenced blobs (swept by ``gc`` / fsck ``F403``) — and *buffers*
   every catalog mutation (refcount bumps, sketch rows).
2. The caller opens ``catalog.transaction()``, writes the payload and
   page manifests, and calls :meth:`flush` so refcounts and sketches
   commit in the same transaction.  On the SQLite/memory backends the
   blob writes join that transaction too; on local-fs the journal's
   archive intent covers the window.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Iterable, Optional

from repro.obs.metrics import counter

from repro.dedup.index import SketchIndex
from repro.dedup.pages import (
    DEFAULT_PAGE_SIZE,
    DEFAULT_PATCH_MAX_RATIO,
    DEFAULT_PROBE_LIMIT,
    decode_plane,
    manifest_shas,
    page_digest,
    sketch_keys,
    split_pages,
    xor_bytes,
)


class PageStore:
    """Page-granular dedup encoder/decoder bound to one repository.

    Args:
        blobs: The backend's ``pages`` blob store.
        catalog: The repository catalog (manifests, refcounts, sketches).
        page_size: Page granularity in bytes.
        patch_max_ratio: Near-miss acceptance threshold (see module docs).
        probe_limit: Sketch candidates tried per new page.
        level: zlib level used for cost estimates (stores compress
            internally at their own level).
    """

    def __init__(
        self,
        blobs,
        catalog,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        patch_max_ratio: float = DEFAULT_PATCH_MAX_RATIO,
        probe_limit: int = DEFAULT_PROBE_LIMIT,
        level: int = 6,
    ) -> None:
        self.blobs = blobs
        self.catalog = catalog
        self.page_size = page_size
        self.patch_max_ratio = patch_max_ratio
        self.probe_limit = probe_limit
        self.level = level
        self._pending_refs: Counter = Counter()
        self._pending_sketches: list[tuple[str, str]] = []
        self._run_index = SketchIndex()

    # -- encoding -----------------------------------------------------------

    def encode_plane(self, data: bytes) -> dict:
        """Page-encode one plane's bytes; returns the plane manifest.

        Blob writes happen immediately; catalog effects are buffered
        until :meth:`flush` (see module docs for the crash protocol).
        """
        pages_meta: list[list[Optional[str]]] = []
        for page in split_pages(data, self.page_size):
            sha = page_digest(page)
            counter("dedup.pages_referenced").inc()
            if sha in self.blobs:
                counter("dedup.pages_shared").inc()
                counter("dedup.bytes_saved").inc(self.blobs.stored_size(sha))
                self._pending_refs[sha] += 1
                pages_meta.append([sha, None])
                continue
            raw_c = len(zlib.compress(page, self.level))
            base_sha, patch = self._probe(page, raw_c)
            if base_sha is not None:
                patch_sha = self.blobs.put(patch)
                stored = self.blobs.stored_size(patch_sha)
                counter("dedup.pages_patched").inc()
                counter("dedup.bytes_stored").inc(stored)
                counter("dedup.bytes_saved").inc(max(0, raw_c - stored))
                self._pending_refs[base_sha] += 1
                self._pending_refs[patch_sha] += 1
                pages_meta.append([base_sha, patch_sha])
            else:
                self.blobs.put(page)
                counter("dedup.pages_stored").inc()
                counter("dedup.bytes_stored").inc(self.blobs.stored_size(sha))
                keys = sketch_keys(page)
                self._run_index.add(sha, keys)
                self._pending_sketches.extend((key, sha) for key in keys)
                self._pending_refs[sha] += 1
                pages_meta.append([sha, None])
        return {
            "psize": self.page_size,
            "nbytes": len(data),
            "sha": page_digest(data),
            "pages": pages_meta,
        }

    def _probe(
        self, page: bytes, raw_compressed: int
    ) -> tuple[Optional[str], Optional[bytes]]:
        """Find a base page this one patches well against, or ``(None, None)``.

        Candidates come from the persistent sketch index (previous
        archive runs) merged with the in-run overlay, ranked by band
        votes; the best acceptable patch wins.
        """
        keys = sketch_keys(page)
        if not keys:
            return None, None
        counter("dedup.index_probes").inc()
        votes = self._run_index.votes(keys)
        for cand_sha in self.catalog.sketch_candidates(keys, self.probe_limit):
            votes[cand_sha] += 1
        budget = max(0, int(self.patch_max_ratio * raw_compressed))
        best: tuple[int, str, bytes] | None = None
        for cand_sha, _ in votes.most_common(self.probe_limit):
            try:
                base = self.blobs.get(cand_sha)
            except (KeyError, ValueError):
                continue
            patch = xor_bytes(page, base)
            patch_c = len(zlib.compress(patch, self.level))
            if patch_c <= budget and (best is None or patch_c < best[0]):
                best = (patch_c, cand_sha, patch)
        if best is None:
            return None, None
        counter("dedup.index_hits").inc()
        return best[1], best[2]

    def flush(self) -> None:
        """Apply buffered refcounts and sketch rows to the catalog.

        The caller must hold ``catalog.transaction()`` so these rows
        commit atomically with the manifests that justify them.
        """
        for sha, delta in self._pending_refs.items():
            self.catalog.bump_page_ref(sha, delta)
        for key, sha in self._pending_sketches:
            self.catalog.add_page_sketch(key, sha)
        self._pending_refs.clear()
        self._pending_sketches.clear()

    def release_matrix(self, matrix_id: str) -> None:
        """Drop a matrix's page manifests and their reference counts.

        Runs inside the caller's catalog transaction; the blobs
        themselves are swept later by ``gc`` once unreferenced.
        """
        for manifest in self.catalog.get_page_manifests(matrix_id).values():
            for sha in manifest_shas(manifest):
                self.catalog.bump_page_ref(sha, -1)
        self.catalog.delete_page_manifests(matrix_id)

    # -- decoding -----------------------------------------------------------

    def decode_plane(self, manifest: dict, **kwargs) -> bytes:
        """Reassemble one plane from its manifest (see :func:`decode_plane`)."""
        return decode_plane(manifest, self.blobs.get, **kwargs)

    # -- maintenance --------------------------------------------------------

    def referenced_counts(self) -> Counter:
        """True per-sha reference counts recomputed from all manifests."""
        counts: Counter = Counter()
        for _matrix_id, _plane, manifest in self.catalog.all_page_manifests():
            for sha in manifest_shas(manifest):
                counts[sha] += 1
        return counts

    def rebuild_refcounts(self) -> dict[str, int]:
        """Overwrite the refcount table from the manifests (fsck repair)."""
        counts = self.referenced_counts()
        self.catalog.replace_page_refcounts(counts)
        return dict(counts)

    def sweep_orphans(self, referenced: Optional[Iterable[str]] = None) -> list[str]:
        """Delete page blobs (and their index rows) nothing references."""
        live = set(
            referenced if referenced is not None else self.referenced_counts()
        )
        swept = [sha for sha in list(self.blobs.addresses()) if sha not in live]
        for sha in swept:
            self.blobs.delete(sha)
        if swept:
            self.catalog.drop_page_refs(swept)
            self.catalog.delete_page_sketches(swept)
            counter("dedup.pages_swept").inc(len(swept))
        return swept

    def stats(self) -> dict:
        """Family-wide dedup accounting for ``dlv stats`` / ``dlv dedup``."""
        refcounts = self.catalog.page_refcounts()
        matrices: set[str] = set()
        logical = 0
        for matrix_id, _plane, manifest in self.catalog.all_page_manifests():
            matrices.add(matrix_id)
            logical += int(manifest["nbytes"])
        stored = self.blobs.total_size()
        referenced_stored = 0
        for sha, count in refcounts.items():
            try:
                referenced_stored += count * self.blobs.stored_size(sha)
            except KeyError:
                continue
        return {
            "page_matrices": len(matrices),
            "unique_pages": len(refcounts),
            "page_references": sum(refcounts.values()),
            "logical_bytes": logical,
            "stored_bytes": stored,
            "bytes_saved": max(0, referenced_stored - stored),
        }


__all__ = [
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_PATCH_MAX_RATIO",
    "DEFAULT_PROBE_LIMIT",
    "PageStore",
]
