"""Similarity index helpers and the archival-planning cost estimator.

The *persistent* sketch index lives in the catalog (``page_sketch``
rows, written atomically with refcounts inside the archive
transaction); this module holds the in-memory half:

* :class:`SketchIndex` — the per-archive-run overlay.  An archive run
  encodes many matrices before anything is committed, so pages stored
  earlier in the same run must be probe-able immediately, not only
  after the catalog flush.
* :class:`DedupEstimator` — a dry-run of the page store used by
  :meth:`~repro.dlv.repository.Repository.build_storage_graph` to price
  the ``kind="pages"`` root edge for each matrix *without* mutating any
  store.  It models both exact page hits and near-miss patches with the
  same sketch probe and acceptance rule as the real encoder, fed
  matrices in deterministic catalog order, so the priced edge tracks
  what an actual dedup archive would store.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Iterable

import numpy as np

from repro.core.segmentation import segment_planes

from repro.dedup.pages import (
    DEFAULT_PAGE_SIZE,
    DEFAULT_PATCH_MAX_RATIO,
    DEFAULT_PROBE_LIMIT,
    page_digest,
    sketch_keys,
    split_pages,
    xor_bytes,
)


class SketchIndex:
    """In-memory band-sketch index over base pages."""

    def __init__(self) -> None:
        self._buckets: dict[str, list[str]] = {}

    def add(self, sha: str, keys: Iterable[str]) -> None:
        for key in keys:
            self._buckets.setdefault(key, []).append(sha)

    def votes(self, keys: Iterable[str]) -> Counter:
        """Candidate base shas by number of matching bands."""
        votes: Counter = Counter()
        for key in keys:
            for sha in self._buckets.get(key, ()):
                votes[sha] += 1
        return votes


class DedupEstimator:
    """Estimate the incremental stored cost of page-encoding matrices.

    Seeded with the page addresses already present in the repository's
    page store, then fed matrices in the same deterministic order the
    archive build will use; each call charges only for pages not seen
    before (in the store or earlier in this estimate).
    """

    def __init__(
        self,
        known: Iterable[str] = (),
        page_size: int = DEFAULT_PAGE_SIZE,
        patch_max_ratio: float = DEFAULT_PATCH_MAX_RATIO,
        probe_limit: int = DEFAULT_PROBE_LIMIT,
        level: int = 6,
    ) -> None:
        self.page_size = page_size
        self.patch_max_ratio = patch_max_ratio
        self.probe_limit = probe_limit
        self.level = level
        self._known = set(known)
        self._index = SketchIndex()
        # Raw bytes of base pages first seen in this estimate — patch
        # candidates.  (Pages seeded via ``known`` have no bytes here, so
        # they only count for exact hits, matching what the encoder can
        # cheaply exact-match against a pre-existing store.)
        self._pages: dict[str, bytes] = {}

    def plane_cost(self, data: bytes) -> int:
        """Estimated new stored bytes to page-encode one plane."""
        cost = 0
        for page in split_pages(data, self.page_size):
            sha = page_digest(page)
            if sha in self._known:
                continue
            self._known.add(sha)
            raw_c = len(zlib.compress(page, self.level))
            keys = sketch_keys(page)
            budget = int(self.patch_max_ratio * raw_c)
            best = None
            for cand, _ in self._index.votes(keys).most_common(self.probe_limit):
                base = self._pages.get(cand)
                if base is None:
                    continue
                patch_c = len(zlib.compress(xor_bytes(page, base), self.level))
                if patch_c <= budget and (best is None or patch_c < best):
                    best = patch_c
            if best is not None:
                cost += best
                continue
            cost += raw_c
            self._index.add(sha, keys)
            self._pages[sha] = page
        return cost

    def matrix_cost(self, matrix: np.ndarray) -> int:
        """Estimated new stored bytes to page-encode a whole matrix."""
        return sum(self.plane_cost(plane) for plane in segment_planes(matrix))


__all__ = [
    "DEFAULT_PAGE_SIZE",
    "DedupEstimator",
    "SketchIndex",
    "page_digest",
    "sketch_keys",
    "split_pages",
]
