"""Page-granular encoding primitives for cross-model deduplication.

PAS delta-encodes along lineage only, so two *unrelated* models with
near-identical tensors store their byte planes twice.  The dedup tier
(NeurStore-style) splits every byte plane into fixed-size **pages**,
addresses each page by the SHA-256 of its content, and represents a
plane as a manifest of page references.  Pages shared across models —
the common case in fine-tuned families, where most high-order bytes
never move — are stored once; near-duplicate pages are stored as a
sparse XOR patch against an existing base page.

A plane manifest is JSON-friendly::

    {"psize": 1024, "nbytes": 7372, "sha": "<plane sha>",
     "pages": [["<base sha>", null], ["<base sha>", "<patch sha>"], ...]}

``pages[i]`` covers bytes ``[i*psize, (i+1)*psize)`` of the plane; a
``null`` patch means the base page *is* the content, otherwise the page
is ``xor_bytes(patch, base)``.  ``sha`` is the digest of the whole
assembled plane, which lets the replica tier keep serving exact planes
for page-encoded payloads.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Callable, Iterator, Optional

import numpy as np

#: Default page size in bytes.  Small enough that a sparse fine-tuning
#: perturbation leaves most pages of a plane untouched, large enough
#: that per-page overhead (hash + manifest entry) stays negligible.
DEFAULT_PAGE_SIZE = 1024

#: Bands per page for the similarity sketch (see :func:`sketch_keys`).
SKETCH_BANDS = 32

#: A near-miss patch is accepted only when its compressed size is at
#: most this fraction of the page's own compressed size.
DEFAULT_PATCH_MAX_RATIO = 0.5

#: How many sketch candidates (by band votes) to try patching against.
DEFAULT_PROBE_LIMIT = 4


def page_digest(page: bytes) -> str:
    """Content address of one page (SHA-256 of the raw bytes)."""
    return hashlib.sha256(page).hexdigest()


def split_pages(data: bytes, page_size: int = DEFAULT_PAGE_SIZE) -> list[bytes]:
    """Split plane bytes into fixed-size pages (last page may be short)."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    return [data[i:i + page_size] for i in range(0, len(data), page_size)]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR ``b`` into ``a``; the result has ``len(a)`` (``b`` is
    zero-padded or truncated to fit).

    The same function both *makes* a patch (``xor_bytes(page, base)``)
    and *applies* one (``xor_bytes(patch, base)``) because XOR is its
    own inverse and a patch records the page's true length.
    """
    out = np.frombuffer(a, dtype=np.uint8).copy()
    n = min(len(a), len(b))
    if n:
        out[:n] ^= np.frombuffer(b[:n], dtype=np.uint8)
    return out.tobytes()


def sketch_keys(page: bytes, bands: int = SKETCH_BANDS) -> list[str]:
    """Locality-sensitive sketch of a page: one key per contiguous band.

    The page is cut into ``bands`` equal slices and each slice hashed
    (CRC-32).  Two pages differing in a sparse subset of bytes still
    agree on most band keys, so probing the sketch index with a new
    page's keys surfaces near-duplicate base pages by vote count —
    exact-match banding, the degenerate (but cheap and deterministic)
    end of the LSH family.
    """
    if not page:
        return []
    width = max(1, -(-len(page) // bands))
    return [
        f"{i}:{zlib.crc32(page[off:off + width]):08x}"
        for i, off in enumerate(range(0, len(page), width))
    ]


def manifest_shas(manifest: dict) -> Iterator[str]:
    """Every blob address a plane manifest references (bases then patches)."""
    for base_sha, patch_sha in manifest["pages"]:
        yield base_sha
        if patch_sha:
            yield patch_sha


def decode_plane(
    manifest: dict,
    fetch: Callable[[str], bytes],
    *,
    missing_ok: bool = False,
    on_missing: Optional[Callable[[str, Exception], None]] = None,
) -> bytes:
    """Reassemble plane bytes from a page manifest.

    Args:
        manifest: A plane manifest (see module docs).
        fetch: ``sha -> bytes`` page reader (raising ``KeyError`` /
            ``ValueError`` for lost or corrupt pages).
        missing_ok: Zero-fill pages whose blobs cannot be read instead
            of raising — the degraded-retrieval analogue of a lost
            low-order plane.
        on_missing: Callback invoked per unreadable page with the sha
            that failed and the original exception.
    """
    psize = int(manifest["psize"])
    nbytes = int(manifest["nbytes"])
    out = bytearray(nbytes)
    pos = 0
    for base_sha, patch_sha in manifest["pages"]:
        want = min(psize, nbytes - pos)
        try:
            base = fetch(base_sha)
            page = xor_bytes(fetch(patch_sha), base) if patch_sha else base
        except (KeyError, ValueError) as exc:
            if not missing_ok:
                raise
            if on_missing is not None:
                on_missing(patch_sha or base_sha, exc)
            page = b"\x00" * want
        out[pos:pos + want] = page[:want]
        pos += psize
    return bytes(out)
