"""``dlv fsck``: deep integrity checking and repair for DLV repositories.

:func:`run_fsck` audits the three layers a repository can rot in:

* **blobs** — every chunk in the main and replica stores is re-hashed
  (content addresses make corruption self-evident);
* **catalog** — referential integrity across
  versions ↔ snapshots ↔ matrices ↔ payloads, lineage endpoints, parent
  chains of the payload storage graph (broken links, cycles);
* **filesystem** — pending journal intents, stale tmp files, orphan
  chunks and associated files.

The audit is backend-neutral: blob scanning, catalog checks, and orphan
detection go through the storage interface, while substrate-specific
debris (stale tmp files) and the quarantine mechanics are delegated to
the repository's :class:`~repro.core.storage.base.StorageBackend`.

With ``repair=True`` it additionally:

* quarantines corrupt blobs (named ``<sha>`` for main-store blobs,
  ``<sha>.replica`` for replica blobs — a ``.dlv/quarantine/`` directory
  on the loose-file backend, a table in the database backends),
* restores quarantined chunks from the replica tier when an intact copy
  exists (exact recovery),
* re-materializes payloads that reference lost chunks through degraded
  retrieval — the alternate storage-graph path: replica planes first,
  zero-filled low-order planes as a last resort — rewriting them as
  exact-from-now-on materialized payloads,
* deletes dangling catalog rows, orphan chunks/files, and stale tmps.

Finding codes
=============

=========  ========  ====================================================
code       severity  meaning
=========  ========  ====================================================
F101       error     corrupt chunk in the main store (re-hash failed)
F102       warning   corrupt chunk in the replica store
F103       error     payload references a chunk absent from the store
F201       error     snapshot row whose version does not exist
F202       error     matrix row whose snapshot does not exist
F203       error     payload row whose matrix does not exist
F204       error     matrix row with no payload (unrecreatable)
F205       error     payload parent chain broken (unknown parent)
F206       error     payload parent chain contains a cycle
F207       error     lineage edge referencing an unknown version
F301       warning   pending journal intent (unreplayed crash artifact)
F302       warning   stale tmp file in a chunk store
F303       info      orphan chunk (referenced by no payload)
F304       info      orphan associated file
F401       error     page manifest references a missing/corrupt page
F402       warning   page refcounts drift from the manifests
F403       info      orphan page (referenced by no manifest)
=========  ========  ====================================================

Dedup-tier repairs (F4xx): corrupt page blobs are quarantined (kind
``pages``); payloads whose pages are lost re-materialize through
degraded retrieval exactly like F103 — the manifest's whole-plane
replica mirror makes the high-order planes exact; refcount drift is
rebuilt from the manifests; orphan pages are swept with their index
rows.

Exit codes of the CLI command: ``0`` — clean, or every error-severity
finding was repaired; ``1`` — error findings remain (run with
``--repair``, or the damage is unrecoverable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.storage_graph import ROOT
from repro.core.segmentation import segment_planes
from repro.obs.metrics import counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dlv.repository import Repository

#: Severity per finding code (also the authoritative code list).
FSCK_CODES: dict[str, tuple[str, str]] = {
    "F101": ("error", "corrupt chunk in main store"),
    "F102": ("warning", "corrupt chunk in replica store"),
    "F103": ("error", "payload references missing chunk"),
    "F201": ("error", "snapshot without version"),
    "F202": ("error", "matrix without snapshot"),
    "F203": ("error", "payload without matrix"),
    "F204": ("error", "matrix without payload"),
    "F205": ("error", "payload parent chain broken"),
    "F206": ("error", "payload parent chain cycle"),
    "F207": ("error", "lineage edge to unknown version"),
    "F301": ("warning", "pending journal intent"),
    "F302": ("warning", "stale tmp file"),
    "F303": ("info", "orphan chunk"),
    "F304": ("info", "orphan associated file"),
    "F401": ("error", "page manifest references missing page"),
    "F402": ("warning", "page refcount drift"),
    "F403": ("info", "orphan page"),
}


@dataclass
class Finding:
    """One fsck observation, optionally annotated with its repair."""

    code: str
    message: str
    sha: Optional[str] = None
    matrix_id: Optional[str] = None
    repaired: bool = False
    repair: Optional[str] = None

    @property
    def severity(self) -> str:
        return FSCK_CODES[self.code][0]

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "repaired": self.repaired,
        }
        if self.sha:
            out["sha"] = self.sha
        if self.matrix_id:
            out["matrix_id"] = self.matrix_id
        if self.repair:
            out["repair"] = self.repair
        return out


@dataclass
class FsckReport:
    """Everything one fsck run saw and did."""

    findings: list[Finding] = field(default_factory=list)
    chunks_checked: int = 0
    replica_checked: int = 0
    payloads_checked: int = 0
    pages_checked: int = 0
    repair: bool = False

    @property
    def clean(self) -> bool:
        """No error-severity finding is left unrepaired."""
        return not any(
            f.severity == "error" and not f.repaired for f in self.findings
        )

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "repair": self.repair,
            "chunks_checked": self.chunks_checked,
            "replica_checked": self.replica_checked,
            "payloads_checked": self.payloads_checked,
            "pages_checked": self.pages_checked,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                severity: sum(
                    1 for f in self.findings if f.severity == severity
                )
                for severity in ("error", "warning", "info")
            },
        }


def run_fsck(repo: "Repository", repair: bool = False) -> FsckReport:
    """Audit (and optionally repair) one repository; see module docs."""
    report = FsckReport(repair=repair)
    counter("fsck.runs").inc()

    corrupt_main, report.chunks_checked = _scan_store(
        repo.store, "F101", report
    )
    corrupt_replica, report.replica_checked = _scan_store(
        repo.replica, "F102", report
    )

    if repair:
        for sha in corrupt_main:
            repo.backend.quarantine_blob("chunks", sha)
        for sha in corrupt_replica:
            repo.backend.quarantine_blob("replica", sha)
            _annotate(report, sha, "quarantined", codes=("F102",))

    _check_catalog(repo, report, repair)
    missing = _check_payload_chunks(repo, report, corrupt_main, repair)
    if repair:
        if missing:
            _repair_payloads(repo, report, missing)
        referenced = {m for shas in missing.values() for m in shas}
        for sha in corrupt_main - referenced:
            # Corrupt blob no payload references: quarantining it IS the fix.
            _annotate(report, sha, "quarantined (unreferenced)", codes=("F101",))
    _check_pages(repo, report, repair)
    _check_journal(repo, report)
    _check_litter(repo, report, repair)

    for finding in report.findings:
        counter(f"fsck.findings.{finding.code}").inc()
        if finding.repaired:
            counter("fsck.repairs").inc()
    counter("fsck.findings").inc(len(report.findings))
    return report


# -- blob scan --------------------------------------------------------------------


def _scan_store(store, code: str, report: FsckReport) -> tuple[set[str], int]:
    """Re-hash every blob in one store; returns (corrupt addresses, scanned)."""
    corrupt: set[str] = set()
    scanned = 0
    for sha in list(store.addresses()):
        scanned += 1
        if not store.verify_blob(sha):
            corrupt.add(sha)
            report.findings.append(
                Finding(code, f"chunk {sha[:12]} fails re-hash", sha=sha)
            )
    return corrupt, scanned


# -- catalog referential integrity -------------------------------------------------


def _check_catalog(repo, report: FsckReport, repair: bool) -> None:
    cat = repo.catalog
    version_ids = {
        row["id"]
        for row in cat._conn.execute("SELECT id FROM model_version").fetchall()
    }
    snapshot_keys = {
        (row["version_id"], row["idx"])
        for row in cat._conn.execute(
            "SELECT version_id, idx FROM snapshot"
        ).fetchall()
    }
    matrices = cat.get_matrices()
    matrix_ids = {row["matrix_id"] for row in matrices}
    payloads = cat.all_payloads()
    payload_ids = {p["matrix_id"] for p in payloads}
    parent_of = {p["matrix_id"]: p["parent"] for p in payloads}

    for version_id, idx in sorted(snapshot_keys):
        if version_id not in version_ids:
            f = Finding(
                "F201", f"snapshot v{version_id}/s{idx} has no version"
            )
            if repair:
                cat._conn.execute(
                    "DELETE FROM snapshot WHERE version_id = ? AND idx = ?",
                    (version_id, idx),
                )
                cat._maybe_commit()
                f.repaired, f.repair = True, "deleted dangling snapshot row"
            report.findings.append(f)

    for row in matrices:
        if (row["version_id"], row["snapshot_idx"]) not in snapshot_keys:
            f = Finding(
                "F202",
                f"matrix {row['matrix_id']} has no snapshot",
                matrix_id=row["matrix_id"],
            )
            if repair:
                cat._conn.execute(
                    "DELETE FROM matrix WHERE matrix_id = ?",
                    (row["matrix_id"],),
                )
                cat._conn.execute(
                    "DELETE FROM payload WHERE matrix_id = ?",
                    (row["matrix_id"],),
                )
                cat._maybe_commit()
                f.repaired, f.repair = True, "deleted dangling matrix row"
            report.findings.append(f)
        elif row["matrix_id"] not in payload_ids:
            report.findings.append(
                Finding(
                    "F204",
                    f"matrix {row['matrix_id']} has no payload",
                    matrix_id=row["matrix_id"],
                )
            )

    for payload in payloads:
        if payload["matrix_id"] not in matrix_ids:
            f = Finding(
                "F203",
                f"payload {payload['matrix_id']} has no matrix row",
                matrix_id=payload["matrix_id"],
            )
            if repair:
                cat._conn.execute(
                    "DELETE FROM payload WHERE matrix_id = ?",
                    (payload["matrix_id"],),
                )
                cat._maybe_commit()
                f.repaired, f.repair = True, "deleted dangling payload row"
            report.findings.append(f)

    # Parent chains: every payload must reach ROOT without cycles.
    for payload in payloads:
        seen = set()
        current = payload["matrix_id"]
        while current != ROOT:
            if current in seen:
                report.findings.append(
                    Finding(
                        "F206",
                        f"payload chain of {payload['matrix_id']} cycles "
                        f"at {current}",
                        matrix_id=payload["matrix_id"],
                    )
                )
                break
            seen.add(current)
            if current not in parent_of:
                report.findings.append(
                    Finding(
                        "F205",
                        f"payload chain of {payload['matrix_id']} breaks "
                        f"at unknown parent {current}",
                        matrix_id=payload["matrix_id"],
                    )
                )
                break
            current = parent_of[current]

    for base, derived, _message in cat.all_lineage():
        for endpoint in (base, derived):
            if endpoint not in version_ids:
                f = Finding(
                    "F207",
                    f"lineage edge {base}->{derived} references unknown "
                    f"version {endpoint}",
                )
                if repair:
                    cat._conn.execute(
                        "DELETE FROM lineage WHERE base = ? AND derived = ?",
                        (base, derived),
                    )
                    cat._maybe_commit()
                    f.repaired, f.repair = True, "deleted dangling lineage edge"
                report.findings.append(f)


# -- payload reachability & chunk presence ------------------------------------------


def _check_payload_chunks(
    repo, report: FsckReport, corrupt_main: set[str], repair: bool
) -> dict[str, list[str]]:
    """Find payloads whose chunks are missing or corrupt.

    Returns ``matrix_id -> [bad shas]`` for the repair pass.
    """
    affected: dict[str, list[str]] = {}
    for payload in repo.catalog.all_payloads():
        report.payloads_checked += 1
        bad = []
        for sha in payload["chunks"]:
            if sha in corrupt_main:
                bad.append(sha)
            elif sha not in repo.store:
                bad.append(sha)
                report.findings.append(
                    Finding(
                        "F103",
                        f"payload {payload['matrix_id']} references missing "
                        f"chunk {sha[:12]}",
                        sha=sha,
                        matrix_id=payload["matrix_id"],
                    )
                )
        if bad:
            affected[payload["matrix_id"]] = bad
    return affected


def _repair_payloads(
    repo, report: FsckReport, affected: dict[str, list[str]]
) -> None:
    """Re-land lost chunks: replica restore first, else re-materialize.

    Exact path: an intact replica copy of the lost chunk is copied back
    into the main store.  Degraded path: the matrix is recreated through
    degraded retrieval (replica planes + zero-filled low-order planes)
    and rewritten as a materialized payload — approximate values, but
    the snapshot is readable again and every descendant's delta chain
    stays intact.
    """
    still_lost: dict[str, list[str]] = {}
    for matrix_id, shas in affected.items():
        remaining = []
        for sha in shas:
            if sha in repo.store:
                continue  # restored while handling an earlier payload
            if sha in repo.replica and repo.replica.verify_blob(sha):
                repo.store.put(repo.replica.get(sha))
                counter("fsck.replica_restores").inc()
                _annotate(report, sha, "restored from replica")
            else:
                remaining.append(sha)
        if remaining:
            still_lost[matrix_id] = remaining

    if not still_lost:
        return

    archive = repo._plan_archive()
    with repo.catalog.transaction():
        for matrix_id in still_lost:
            try:
                value = archive.recreate_matrix(matrix_id)
            except (KeyError, ValueError) as exc:
                _annotate(
                    report,
                    still_lost[matrix_id][0],
                    f"unrecoverable: {exc}",
                    repaired=False,
                )
                continue
            chunks = repo._put_planes(segment_planes(value))
            repo.catalog.set_payload(matrix_id, ROOT, "materialize", chunks)
            counter("fsck.rematerialized").inc()
            for sha in still_lost[matrix_id]:
                _annotate(
                    report, sha, f"re-materialized {matrix_id} (degraded path)"
                )
    repo.gc()


def _annotate(
    report: FsckReport,
    sha: str,
    action: str,
    repaired: bool = True,
    codes: tuple[str, ...] = ("F101", "F103"),
) -> None:
    """Mark every finding about ``sha`` with its repair outcome."""
    for finding in report.findings:
        if finding.sha == sha and finding.code in codes:
            finding.repaired = repaired
            finding.repair = action


# -- dedup page tier ------------------------------------------------------------------


def _check_pages(repo, report: FsckReport, repair: bool) -> None:
    """F401-F403: audit the dedup page tier (see module docs)."""
    from repro.dedup.pages import manifest_shas

    corrupt: set[str] = set()
    for sha in list(repo.pages.addresses()):
        report.pages_checked += 1
        if not repo.pages.verify_blob(sha):
            corrupt.add(sha)

    # F401: manifests whose pages are missing or fail re-hash.
    affected: dict[str, list[str]] = {}
    for matrix_id, plane, man in repo.catalog.all_page_manifests():
        for sha in sorted(set(manifest_shas(man))):
            if sha in corrupt or sha not in repo.pages:
                affected.setdefault(matrix_id, []).append(sha)
                report.findings.append(
                    Finding(
                        "F401",
                        f"payload {matrix_id} plane {plane} references "
                        f"lost page {sha[:12]}",
                        sha=sha,
                        matrix_id=matrix_id,
                    )
                )

    if repair:
        for sha in corrupt:
            repo.backend.quarantine_blob("pages", sha)
        if affected:
            _repair_paged_payloads(repo, report, affected)

    # F402: stored refcounts disagree with what the manifests reference.
    pstore = repo.page_store()
    true_counts = pstore.referenced_counts()
    stored_counts = repo.catalog.page_refcounts()
    drift = sum(
        1
        for sha in set(true_counts) | set(stored_counts)
        if true_counts.get(sha, 0) != stored_counts.get(sha, 0)
    )
    if drift:
        f = Finding(
            "F402", f"page refcounts drift from manifests ({drift} addresses)"
        )
        if repair:
            pstore.rebuild_refcounts()
            f.repaired, f.repair = True, "rebuilt refcounts from manifests"
        report.findings.append(f)

    # F403: page blobs no manifest references.
    live = set(true_counts)
    orphans = sorted(
        sha for sha in list(repo.pages.addresses()) if sha not in live
    )
    swept: set[str] = set()
    if repair and orphans:
        swept = set(pstore.sweep_orphans(referenced=live))
    for sha in orphans:
        report.findings.append(
            Finding(
                "F403",
                f"orphan page {sha[:12]}",
                sha=sha,
                repaired=sha in swept,
                repair="swept" if sha in swept else None,
            )
        )


def _repair_paged_payloads(
    repo, report: FsckReport, affected: dict[str, list[str]]
) -> None:
    """Re-materialize payloads whose dedup pages are lost.

    Degraded retrieval falls back to the whole-plane replica mirror
    (exact for the replicated high-order planes) and zero-fills what
    nothing else can recover; the payload is rewritten as materialized
    and its page manifests released.
    """
    archive = repo._plan_archive()
    pstore = repo.page_store()
    with repo.catalog.transaction():
        for matrix_id in affected:
            try:
                value = archive.recreate_matrix(matrix_id)
            except (KeyError, ValueError) as exc:
                _annotate(
                    report,
                    affected[matrix_id][0],
                    f"unrecoverable: {exc}",
                    repaired=False,
                    codes=("F401",),
                )
                continue
            chunks = repo._put_planes(segment_planes(value))
            pstore.release_matrix(matrix_id)
            repo.catalog.set_payload(matrix_id, ROOT, "materialize", chunks)
            counter("fsck.rematerialized").inc()
            for sha in affected[matrix_id]:
                _annotate(
                    report,
                    sha,
                    f"re-materialized {matrix_id} (degraded path)",
                    codes=("F401",),
                )
    repo.gc()


# -- journal & filesystem litter -----------------------------------------------------


def _check_journal(repo, report: FsckReport) -> None:
    # Repository.open replays the journal, so anything still pending on a
    # live handle appeared after open — report it; replay happens on the
    # next open (deleting it here would race an in-flight commit).
    for entry in repo.journal.pending():
        report.findings.append(
            Finding(
                "F301",
                f"pending journal intent {entry.txid[:12]} "
                f"(op={entry.op or 'torn'})",
            )
        )


def _check_litter(repo, report: FsckReport, repair: bool) -> None:
    # Substrate-specific debris is the backend's to know about: loose-file
    # repos report stale tmp files (F302), database repos have none.
    for raw in repo.backend.litter(repair):
        report.findings.append(
            Finding(
                raw["code"],
                raw["message"],
                repaired=raw.get("repaired", False),
                repair=raw.get("repair"),
            )
        )

    referenced: set[str] = set()
    for payload in repo.catalog.all_payloads():
        referenced.update(payload["chunks"])
    for sha in list(repo.store.addresses()):
        if sha not in referenced:
            f = Finding("F303", f"orphan chunk {sha[:12]}", sha=sha)
            if repair:
                repo.store.delete(sha)
                repo.replica.delete(sha)
                f.repaired, f.repair = True, "deleted"
            report.findings.append(f)

    referenced_files = repo.catalog.all_file_shas()
    for sha in sorted(repo.backend.stored_file_shas()):
        if sha not in referenced_files:
            f = Finding("F304", f"orphan associated file {sha[:12]}")
            if repair:
                repo.backend.delete_file(sha)
                f.repaired, f.repair = True, "deleted"
            report.findings.append(f)
