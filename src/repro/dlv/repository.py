"""The DLV repository: commit, explore, recreate, and archive models.

A repository lives on a pluggable :class:`~repro.core.storage.base.
StorageBackend` addressed by URL — ``file://<dir>`` (the original loose
``.dlv/`` layout), ``sqlite://<db>`` (the whole repo as one WAL-mode
database file), or ``mem://<name>`` (in-process).  The loose-file
layout, for reference:

.. code-block:: text

    <repo>/.dlv/
        catalog.db      relational catalog (repro.dlv.catalog)
        chunks/         PAS byte-plane chunk store
        replica/        redundant copies of high-order planes (recovery tier)
        journal/        write-ahead intent files for in-flight mutations
        quarantine/     corrupt blobs set aside by `dlv fsck --repair`
        files/          associated files, content addressed
        stage.json      files staged by `dlv add` for the next commit

The sqlite backend holds the same five kinds of state as tables of one
database; which backend a repo uses is auto-detected on open (and
recorded in its config), so ``Repository.open(path)`` keeps working on
every pre-existing repository.

Weights are written at commit time as materialized byte-plane payloads;
``archive`` later re-optimizes the whole repository into a delta-encoded
storage plan (Problem 1) and rewrites the payload table accordingly —
queries are unaffected because retrieval always goes through the payload
manifest.

Mutations are crash-safe (see :mod:`repro.dlv.journal`): chunks land
first under a journaled intent, catalog rows apply in one sqlite
transaction, and :meth:`Repository.open` replays any pending intent —
rolling back commits that never reached the catalog and sweeping the
orphaned chunks they left behind.  The high-order byte planes of every
payload are mirrored into a small replica store, which is what lets
retrieval and ``dlv fsck --repair`` survive a corrupt blob.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import warnings
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.archival import alpha_constraints, solve
from repro.core.delta import delta_sub_mismatched
from repro.core.float_schemes import get_scheme
from repro.core.retrieval import PlanArchive
from repro.core.segmentation import segment_planes
from repro.core.storage.base import ARCHIVES_PREFIX, STAGE_DOC, StorageBackend
from repro.core.storage.registry import resolve_backend
from repro.core.storage_graph import (
    ROOT,
    MatrixRef,
    MatrixStorageGraph,
    RetrievalScheme,
    StorageEdge,
)
from repro.dedup import DEFAULT_PAGE_SIZE, DedupEstimator, PageStore
from repro.dedup.pages import manifest_shas
from repro.dlv.objects import ModelVersion, Snapshot
from repro.dnn.network import Network
from repro.dnn.training import TrainResult
from repro.obs.cost import cost_context, get_slowlog
from repro.obs.metrics import counter
from repro.obs.tracing import trace_span

VersionLike = Union[int, str, ModelVersion]

#: How many high-order byte planes of every payload are mirrored into the
#: replica store.  Planes 0-1 (sign/exponent and high mantissa) carry most
#: of the information yet compress best, so the mirror is cheap — and it
#: is the "alternate path" degraded retrieval and fsck repair fall back to.
REPLICA_PLANES = 2


def _now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def _compressed_planes_size(matrix: np.ndarray, level: int = 6) -> int:
    import zlib

    return sum(len(zlib.compress(p, level)) for p in segment_planes(matrix))


class Repository:
    """A local DLV repository (the object behind the ``dlv`` tool).

    Construct with a storage URL, a path (backend auto-detected), or an
    already-open :class:`~repro.core.storage.base.StorageBackend`.  The
    familiar attributes — ``store``, ``replica``, ``pages``,
    ``catalog``, ``journal`` — are views onto the backend; ``dlv_dir`` /
    ``files_dir`` exist only on the loose-file backend (``None``
    elsewhere).
    """

    DLV_DIR = ".dlv"

    def __init__(self, source: "str | Path | StorageBackend") -> None:
        if isinstance(source, StorageBackend):
            self.backend = source
        else:
            self.backend = resolve_backend(str(source))
        # Re-openable location token: repo dir (local-fs), db file
        # (sqlite), or mem:// URL (memory).
        self.root = self.backend.root
        self.dlv_dir = getattr(self.backend, "dlv_dir", None)
        self.files_dir = getattr(self.backend, "files_dir", None)
        self.catalog = self.backend.catalog
        self.store = self.backend.chunks
        self.replica = self.backend.replica
        self.pages = self.backend.pages
        self.journal = self.backend.journal
        self.last_replay = self._replay_journal()

    @property
    def url(self) -> str:
        """Canonical storage URL of this repository."""
        return self.backend.url

    # -- journal replay -------------------------------------------------------

    def _replay_journal(self) -> dict:
        """Resolve every pending write-ahead intent (crash recovery).

        Returns a small report; also counts outcomes into ``repro.obs``
        (``journal.*`` counters) so recoveries show up in ``dlv stats``.
        """
        report = {
            "retired": 0,
            "rolled_back": 0,
            "swept_chunks": 0,
            "swept_files": 0,
        }
        entries = self.journal.pending()
        if not entries:
            return report
        for entry in entries:
            if entry.data is None or entry.op is None:
                # Torn intent write: the journal lands before any data it
                # describes, so nothing else can exist — discard it.
                counter("journal.torn_discarded").inc()
            elif entry.op == "commit":
                if self.catalog.has_commit_marker(entry.txid):
                    # Died between catalog durability and journal cleanup.
                    counter("journal.completed").inc()
                else:
                    chunks, files = self._sweep_listed(
                        entry.data.get("chunks", []),
                        entry.data.get("files", []),
                    )
                    report["rolled_back"] += 1
                    report["swept_chunks"] += chunks
                    report["swept_files"] += files
                    counter("journal.rollbacks").inc()
            else:
                # archive / convert / prune: their catalog transaction is
                # atomic on its own, so either generation of payloads won;
                # sweep whichever generation of chunks lost.
                report["swept_chunks"] += self.gc()
                counter("journal.sweeps").inc()
            self.journal.retire(entry)
            report["retired"] += 1
        counter("journal.replays").inc()
        return report

    def _sweep_listed(
        self, chunk_shas: Sequence[str], file_shas: Sequence[str]
    ) -> tuple[int, int]:
        """Remove listed chunks/files unless the catalog references them."""
        referenced: set[str] = set()
        for payload in self.catalog.all_payloads():
            referenced.update(payload["chunks"])
        swept_chunks = 0
        for sha in chunk_shas:
            if sha not in referenced:
                if self.store.delete(sha):
                    swept_chunks += 1
                self.replica.delete(sha)
        referenced_files = self.catalog.all_file_shas()
        swept_files = 0
        for sha in file_shas:
            if sha not in referenced_files:
                if self.backend.delete_file(sha):
                    swept_files += 1
        return swept_chunks, swept_files

    # -- lifecycle ------------------------------------------------------------

    @staticmethod
    def _coerce_target(target: "str | Path", action: str) -> str:
        if isinstance(target, Path):
            warnings.warn(
                f"Repository.{action}(Path) is deprecated; pass a storage "
                "URL or a path string (e.g. 'sqlite://repo.db')",
                DeprecationWarning,
                stacklevel=3,
            )
        return str(target)

    @classmethod
    def init(
        cls, target: "str | Path", backend: Optional[str] = None
    ) -> "Repository":
        """``dlv init``: create a repository at a URL or path.

        ``backend`` picks the substrate for bare paths ("local-fs",
        "sqlite", "memory"); URLs carry their own scheme.  A sqlite repo
        initialised at a bare path lands its database at
        ``<path>/.dlv/repo.db`` so the directory stays the repository
        unit.
        """
        target = cls._coerce_target(target, "init")
        return cls(resolve_backend(target, create=True, backend=backend))

    @classmethod
    def open(cls, target: "str | Path") -> "Repository":
        """Open an existing repository by URL or path (raises when absent)."""
        target = cls._coerce_target(target, "open")
        return cls(resolve_backend(target))

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "Repository":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- staging (`dlv add`) -----------------------------------------------------

    def add_files(self, paths: Sequence[str | Path]) -> list[str]:
        """``dlv add``: stage files to associate with the next commit."""
        staged = self.staged_files()
        for path in paths:
            path = Path(path)
            if not path.exists():
                raise FileNotFoundError(path)
            staged.append(str(path))
        unique = sorted(set(staged))
        self.backend.write_doc(
            STAGE_DOC, json.dumps(unique, indent=2).encode()
        )
        return unique

    def staged_files(self) -> list[str]:
        raw = self.backend.read_doc(STAGE_DOC)
        return json.loads(raw) if raw else []

    def _store_file_blob(self, sha: str, data: bytes) -> None:
        """Land one associated file durably under its digest."""
        self.backend.put_file(sha, data)

    def get_file(self, sha: str) -> bytes:
        """Read an associated file's content by digest."""
        return self.backend.get_file(sha)

    # -- committing ----------------------------------------------------------------

    def commit(
        self,
        network: Network,
        name: str,
        message: str = "",
        parent: Optional[VersionLike] = None,
        train_result: Optional[TrainResult] = None,
        hyperparams: Optional[dict] = None,
        metadata: Optional[dict] = None,
        float_scheme: str = "float32",
        include_staged: bool = True,
    ) -> ModelVersion:
        """``dlv commit``: record a model version.

        Args:
            network: Built network whose current weights become the latest
                snapshot.
            name: Model version name (required by the data model).
            message: Commit message.
            parent: Base version for the lineage relation (fine-tuning or
                architectural derivation).
            train_result: Optional training artifacts — its snapshots and
                log are recorded (and the network's own weights are *not*
                separately snapshotted when present, since the final
                snapshot of the result equals them).
            hyperparams: Optimization hyperparameters to record in ``M``.
            metadata: Extra metadata key/values.
            float_scheme: PAS float representation for the stored
                snapshots.  Lossy schemes are applied before segmentation —
                PAS archives the lossy values, as the paper's storage /
                accuracy tradeoff intends.
            include_staged: Associate and clear `dlv add`-staged files.

        Returns:
            The committed :class:`ModelVersion`.
        """
        if not network.is_built:
            raise RuntimeError("commit requires a built network")

        # Phase 0 — validate everything that can fail *before* any write.
        base = self.resolve(parent) if parent is not None else None
        staged_paths: list[Path] = []
        if include_staged:
            for path in self.staged_files():
                p = Path(path)
                if not p.exists():
                    raise FileNotFoundError(
                        f"staged file vanished before commit: {p}"
                    )
                staged_paths.append(p)

        # Phase 1 — encode all snapshots into byte planes in memory, so
        # the journal can list every content address before anything lands.
        scheme = get_scheme(float_scheme)
        snapshots = (
            train_result.snapshots
            if train_result is not None
            else [(0, network.get_weights())]
        )
        encoded: list[tuple[int, int, list[tuple]]] = []
        chunk_shas: set[str] = set()
        for index, (iteration, weights) in enumerate(snapshots):
            entries = []
            for layer, params in weights.items():
                for key, matrix in params.items():
                    stored = (
                        matrix if scheme.lossless else scheme.roundtrip(matrix)
                    )
                    planes = segment_planes(stored)
                    plane_shas = [
                        hashlib.sha256(p).hexdigest() for p in planes
                    ]
                    chunk_shas.update(plane_shas)
                    entries.append(
                        (layer, key, stored.shape, stored.nbytes,
                         planes, plane_shas)
                    )
            encoded.append((index, iteration, entries))
        file_blobs = []
        for p in staged_paths:
            data = p.read_bytes()
            file_blobs.append((p.name, hashlib.sha256(data).hexdigest(), data))

        # Phase 2 — journal the intent, then land every content-addressed
        # artifact.  A crash from here on leaves only orphans the journal
        # replay knows how to sweep.
        intent = self.journal.record(
            "commit",
            name=name,
            created_at=_now(),
            chunks=sorted(chunk_shas),
            files=sorted({sha for _, sha, _ in file_blobs}),
        )
        for _index, _iteration, entries in encoded:
            for _layer, _key, _shape, _nbytes, planes, _shas in entries:
                self._put_planes(planes)
        for _name, sha, data in file_blobs:
            self._store_file_blob(sha, data)

        # Phase 3 — all catalog rows in one transaction, closed by the
        # commit marker that tells journal replay this commit completed.
        with self.catalog.transaction():
            version_id = self.catalog.insert_version(
                name, message, _now(), network.spec()
            )
            meta: dict = {"param_count": network.param_count()}
            if hyperparams:
                meta["hyperparams"] = hyperparams
            if metadata:
                meta.update(metadata)
            if train_result is not None:
                meta["final_accuracy"] = train_result.final_accuracy
                meta["final_loss"] = train_result.final_loss
                self.catalog.add_training_log(version_id, train_result.log)
            self.catalog.set_metadata(version_id, meta)
            if base is not None:
                self.catalog.add_lineage(base.id, version_id, message)
            for index, iteration, entries in encoded:
                self.catalog.add_snapshot(
                    Snapshot(
                        version_id=version_id,
                        index=index,
                        iteration=iteration,
                        float_scheme=float_scheme,
                        created_at=_now(),
                    )
                )
                for layer, key, shape, nbytes, _planes, plane_shas in entries:
                    matrix_id = f"v{version_id}/s{index}/{layer}.{key}"
                    self.catalog.add_matrix(
                        matrix_id, version_id, index, layer, key,
                        shape, nbytes,
                    )
                    self.catalog.set_payload(
                        matrix_id, ROOT, "materialize", plane_shas
                    )
            if file_blobs:
                self.catalog.add_files(
                    version_id, {n: sha for n, sha, _ in file_blobs}
                )
            self.catalog.add_commit_marker(intent.txid, version_id, _now())

        # Phase 4 — the commit is durable; clean up intent and stage.
        self.journal.retire(intent)
        if include_staged:
            self.backend.delete_doc(STAGE_DOC)
        counter("dlv.commits").inc()
        return self.catalog.get_version(version_id)

    def _put_planes(self, planes: Sequence[bytes]) -> list[str]:
        """Store one payload's byte planes, mirroring high-order planes."""
        shas = []
        for index, plane in enumerate(planes):
            sha = self.store.put(plane)
            if index < REPLICA_PLANES:
                self.replica.put(plane)
            shas.append(sha)
        return shas

    # -- resolution & exploration ------------------------------------------------------

    def resolve(self, ref: VersionLike) -> ModelVersion:
        """Resolve an id, name, ``name@id`` string, or ModelVersion."""
        if isinstance(ref, ModelVersion):
            return ref
        if isinstance(ref, int):
            version = self.catalog.get_version(ref)
            if version is None:
                raise KeyError(f"no model version {ref}")
            return version
        text = str(ref)
        if "@" in text:
            _, _, id_part = text.rpartition("@")
            return self.resolve(int(id_part))
        matches = self.catalog.find_versions(text)
        if not matches:
            raise KeyError(f"no model version named {text!r}")
        return matches[-1]

    def list_versions(self, name_like: Optional[str] = None) -> list[ModelVersion]:
        """``dlv list``: versions, optionally filtered by name pattern."""
        return self.catalog.find_versions(name_like)

    def lineage_edges(self) -> list[tuple[int, int, str]]:
        """All `(base, derived, message)` lineage records."""
        return self.catalog.all_lineage()

    def ancestors(self, ref: VersionLike) -> list[ModelVersion]:
        """Transitive bases of a version (nearest first)."""
        version = self.resolve(ref)
        seen: set[int] = set()
        order: list[int] = []
        frontier = [version.id]
        while frontier:
            current = frontier.pop(0)
            for parent in self.catalog.get_parents(current):
                if parent not in seen:
                    seen.add(parent)
                    order.append(parent)
                    frontier.append(parent)
        return [self.catalog.get_version(v) for v in order]

    def descendants(self, ref: VersionLike) -> list[ModelVersion]:
        """Transitive derived versions (nearest first)."""
        version = self.resolve(ref)
        seen: set[int] = set()
        order: list[int] = []
        frontier = [version.id]
        while frontier:
            current = frontier.pop(0)
            for child in self.catalog.get_children(current):
                if child not in seen:
                    seen.add(child)
                    order.append(child)
                    frontier.append(child)
        return [self.catalog.get_version(v) for v in order]

    def verify(self) -> dict:
        """Integrity check of the whole repository.

        Verifies that every payload's chunks exist and decompress, that
        every matrix recreates to its recorded shape, and that every
        version's network spec parses.  Returns a report with any problems
        found (an empty ``problems`` list means the repository is sound).
        """
        problems: list[str] = []
        matrices_checked = 0
        archive = self._plan_archive()
        shapes = {
            row["matrix_id"]: row["shape"]
            for row in self.catalog.get_matrices()
        }
        for payload in self.catalog.all_payloads():
            matrix_id = payload["matrix_id"]
            for sha in payload["chunks"]:
                if sha not in self.store:
                    problems.append(f"{matrix_id}: missing chunk {sha[:12]}")
            if any(sha not in self.store for sha in payload["chunks"]):
                continue
            try:
                value = archive.recreate_matrix(matrix_id)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                problems.append(f"{matrix_id}: recreation failed ({exc})")
                continue
            if tuple(value.shape) != tuple(shapes.get(matrix_id, ())):
                problems.append(
                    f"{matrix_id}: shape {value.shape} != recorded "
                    f"{shapes.get(matrix_id)}"
                )
            matrices_checked += 1
        versions_checked = 0
        for version in self.list_versions():
            try:
                Network.from_spec(version.network)
                versions_checked += 1
            except Exception as exc:  # noqa: BLE001
                problems.append(f"{version.ref}: bad network spec ({exc})")
        return {
            "ok": not problems,
            "matrices_checked": matrices_checked,
            "versions_checked": versions_checked,
            "problems": problems,
        }

    def describe(self, ref: VersionLike) -> dict:
        """``dlv desc``: metadata, structure, and log summary of a version."""
        version = self.resolve(ref)
        log = self.catalog.get_training_log(version.id)
        return {
            "id": version.id,
            "name": version.name,
            "ref": version.ref,
            "message": version.message,
            "created_at": version.created_at,
            "metadata": version.metadata,
            "layers": [
                entry["layer"]["name"] + ":" + entry["layer"]["kind"]
                for entry in version.network.get("nodes", [])
            ],
            "num_snapshots": len(version.snapshots),
            "parents": self.catalog.get_parents(version.id),
            "children": self.catalog.get_children(version.id),
            "files": version.files,
            "log_entries": len(log),
            "last_log": log[-1] if log else None,
        }

    def training_log(self, ref: VersionLike) -> list[dict]:
        return self.catalog.get_training_log(self.resolve(ref).id)

    # -- weights ---------------------------------------------------------------------

    def page_store(self, page_size: Optional[int] = None) -> PageStore:
        """The dedup page store over this repo's ``pages`` blob tier."""
        kwargs = {"page_size": page_size} if page_size else {}
        return PageStore(self.pages, self.catalog, **kwargs)

    def _plan_archive(self, plane_cache=None) -> PlanArchive:
        """Current physical layout as a :class:`PlanArchive`."""
        snapshots: dict[str, list[str]] = {}
        shapes: dict[str, tuple] = {}
        for row in self.catalog.get_matrices():
            key = f"v{row['version_id']}/s{row['snapshot_idx']}"
            snapshots.setdefault(key, []).append(row["matrix_id"])
            shapes[row["matrix_id"]] = row["shape"]
        page_manifests: dict[str, dict[str, dict]] = {}
        for matrix_id, plane, man in self.catalog.all_page_manifests():
            page_manifests.setdefault(matrix_id, {})[str(plane)] = man
        payloads: dict[str, dict] = {}
        for p in self.catalog.all_payloads():
            entry = {
                "parent": p["parent"],
                "kind": p["kind"],
                "shape": list(shapes[p["matrix_id"]]),
                "chunks": p["chunks"],
            }
            if p["matrix_id"] in page_manifests:
                entry["pages"] = page_manifests[p["matrix_id"]]
            payloads[p["matrix_id"]] = entry
        manifest = {"snapshots": snapshots, "payloads": payloads}
        return PlanArchive.from_manifest_dict(
            self.store,
            manifest,
            replica_store=self.replica,
            replicate_planes=REPLICA_PLANES,
            degraded=True,
            page_store=self.page_store(),
            plane_cache=plane_cache,
        )

    def archive_view(self, plane_cache=None) -> PlanArchive:
        """Public accessor for the current PAS layout.

        ``plane_cache`` (a :class:`~repro.serve.cache.PlaneCache`) keys
        dedup page reads by content hash, so serving tiers that pass a
        shared cache hold each page's bytes once across all models.
        """
        return self._plan_archive(plane_cache=plane_cache)

    def get_snapshot_weights(
        self,
        ref: VersionLike,
        snapshot_idx: int = -1,
        planes: int = 4,
    ) -> dict[str, dict[str, np.ndarray]]:
        """Recreate a snapshot's weights (approximate when ``planes < 4``)."""
        version = self.resolve(ref)
        if not version.snapshots:
            raise ValueError(f"version {version.ref} has no snapshots")
        snapshot = version.snapshots[snapshot_idx]
        archive = self._plan_archive()
        weights: dict[str, dict[str, np.ndarray]] = {}
        for row in self.catalog.get_matrices(version.id, snapshot.index):
            value = archive.recreate_matrix(row["matrix_id"], planes=planes)
            weights.setdefault(row["layer"], {})[row["param"]] = value
        return weights

    def load_network(
        self, ref: VersionLike, snapshot_idx: int = -1, seed: int = 0
    ) -> Network:
        """Reconstruct a built network with a snapshot's weights installed."""
        version = self.resolve(ref)
        net = Network.from_spec(version.network).build(seed)
        net.set_weights(self.get_snapshot_weights(version, snapshot_idx))
        return net

    def matrix_id_for(
        self, ref: VersionLike, layer: str, param: str = "W",
        snapshot_idx: int = -1,
    ) -> str:
        """PAS matrix id of one parameter of a version's snapshot."""
        version = self.resolve(ref)
        snapshot = version.snapshots[snapshot_idx]
        for row in self.catalog.get_matrices(version.id, snapshot.index):
            if row["layer"] == layer and row["param"] == param:
                return row["matrix_id"]
        raise KeyError(
            f"{version.ref} snapshot {snapshot.index} has no matrix "
            f"{layer}.{param}"
        )

    def inspect_matrix(
        self, ref: VersionLike, layer: str, param: str = "W",
        snapshot_idx: int = -1, planes: int = 2, bins: int = 10,
    ) -> dict:
        """Segment-only stats + histogram of one archived parameter.

        Answers ``dlv inspect`` without touching the low-order byte planes
        (Sec. IV-D's exploration-query optimization).
        """
        from repro.core.inspect import segment_histogram, segment_stats

        matrix_id = self.matrix_id_for(ref, layer, param, snapshot_idx)
        archive = self._plan_archive()
        return {
            "stats": segment_stats(archive, matrix_id, planes),
            "histogram": segment_histogram(archive, matrix_id, bins, planes),
        }

    def evaluate(
        self, ref: VersionLike, x: np.ndarray, y: Optional[np.ndarray] = None,
        snapshot_idx: int = -1,
    ) -> dict:
        """``dlv eval``: run the test phase of a managed model on data.

        The result carries the evaluation's storage bill under ``cost``
        (bytes/planes read recreating the snapshot, cache traffic).
        """
        with trace_span("dlv.evaluate", rows=len(x)) as span:
            with cost_context() as cost:
                net = self.load_network(ref, snapshot_idx)
                predictions = net.predict(x)
        result = {"predictions": predictions, "cost": cost.to_dict()}
        span.set_attr("cost", result["cost"])
        get_slowlog().record(
            "dlv.evaluate",
            span.elapsed * 1000.0,
            trace_id=span.trace_id,
            cost=result["cost"],
        )
        if y is not None:
            result["accuracy"] = float((predictions == np.asarray(y)).mean())
        return result

    # -- archival (`dlv archive`) -----------------------------------------------------------

    def build_storage_graph(
        self,
        delta_within_versions: bool = True,
        delta_across_lineage: bool = True,
        recreation_unit: float = 1e-6,
        dedup: bool = False,
        page_size: Optional[int] = None,
    ) -> tuple[MatrixStorageGraph, dict[str, np.ndarray]]:
        """Construct the matrix storage graph of the whole repository.

        Delta edges follow the paper's Fig. 6(b) findings: between
        *adjacent snapshots* of the same version, and between the *latest
        snapshots* of lineage-related versions (fine-tuning).  Edge weights:
        storage cost = compressed byte-plane size of the payload;
        recreation cost = uncompressed bytes x ``recreation_unit`` per
        payload applied (a proxy for decompress+apply time).

        With ``dedup`` on, every matrix also gets a parallel ``pages``
        root edge whose storage cost is a :class:`DedupEstimator` dry run
        — only the pages no earlier matrix (or the existing page store)
        already holds.  Unrelated models that share content thus archive
        near-free, without needing a lineage edge between them.

        Returns the graph and the id -> array map needed to physically
        archive it.
        """
        graph = MatrixStorageGraph()
        matrices: dict[str, np.ndarray] = {}
        arrays: dict[str, np.ndarray] = {}
        rows_by_snapshot: dict[tuple[int, int], list[dict]] = {}
        archive = self._plan_archive()
        estimator = None
        if dedup:
            estimator = DedupEstimator(
                known=self.catalog.page_refcounts(),
                page_size=page_size or DEFAULT_PAGE_SIZE,
            )
        for row in self.catalog.get_matrices():
            matrix_id = row["matrix_id"]
            value = archive.recreate_matrix(matrix_id)
            arrays[matrix_id] = value
            snapshot_key = f"v{row['version_id']}/s{row['snapshot_idx']}"
            graph.add_matrix(
                MatrixRef(matrix_id, snapshot_key, value.nbytes)
            )
            graph.add_materialization(
                matrix_id,
                _compressed_planes_size(value),
                value.nbytes * recreation_unit,
            )
            if estimator is not None:
                graph.add_edge(
                    StorageEdge(
                        ROOT,
                        matrix_id,
                        estimator.matrix_cost(value),
                        value.nbytes * recreation_unit,
                        kind="pages",
                    )
                )
            matrices[matrix_id] = value
            rows_by_snapshot.setdefault(
                (row["version_id"], row["snapshot_idx"]), []
            ).append(row)

        def add_delta_edges(
            rows_a: list[dict], rows_b: list[dict]
        ) -> None:
            by_key_b = {(r["layer"], r["param"]): r for r in rows_b}
            for row_a in rows_a:
                row_b = by_key_b.get((row_a["layer"], row_a["param"]))
                if row_b is None:
                    continue
                if len(row_a["shape"]) != len(row_b["shape"]):
                    continue
                a, b = arrays[row_a["matrix_id"]], arrays[row_b["matrix_id"]]
                cost = _compressed_planes_size(delta_sub_mismatched(a, b))
                graph.add_edge(
                    StorageEdge(
                        row_b["matrix_id"],
                        row_a["matrix_id"],
                        cost,
                        a.nbytes * recreation_unit,
                        kind="delta",
                    )
                )

        if delta_within_versions:
            by_version: dict[int, list[int]] = {}
            for vid, idx in rows_by_snapshot:
                by_version.setdefault(vid, []).append(idx)
            for vid, indices in by_version.items():
                indices.sort()
                for prev, nxt in zip(indices, indices[1:]):
                    add_delta_edges(
                        rows_by_snapshot[(vid, nxt)],
                        rows_by_snapshot[(vid, prev)],
                    )

        if delta_across_lineage:
            for base, derived, _ in self.catalog.all_lineage():
                base_version = self.catalog.get_version(base)
                derived_version = self.catalog.get_version(derived)
                if not base_version.snapshots or not derived_version.snapshots:
                    continue
                base_key = (base, base_version.snapshots[-1].index)
                derived_key = (derived, derived_version.snapshots[-1].index)
                if base_key in rows_by_snapshot and derived_key in rows_by_snapshot:
                    add_delta_edges(
                        rows_by_snapshot[derived_key],
                        rows_by_snapshot[base_key],
                    )

        return graph, matrices

    def archive(
        self,
        alpha: float = 2.0,
        scheme: RetrievalScheme = RetrievalScheme.INDEPENDENT,
        algorithm: str = "best",
        dedup: bool = False,
        page_size: Optional[int] = None,
    ) -> dict:
        """``dlv archive``: re-optimize the repository's parameter storage.

        Solves Problem 1 with per-snapshot budgets ``alpha x Cr(SPT)``,
        physically re-archives every matrix per the winning plan, and
        updates the payload table.

        With ``dedup`` on, the solver may also store matrices as
        similarity-deduplicated page manifests (see :mod:`repro.dedup`):
        page blobs land first under the journaled intent (content
        addressed, so a crash leaves only orphans for :meth:`gc`), and
        refcounts/sketches apply atomically with the payload rewrite.

        Returns:
            A report with storage cost before/after and plan statistics.
        """
        before = self.store.total_size() + self.pages.total_size()
        graph, matrices = self.build_storage_graph(
            dedup=dedup, page_size=page_size
        )
        constraints = alpha_constraints(graph, alpha, scheme)
        plan = solve(graph, constraints, scheme, algorithm)
        intent = self.journal.record(
            "archive", alpha=alpha, algorithm=algorithm, dedup=dedup
        )
        pstore = self.page_store(page_size)
        archive = PlanArchive.build(
            self.store, matrices, plan,
            replica_store=self.replica,
            page_store=pstore,
        )
        with self.catalog.transaction():
            for matrix_id, entry in archive.manifest.items():
                # Drop any previous page encoding of this matrix before
                # installing the new payload, whichever kind it is.
                pstore.release_matrix(matrix_id)
                self.catalog.set_payload(
                    matrix_id, entry.parent, entry.kind, entry.chunk_ids
                )
                if entry.pages:
                    for plane, man in entry.pages.items():
                        self.catalog.set_page_manifest(matrix_id, plane, man)
            pstore.flush()
        self.gc()
        self.journal.retire(intent)
        after = self.store.total_size() + self.pages.total_size()
        report = {
            "algorithm": algorithm,
            "alpha": alpha,
            "scheme": scheme.value,
            "dedup": dedup,
            "plan_storage_cost": plan.storage_cost(),
            "bytes_before": before,
            "bytes_after": after,
            "page_bytes": self.pages.total_size(),
            "snapshot_costs": plan.all_snapshot_costs(scheme),
            "satisfied": plan.satisfies(constraints, scheme),
            "archived_at": _now(),
        }
        self._record_archive_report(report)
        return report

    def _record_archive_report(self, report: dict) -> None:
        """Append an archive run to the repository's provenance history."""
        index = len(self.backend.list_docs(ARCHIVES_PREFIX))
        self.backend.write_doc(
            f"{ARCHIVES_PREFIX}{index:04d}.json",
            json.dumps(report, indent=2, default=str).encode(),
        )

    def archive_history(self) -> list[dict]:
        """All recorded ``dlv archive`` runs, oldest first."""
        return [
            json.loads(self.backend.read_doc(name))
            for name in self.backend.list_docs(ARCHIVES_PREFIX)
        ]

    def convert_snapshot_scheme(
        self, ref: VersionLike, snapshot_idx: int, float_scheme: str
    ) -> dict:
        """Re-encode a stored snapshot with a (lossier) float scheme.

        The paper's storage story (Sec. IV-B): rather than deleting old
        checkpoints under resource pressure, the modeler demotes them to a
        cheaper representation — e.g. ``fixed8`` for snapshots kept only
        for debugging, ``quant8-uniform`` for fine-tuning initializers.
        The snapshot's recorded scheme is updated; its matrices are
        re-segmented from the lossy values and the old chunks become
        garbage (collect with :meth:`gc`).

        Returns:
            ``{"bytes_before", "bytes_after"}`` stored-size accounting for
            the affected matrices.
        """
        version = self.resolve(ref)
        snapshot = version.snapshots[snapshot_idx]
        scheme = get_scheme(float_scheme)
        archive = self._plan_archive()
        rows = self.catalog.get_matrices(version.id, snapshot.index)
        converted_ids = {row["matrix_id"] for row in rows}
        # Matrices stored as deltas off a converted matrix would recreate
        # from lossy values — re-materialize them (exactly) first.
        dependents = [
            p["matrix_id"]
            for p in self.catalog.all_payloads()
            if p["parent"] in converted_ids
            and p["matrix_id"] not in converted_ids
        ]
        exact_values = {
            matrix_id: archive.recreate_matrix(matrix_id)
            for matrix_id in (*converted_ids, *dependents)
        }
        intent = self.journal.record(
            "convert", ref=version.ref, snapshot=snapshot.index,
            float_scheme=float_scheme,
        )
        before = 0
        after = 0
        pstore = self.page_store()
        with self.catalog.transaction():
            for matrix_id in dependents:
                chunks = self._put_planes(
                    segment_planes(exact_values[matrix_id])
                )
                pstore.release_matrix(matrix_id)
                self.catalog.set_payload(
                    matrix_id, ROOT, "materialize", chunks
                )
            for row in rows:
                matrix_id = row["matrix_id"]
                payload = self.catalog.get_payload(matrix_id)
                for sha in payload["chunks"]:
                    before += self.store.stored_size(sha)
                for man in self.catalog.get_page_manifests(matrix_id).values():
                    for sha in set(manifest_shas(man)):
                        before += self.pages.stored_size(sha)
                lossy = scheme.roundtrip(exact_values[matrix_id])
                chunks = self._put_planes(segment_planes(lossy))
                # Converted snapshots are re-materialized: a lossy matrix is
                # no longer a valid delta base/target for its old neighbours.
                pstore.release_matrix(matrix_id)
                self.catalog.set_payload(
                    matrix_id, ROOT, "materialize", chunks
                )
                for sha in chunks:
                    after += self.store.stored_size(sha)
            self.catalog._conn.execute(
                "UPDATE snapshot SET float_scheme = ? "
                "WHERE version_id = ? AND idx = ?",
                (float_scheme, version.id, snapshot.index),
            )
        self.gc()
        self.journal.retire(intent)
        return {"bytes_before": before, "bytes_after": after}

    def prune_snapshots(
        self, ref: VersionLike, keep_every: int = 2, keep_last: int = 1
    ) -> dict:
        """Drop intermediate checkpoints of a version.

        Keeps every ``keep_every``-th snapshot plus the last ``keep_last``
        ones (the latest snapshot is never dropped — it serves most queries,
        Sec. IV-A).  Matrices stored as deltas off a pruned snapshot are
        re-materialized first so surviving data stays recreatable.

        Returns:
            ``{"kept": [...], "dropped": [...]}`` snapshot indices.
        """
        if keep_every < 1 or keep_last < 1:
            raise ValueError("keep_every and keep_last must be >= 1")
        version = self.resolve(ref)
        indices = [s.index for s in version.snapshots]
        protected = set(indices[-keep_last:])
        kept = [
            i for i in indices if i % keep_every == 0 or i in protected
        ]
        dropped = [i for i in indices if i not in kept]
        if not dropped:
            return {"kept": kept, "dropped": []}

        dropped_matrix_ids = {
            row["matrix_id"]
            for idx in dropped
            for row in self.catalog.get_matrices(version.id, idx)
        }
        archive = self._plan_archive()
        intent = self.journal.record("prune", ref=version.ref, dropped=dropped)
        pstore = self.page_store()
        with self.catalog.transaction():
            # Rebase survivors that delta off dropped matrices.
            for payload in self.catalog.all_payloads():
                if (
                    payload["parent"] in dropped_matrix_ids
                    and payload["matrix_id"] not in dropped_matrix_ids
                ):
                    exact = archive.recreate_matrix(payload["matrix_id"])
                    chunks = self._put_planes(segment_planes(exact))
                    pstore.release_matrix(payload["matrix_id"])
                    self.catalog.set_payload(
                        payload["matrix_id"], ROOT, "materialize", chunks
                    )
            for matrix_id in dropped_matrix_ids:
                pstore.release_matrix(matrix_id)
                self.catalog._conn.execute(
                    "DELETE FROM payload WHERE matrix_id = ?", (matrix_id,)
                )
                self.catalog._conn.execute(
                    "DELETE FROM matrix WHERE matrix_id = ?", (matrix_id,)
                )
            for idx in dropped:
                self.catalog._conn.execute(
                    "DELETE FROM snapshot WHERE version_id = ? AND idx = ?",
                    (version.id, idx),
                )
        self.gc()
        self.journal.retire(intent)
        return {"kept": kept, "dropped": dropped}

    def export_model_dir(
        self, ref: VersionLike, path: str | Path, snapshot_idx: int = -1
    ) -> Path:
        """Inverse of ``dlv commit``: write a model directory for a version.

        Produces the ``network.json`` / ``weights.npz`` / ``solver.json`` /
        ``log.json`` exchange format so the model can be loaded back into
        an external training system (see :mod:`repro.dlv.wrapper`).
        """
        from repro.dlv import wrapper
        from repro.dnn.training import SGDConfig, TrainResult

        version = self.resolve(ref)
        net = self.load_network(version, snapshot_idx)
        hyperparams = version.metadata.get("hyperparams")
        config = None
        if isinstance(hyperparams, dict):
            known = {
                k: v
                for k, v in hyperparams.items()
                if k in SGDConfig.__dataclass_fields__
            }
            config = SGDConfig(**known)
        log = self.training_log(version)
        result = TrainResult(log=log) if log else None
        return wrapper.save_model_dir(path, net, config, result)

    def gc(self) -> int:
        """Delete chunks not referenced by any payload; returns count removed.

        Sweeps the replica tier too (replica blobs share the main store's
        addresses — paged payloads mirror whole planes under the
        manifest's plane digest) and the dedup page tier (pages no
        manifest references); the return value counts main-store removals
        only.
        """
        referenced: set[str] = set()
        for payload in self.catalog.all_payloads():
            referenced.update(payload["chunks"])
        # Replica mirrors of paged planes are keyed by the manifest's
        # whole-plane digest — protected in the replica tier only (the
        # same digest in the main store is a stale materialize chunk).
        replica_referenced = set(referenced)
        page_referenced: set[str] = set()
        for _matrix_id, _plane, man in self.catalog.all_page_manifests():
            page_referenced.update(manifest_shas(man))
            if man.get("sha"):
                replica_referenced.add(man["sha"])
        removed = 0
        for sha in list(self.store.addresses()):
            if sha not in referenced:
                self.store.delete(sha)
                removed += 1
        for sha in list(self.replica.addresses()):
            if sha not in replica_referenced:
                self.replica.delete(sha)
        self.page_store().sweep_orphans(referenced=page_referenced)
        return removed

    def dedup_stats(self) -> dict:
        """Page-dedup accounting for ``dlv dedup stats`` / ``dlv stats``.

        ``bytes_saved`` is what the paged matrices would have cost stored
        independently minus what the shared page tier actually holds.
        """
        stats = self.page_store().stats()
        stats["chunk_bytes"] = self.store.total_size()
        return stats

    # -- copy (`dlv copy`) -----------------------------------------------------------------

    def copy_version(
        self, ref: VersionLike, new_name: str, message: str = ""
    ) -> ModelVersion:
        """``dlv copy``: scaffold a new version from an old one.

        The new version shares the old one's architecture and latest
        weights (stored deduplicated by content addressing) and records a
        lineage edge — the starting point for fine-tuning.
        """
        base = self.resolve(ref)
        net = self.load_network(base)
        net.name = new_name
        return self.commit(
            net,
            name=new_name,
            message=message or f"copied from {base.ref}",
            parent=base,
        )
