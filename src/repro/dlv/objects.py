"""Value objects for the DLV data model (Sec. III-A).

A *model version* is the relation ``model_version(name, id, N, W, M, F)``:
a network definition ``N``, weight values ``W`` (a series of checkpointed
snapshots, managed by PAS), extracted metadata ``M``, and associated files
``F``.  Lineage between versions lives in the separate
``parent(base, derived, commit)`` relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Snapshot:
    """One checkpointed snapshot of a model version's weights.

    Attributes:
        version_id: Owning model version.
        index: Position in the version's snapshot series (0-based); the
            highest index is the *latest snapshot* ``s_v``.
        iteration: Training iteration at checkpoint time.
        float_scheme: The PAS float representation the snapshot was saved
            with (``float32`` unless the user chose a lossy scheme).
        created_at: ISO timestamp.
    """

    version_id: int
    index: int
    iteration: int
    float_scheme: str = "float32"
    created_at: str = ""

    @property
    def key(self) -> str:
        """The PAS snapshot (co-usage group) identifier."""
        return f"v{self.version_id}/s{self.index}"


@dataclass
class ModelVersion:
    """A committed model version.

    Attributes:
        id: Auto-generated id distinguishing versions with the same name.
        name: Human-readable name (required by the data model; reflects the
            logical improvement series, e.g. ``"alexnet-avgv1"``).
        message: Commit message.
        created_at: ISO timestamp.
        network: The network definition as a serialized spec (``N``).
        metadata: Extracted key/value metadata (``M``): hyperparameters,
            final accuracy/loss, execution footprint.
        files: Associated file digests (``F``): ``{relative_path: sha}``.
        snapshots: The checkpointed snapshot series (``W`` lives in PAS).
    """

    id: int
    name: str
    message: str = ""
    created_at: str = ""
    network: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)
    files: dict = field(default_factory=dict)
    snapshots: list[Snapshot] = field(default_factory=list)

    @property
    def latest_snapshot(self) -> Optional[Snapshot]:
        """The last checkpointed snapshot (``s_v`` in Sec. IV-A)."""
        return self.snapshots[-1] if self.snapshots else None

    @property
    def ref(self) -> str:
        """Stable reference string ``name@id``."""
        return f"{self.name}@{self.id}"
