"""Write-ahead intent journal for repository mutations.

Crash-safe commits follow a write-ahead protocol: before any chunk
lands, an *intent file* is written (and fsynced) into
``.dlv/journal/`` recording what is about to happen — the operation,
the content addresses that will be written, and a transaction id.  The
catalog then applies all of its rows in one sqlite transaction whose
last act records the same txid in the ``commit_marker`` table, and only
after that does the intent file retire.

On every :meth:`~repro.dlv.repository.Repository.open`, pending intent
files are replayed:

* ``commit`` intents whose txid reached the catalog are simply retired
  (the crash happened between durability and cleanup);
* ``commit`` intents whose txid is absent mean the catalog transaction
  never committed — the listed chunks/files are swept if nothing else
  references them, restoring the pre-commit state exactly;
* ``archive`` / ``convert`` / ``prune`` intents trigger a garbage
  sweep: their catalog transaction is atomic on its own, so either the
  old or the new payload table is in effect and the sweep removes
  whichever chunk generation lost.

Journal entry format (JSON, one file per in-flight operation)::

    .dlv/journal/<txid>.json
    {
      "txid": "<32 hex chars>",
      "op": "commit" | "archive" | "convert" | "prune",
      "created_at": "<iso8601>",
      "chunks": ["<sha256>", ...],   # commit only: planned chunk writes
      "files":  ["<sha256>", ...],   # commit only: planned file copies
      ...                            # op-specific context (name, ref)
    }

A torn journal write (unparseable JSON) is safe by construction: the
intent is written *before* any data it describes, so an unreadable
intent means the operation never touched the store and the file is
discarded.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.faults import fs as ffs


@dataclass
class JournalEntry:
    """One intent record: its txid and parsed payload (None = torn).

    ``path`` is the intent file for the loose-file journal and ``None``
    for journals stored as database rows.
    """

    path: Optional[Path]
    txid: str
    data: Optional[dict]

    @property
    def op(self) -> Optional[str]:
        return self.data.get("op") if self.data else None


class Journal:
    """Owns the ``.dlv/journal/`` directory of intent files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def record(self, op: str, **payload) -> JournalEntry:
        """Durably write an intent file; returns the entry to retire later."""
        txid = uuid.uuid4().hex
        data = {"txid": txid, "op": op, **payload}
        path = self.root / f"{txid}.json"
        ffs.write_bytes(
            path,
            json.dumps(data, indent=2, default=str).encode(),
            site="journal.write",
        )
        ffs.fsync_dir(self.root, site="journal.dirsync")
        return JournalEntry(path=path, txid=txid, data=data)

    def retire(self, entry: JournalEntry) -> None:
        """Remove a fulfilled (or rolled-back) intent."""
        ffs.unlink(entry.path, site="journal.retire", missing_ok=True)
        ffs.fsync_dir(self.root)

    def write_raw(self, txid: str, text: str) -> None:
        """Test helper: store an intent payload verbatim (possibly torn)."""
        (self.root / f"{txid}.json").write_text(text)

    def pending(self) -> list[JournalEntry]:
        """All intent files on disk, oldest first; torn ones have data=None."""
        entries = []
        for path in sorted(self.root.glob("*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                data = None
            txid = data.get("txid", path.stem) if data else path.stem
            entries.append(JournalEntry(path=path, txid=txid, data=data))
        return entries
