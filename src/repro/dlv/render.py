"""HTML rendering of exploration query results.

The paper renders model-exploration results (``dlv list`` / ``desc`` /
``diff``) in an HTML front end (Sec. III-B).  These renderers are
dependency-free: plain HTML strings with a small embedded stylesheet,
written to a file the user opens in a browser.
"""

from __future__ import annotations

import html
from typing import Optional

_STYLE = """
<style>
  body { font-family: sans-serif; margin: 2em; color: #222; }
  h1 { font-size: 1.4em; border-bottom: 2px solid #446; padding-bottom: 4px; }
  h2 { font-size: 1.1em; margin-top: 1.4em; }
  table { border-collapse: collapse; margin: 0.6em 0; }
  th, td { border: 1px solid #bbc; padding: 4px 10px; text-align: left; }
  th { background: #eef; }
  .kind { color: #668; font-size: 0.85em; }
  .lineage { font-family: monospace; }
  .delta-add { color: #060; }
  .delta-del { color: #900; }
  .bar { background: #88a; display: inline-block; height: 0.8em; }
</style>
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title>{_STYLE}</head>"
        f"<body><h1>{_esc(title)}</h1>{body}</body></html>"
    )


def _table(headers: list[str], rows: list[list]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def render_describe(description: dict, log: Optional[list[dict]] = None) -> str:
    """Render a ``dlv desc`` report (see ``Repository.describe``)."""
    meta_rows = [
        [key, value]
        for key, value in sorted(description.get("metadata", {}).items())
    ]
    layers = "".join(
        f"<li>{_esc(name)}</li>" for name in description.get("layers", [])
    )
    sections = [
        _table(
            ["field", "value"],
            [
                ["ref", description.get("ref")],
                ["message", description.get("message")],
                ["created_at", description.get("created_at")],
                ["snapshots", description.get("num_snapshots")],
                ["parents", description.get("parents")],
                ["children", description.get("children")],
            ],
        ),
        f"<h2>Metadata</h2>{_table(['key', 'value'], meta_rows)}",
        f"<h2>Network</h2><ol class='kind'>{layers}</ol>",
    ]
    if log:
        peak = max((e.get("loss") or 0.0) for e in log) or 1.0
        rows = []
        for entry in log:
            loss = entry.get("loss") or 0.0
            width = int(120 * loss / peak)
            bar = f"<span class='bar' style='width:{width}px'></span>"
            accuracy = entry.get("accuracy")
            accuracy_cell = "" if accuracy is None else f"{accuracy:.3f}"
            rows.append(
                "<tr>"
                f"<td>{entry.get('iteration')}</td>"
                f"<td>{loss:.4f} {bar}</td>"
                f"<td>{accuracy_cell}</td>"
                f"<td>{entry.get('lr')}</td>"
                "</tr>"
            )
        sections.append(
            "<h2>Training log</h2><table>"
            "<tr><th>iteration</th><th>loss</th><th>accuracy</th><th>lr</th></tr>"
            + "".join(rows)
            + "</table>"
        )
    return _page(f"dlv desc {description.get('ref', '')}", "".join(sections))


def render_diff(report: dict) -> str:
    """Render a ``dlv diff`` report (see ``repro.dlv.diff.diff_versions``)."""
    structure = report.get("structure", {})
    sections = [
        f"<p>Comparing <b>{_esc(report.get('a'))}</b> vs "
        f"<b>{_esc(report.get('b'))}</b></p>",
        "<h2>Structure</h2>",
        "<ul>"
        + "".join(
            f"<li class='delta-add'>+ {_esc(n)}</li>"
            for n in structure.get("added", [])
        )
        + "".join(
            f"<li class='delta-del'>- {_esc(n)}</li>"
            for n in structure.get("removed", [])
        )
        + "".join(
            f"<li>~ {_esc(n)}: {_esc(change)}</li>"
            for n, change in structure.get("changed", {}).items()
        )
        + "</ul>",
    ]
    metadata = report.get("metadata", {})
    if metadata:
        sections.append(
            "<h2>Metadata</h2>"
            + _table(
                ["key", report.get("a", "a"), report.get("b", "b")],
                [[k, v[0], v[1]] for k, v in sorted(metadata.items())],
            )
        )
    parameters = report.get("parameters")
    if parameters:
        rows = [
            [key, f"{stats['relative_l2']:.4f}", f"{stats['max_abs']:.5f}"]
            for key, stats in sorted(parameters.get("shared", {}).items())
        ]
        sections.append(
            "<h2>Parameters</h2>"
            + _table(["matrix", "relative L2", "max abs diff"], rows)
        )
        if parameters.get("shape_mismatch"):
            sections.append(
                "<p>Shape mismatches: "
                f"{_esc(parameters['shape_mismatch'])}</p>"
            )
    return _page("dlv diff", "".join(sections))


def render_lineage(
    versions: list[dict], edges: list[tuple[int, int, str]]
) -> str:
    """Render a ``dlv list`` report: the version table plus lineage tree."""
    rows = [
        [
            v.get("id"), v.get("name"), v.get("created_at"),
            v.get("snapshots"), v.get("accuracy"),
        ]
        for v in versions
    ]
    children: dict[Optional[int], list[int]] = {}
    names = {v["id"]: v["name"] for v in versions}
    parent_of: dict[int, int] = {}
    for base, derived, _ in edges:
        parent_of[derived] = base
        children.setdefault(base, []).append(derived)
    roots = [v["id"] for v in versions if v["id"] not in parent_of]

    lines: list[str] = []

    def walk(version_id: int, depth: int) -> None:
        indent = "&nbsp;" * 4 * depth + ("└─ " if depth else "")
        label = f"{names.get(version_id, '?')}@{version_id}"
        lines.append(f"<div class='lineage'>{indent}{_esc(label)}</div>")
        for child in sorted(children.get(version_id, [])):
            walk(child, depth + 1)

    for root in sorted(roots):
        walk(root, 0)
    body = (
        _table(["id", "name", "created", "snapshots", "accuracy"], rows)
        + "<h2>Lineage</h2>"
        + "".join(lines)
    )
    return _page("dlv list", body)
