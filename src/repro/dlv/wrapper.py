"""Training-system wrapper: extract and reproduce modeling artifacts.

ModelHub's model learning module wraps the DNN system the modeler uses
(the paper wraps Caffe) to extract artifacts — network definitions,
learned parameters, training logs — into DLV's data model, and to write
them back out for training.  Our training system is :mod:`repro.dnn`, and
the on-disk exchange format is a *model directory*:

.. code-block:: text

    <model-dir>/
        network.json    network spec (repro.dnn.network.Network.spec)
        weights.npz     latest weights, keys "layer/param"
        solver.json     optimization hyperparameters (optional)
        log.json        training log entries (optional)

The ``dlv commit --model-dir`` CLI path goes through these functions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import numpy as np

from repro.dnn.network import Network
from repro.dnn.training import SGDConfig, TrainResult


def save_model_dir(
    path: str | Path,
    network: Network,
    config: Optional[SGDConfig] = None,
    result: Optional[TrainResult] = None,
) -> Path:
    """Write a model directory for a (trained) network."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    (path / "network.json").write_text(json.dumps(network.spec(), indent=2))
    if network.is_built:
        flat = {
            f"{layer}/{param}": value
            for layer, params in network.get_weights().items()
            for param, value in params.items()
        }
        np.savez_compressed(path / "weights.npz", **flat)
    if config is not None:
        (path / "solver.json").write_text(json.dumps(config.to_dict(), indent=2))
    if result is not None:
        (path / "log.json").write_text(json.dumps(result.log, indent=2))
    return path


def load_network(path: str | Path, seed: int = 0) -> Network:
    """Reconstruct a built network (with weights when present)."""
    path = Path(path)
    spec = json.loads((path / "network.json").read_text())
    net = Network.from_spec(spec).build(seed)
    weights_path = path / "weights.npz"
    if weights_path.exists():
        with np.load(weights_path) as archive:
            weights: dict[str, dict[str, np.ndarray]] = {}
            for key in archive.files:
                layer, _, param = key.partition("/")
                weights.setdefault(layer, {})[param] = archive[key]
        net.set_weights(weights)
    return net


def load_solver(path: str | Path) -> Optional[SGDConfig]:
    """Read the solver config when the model directory has one."""
    solver_path = Path(path) / "solver.json"
    if not solver_path.exists():
        return None
    return SGDConfig(**json.loads(solver_path.read_text()))


def load_log(path: str | Path) -> list[dict]:
    """Read the training log when the model directory has one."""
    log_path = Path(path) / "log.json"
    if not log_path.exists():
        return []
    return json.loads(log_path.read_text())


def load_train_result(path: str | Path) -> Optional[TrainResult]:
    """Assemble a TrainResult from a model directory's log and weights."""
    path = Path(path)
    log = load_log(path)
    if not log and not (path / "weights.npz").exists():
        return None
    net = load_network(path)
    result = TrainResult(log=log)
    final_iteration = log[-1]["iteration"] if log else 0
    result.snapshots = [(final_iteration, net.get_weights())]
    if log:
        result.final_loss = log[-1].get("loss", float("inf"))
        result.final_accuracy = log[-1].get("accuracy", 0.0) or 0.0
    return result
