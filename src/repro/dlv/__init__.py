"""DLV — the model versioning system (Sec. III of the paper).

DLV is a version control system specialised for DNN models: instead of
opaque blobs, it understands the internal structure of modeling artifacts —
network definitions, training logs, learned weights, lineage between
versions — and stores each in the right backend:

* structured data (networks, logs, metadata, lineage) in a sqlite3
  relational catalog (:mod:`repro.dlv.catalog`);
* learned float matrices in PAS (:mod:`repro.core`);
* associated files content-addressed under ``.dlv/files``.

The :class:`~repro.dlv.repository.Repository` class is the Python API; the
``dlv`` command line tool (:mod:`repro.dlv.cli`) exposes the command suite
of Table II.
"""

from repro.dlv.objects import ModelVersion, Snapshot
from repro.dlv.repository import Repository

__all__ = ["ModelVersion", "Repository", "Snapshot"]
