"""Model comparison — the machinery behind ``dlv diff`` (Sec. III-B).

Comparing models side by side covers three aspects the paper calls out:

* *structure*: which layers were added, removed, or re-configured;
* *metadata*: hyperparameters, accuracy, and other extracted measures;
* *parameters*: distance statistics between shared weight matrices —
  useful for judging whether delta encoding will pay off, and for
  understanding how far a fine-tuned model drifted from its base.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dlv.objects import ModelVersion


def _layer_specs(version: ModelVersion) -> dict[str, dict]:
    return {
        entry["layer"]["name"]: entry["layer"]
        for entry in version.network.get("nodes", [])
    }


def diff_structure(a: ModelVersion, b: ModelVersion) -> dict:
    """Structural diff of two network definitions.

    Returns added/removed layer names and per-layer hyperparameter changes
    for layers present in both.
    """
    layers_a, layers_b = _layer_specs(a), _layer_specs(b)
    added = sorted(set(layers_b) - set(layers_a))
    removed = sorted(set(layers_a) - set(layers_b))
    changed = {}
    for name in sorted(set(layers_a) & set(layers_b)):
        spec_a, spec_b = layers_a[name], layers_b[name]
        if spec_a["kind"] != spec_b["kind"]:
            changed[name] = {"kind": (spec_a["kind"], spec_b["kind"])}
            continue
        hp_a = spec_a.get("hyperparams", {})
        hp_b = spec_b.get("hyperparams", {})
        delta = {
            key: (hp_a.get(key), hp_b.get(key))
            for key in set(hp_a) | set(hp_b)
            if hp_a.get(key) != hp_b.get(key)
        }
        if delta:
            changed[name] = delta
    return {"added": added, "removed": removed, "changed": changed}


def diff_metadata(a: ModelVersion, b: ModelVersion) -> dict:
    """Metadata diff: keys whose values differ between the versions."""
    keys = set(a.metadata) | set(b.metadata)
    return {
        key: (a.metadata.get(key), b.metadata.get(key))
        for key in sorted(keys)
        if a.metadata.get(key) != b.metadata.get(key)
    }


def diff_parameters(
    weights_a: dict[str, dict[str, np.ndarray]],
    weights_b: dict[str, dict[str, np.ndarray]],
) -> dict:
    """Parameter distance statistics for matrices shared by both versions.

    For each shared ``layer.param`` with matching shapes, reports the
    relative L2 distance and max absolute difference; shape mismatches and
    one-sided matrices are listed separately.
    """
    stats: dict[str, dict] = {}
    mismatched: list[str] = []
    only_a: list[str] = []
    only_b: list[str] = []
    keys_a = {
        f"{layer}.{param}": weights_a[layer][param]
        for layer in weights_a
        for param in weights_a[layer]
    }
    keys_b = {
        f"{layer}.{param}": weights_b[layer][param]
        for layer in weights_b
        for param in weights_b[layer]
    }
    for key in sorted(set(keys_a) | set(keys_b)):
        if key not in keys_a:
            only_b.append(key)
            continue
        if key not in keys_b:
            only_a.append(key)
            continue
        ma, mb = keys_a[key], keys_b[key]
        if ma.shape != mb.shape:
            mismatched.append(key)
            continue
        diff = ma.astype(np.float64) - mb.astype(np.float64)
        norm_a = float(np.linalg.norm(ma))
        stats[key] = {
            "relative_l2": float(np.linalg.norm(diff)) / (norm_a or 1.0),
            "max_abs": float(np.abs(diff).max()) if diff.size else 0.0,
            "shape": list(ma.shape),
        }
    return {
        "shared": stats,
        "shape_mismatch": mismatched,
        "only_in_a": only_a,
        "only_in_b": only_b,
    }


def diff_versions(
    a: ModelVersion,
    b: ModelVersion,
    weights_a: Optional[dict] = None,
    weights_b: Optional[dict] = None,
) -> dict:
    """Full ``dlv diff`` report between two versions."""
    report = {
        "a": a.ref,
        "b": b.ref,
        "structure": diff_structure(a, b),
        "metadata": diff_metadata(a, b),
    }
    if weights_a is not None and weights_b is not None:
        report["parameters"] = diff_parameters(weights_a, weights_b)
    return report
