"""The ``dlv`` command line tool (Table II of the paper).

Command groups:

* model version management — ``init``, ``add``, ``commit``, ``copy``,
  ``archive``;
* model exploration — ``list``, ``desc``, ``diff``, ``eval``;
* model enumeration — ``query`` (DQL);
* remote interaction — ``publish``, ``search``, ``pull``, ``hub-serve``
  (optionally as a replicating fleet peer), ``hub status``;
* observability — ``stats``, ``trace export``, ``slowlog``, ``top``.

The CLI is a thin layer over :class:`repro.dlv.repository.Repository`,
:mod:`repro.dql`, and :mod:`repro.hub`; all output is JSON so it can be
piped into other tools (the paper renders HTML, which is out of scope).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.core.storage_graph import RetrievalScheme
from repro.dlv.diff import diff_versions
from repro.dlv.repository import Repository
from repro.dlv import wrapper


def _print(data) -> None:
    json.dump(data, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


def _repo_target(args) -> str:
    """The repository location the command should act on.

    Priority: ``--store <url>``, then the ``DLV_STORE`` environment
    variable, then ``--repo`` (a plain directory path, backend
    auto-detected).
    """
    store = getattr(args, "store", None)
    if store:
        return store
    env = os.environ.get("DLV_STORE")
    if env:
        return env
    return args.repo


def _open_repo(args) -> Repository:
    return Repository.open(_repo_target(args))


def cmd_init(args) -> int:
    repo = Repository.init(_repo_target(args), backend=args.backend)
    try:
        out = {"initialized": repo.url, "backend": repo.backend.scheme}
    finally:
        repo.close()
    _print(out)
    return 0


def cmd_add(args) -> int:
    with _open_repo(args) as repo:
        staged = repo.add_files(args.paths)
    _print({"staged": staged})
    return 0


def cmd_commit(args) -> int:
    with _open_repo(args) as repo:
        net = wrapper.load_network(args.model_dir)
        net.name = args.name
        result = wrapper.load_train_result(args.model_dir)
        config = wrapper.load_solver(args.model_dir)
        version = repo.commit(
            net,
            name=args.name,
            message=args.message,
            parent=args.parent,
            train_result=result,
            hyperparams=config.to_dict() if config else None,
            float_scheme=args.float_scheme,
        )
    _print({"committed": version.ref, "id": version.id})
    return 0


def cmd_copy(args) -> int:
    with _open_repo(args) as repo:
        version = repo.copy_version(args.source, args.name, args.message)
    _print({"copied": version.ref})
    return 0


def cmd_convert(args) -> int:
    with _open_repo(args) as repo:
        report = repo.convert_snapshot_scheme(
            args.ref, args.snapshot, args.float_scheme
        )
    _print(report)
    return 0


def cmd_archive(args) -> int:
    with _open_repo(args) as repo:
        report = repo.archive(
            alpha=args.alpha,
            scheme=RetrievalScheme(args.scheme),
            algorithm=args.algorithm,
            dedup=args.dedup,
            page_size=args.page_size,
        )
    _print(report)
    return 0


def cmd_dedup(args) -> int:
    """``dlv dedup``: cross-model page-dedup stats and maintenance."""
    if args.dedup_cmd == "stats":
        with _open_repo(args) as repo:
            stats = repo.dedup_stats()
        if args.json:
            _print(stats)
        else:
            print(
                "dedup: {m} paged matrices, {u} unique pages, "
                "{r} references".format(
                    m=stats["page_matrices"],
                    u=stats["unique_pages"],
                    r=stats["page_references"],
                )
            )
            print(
                f"  logical {_human_bytes(stats['logical_bytes'])} -> "
                f"stored {_human_bytes(stats['stored_bytes'])} "
                f"(saved {_human_bytes(stats['bytes_saved'])})"
            )
        return 0
    if args.dedup_cmd == "run":
        with _open_repo(args) as repo:
            report = repo.archive(
                alpha=args.alpha, dedup=True, page_size=args.page_size
            )
        _print(report)
        return 0
    raise ValueError(f"unknown dedup subcommand {args.dedup_cmd!r}")


def _write_html(path: str, content: str) -> None:
    Path(path).write_text(content)
    _print({"html": str(Path(path).resolve())})


def cmd_list(args) -> int:
    with _open_repo(args) as repo:
        versions = repo.list_versions(args.pattern)
        lineage = repo.lineage_edges()
    version_rows = [
        {
            "id": v.id,
            "name": v.name,
            "created_at": v.created_at,
            "snapshots": len(v.snapshots),
            "accuracy": v.metadata.get("final_accuracy"),
        }
        for v in versions
    ]
    if args.html:
        from repro.dlv.render import render_lineage

        _write_html(args.html, render_lineage(version_rows, lineage))
        return 0
    _print(
        {
            "versions": version_rows,
            "lineage": [
                {"base": b, "derived": d, "message": m} for b, d, m in lineage
            ],
        }
    )
    return 0


def cmd_desc(args) -> int:
    with _open_repo(args) as repo:
        description = repo.describe(args.ref)
        if args.html:
            from repro.dlv.render import render_describe

            _write_html(
                args.html,
                render_describe(description, repo.training_log(args.ref)),
            )
            return 0
        _print(description)
    return 0


def cmd_log(args) -> int:
    with _open_repo(args) as repo:
        _print(repo.training_log(args.ref))
    return 0


def cmd_gc(args) -> int:
    with _open_repo(args) as repo:
        removed = repo.gc()
    _print({"chunks_removed": removed})
    return 0


def cmd_inspect(args) -> int:
    from repro.core.inspect import ascii_histogram

    with _open_repo(args) as repo:
        report = repo.inspect_matrix(
            args.ref, args.layer, args.param,
            snapshot_idx=args.snapshot, planes=args.planes, bins=args.bins,
        )
    _print(report["stats"])
    print(ascii_histogram(report["histogram"]))
    return 0


def cmd_prune(args) -> int:
    with _open_repo(args) as repo:
        report = repo.prune_snapshots(
            args.ref, keep_every=args.keep_every, keep_last=args.keep_last
        )
    _print(report)
    return 0


def cmd_export(args) -> int:
    with _open_repo(args) as repo:
        path = repo.export_model_dir(
            args.ref, args.dest, snapshot_idx=args.snapshot
        )
    _print({"exported": str(path)})
    return 0


def cmd_verify(args) -> int:
    with _open_repo(args) as repo:
        report = repo.verify()
    _print(report)
    return 0 if report["ok"] else 1


def cmd_fsck(args) -> int:
    from repro.dlv.fsck import run_fsck

    with _open_repo(args) as repo:
        report = run_fsck(repo, repair=args.repair)
    data = report.to_dict()
    if args.json:
        _print(data)
    else:
        for finding in report.findings:
            status = (
                f" [repaired: {finding.repair}]" if finding.repaired else ""
            )
            print(
                f"{finding.code} {finding.severity}: "
                f"{finding.message}{status}"
            )
        print(
            "fsck: {chunks} chunks + {replica} replica blobs + {pages} "
            "pages re-hashed, {payloads} payloads checked; {errors} "
            "error(s), {warnings} warning(s) -> {verdict}".format(
                chunks=report.chunks_checked,
                replica=report.replica_checked,
                pages=report.pages_checked,
                payloads=report.payloads_checked,
                errors=data["summary"]["error"],
                warnings=data["summary"]["warning"],
                verdict="clean" if report.clean else "NOT clean",
            )
        )
    return 0 if report.clean else 1


def cmd_diff(args) -> int:
    with _open_repo(args) as repo:
        a, b = repo.resolve(args.a), repo.resolve(args.b)
        weights_a = weights_b = None
        if args.parameters:
            weights_a = repo.get_snapshot_weights(a)
            weights_b = repo.get_snapshot_weights(b)
        report = diff_versions(a, b, weights_a, weights_b)
        if args.html:
            from repro.dlv.render import render_diff

            _write_html(args.html, render_diff(report))
            return 0
        _print(report)
    return 0


def cmd_eval(args) -> int:
    with _open_repo(args) as repo:
        with np.load(args.data) as data:
            x = data["x"]
            y = data["y"] if "y" in data else None
        if args.progressive:
            from repro.core.progressive import ProgressiveEvaluator

            version = repo.resolve(args.ref)
            snapshot = version.snapshots[args.snapshot]
            net = repo.load_network(version, args.snapshot)
            evaluator = ProgressiveEvaluator(
                net, repo.archive_view(), snapshot.key
            )
            progressive = evaluator.evaluate(x)
            out = {
                "predictions": progressive.predictions.tolist(),
                "bytes_fraction": progressive.bytes_fraction,
                "determined_fraction": {
                    str(k): v
                    for k, v in progressive.determined_fraction.items()
                },
            }
            if y is not None:
                out["accuracy"] = float(
                    (progressive.predictions == np.asarray(y)).mean()
                )
            _print(out)
            return 0
        result = repo.evaluate(args.ref, x, y, snapshot_idx=args.snapshot)
    out = {"predictions": result["predictions"].tolist()}
    if "accuracy" in result:
        out["accuracy"] = result["accuracy"]
    _print(out)
    return 0


def _human_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(count) < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{int(count)} B"
        count /= 1024
    return f"{count:.1f} GiB"  # pragma: no cover - loop always returns


def _render_stats_text(report: dict) -> None:
    repo_info = report["repository"]
    print(
        "repository: {versions} versions, {snapshots} snapshots, "
        "{chunks} chunks, {stored} stored".format(
            versions=repo_info["versions"],
            snapshots=repo_info["snapshots"],
            chunks=repo_info["chunks"],
            stored=_human_bytes(repo_info["stored_bytes"]),
        )
    )
    dedup = report.get("dedup")
    if dedup and dedup.get("page_matrices"):
        print(
            "dedup: {m} paged matrices, {u} unique pages, saved {s}".format(
                m=dedup["page_matrices"],
                u=dedup["unique_pages"],
                s=_human_bytes(dedup["bytes_saved"]),
            )
        )
    cache = report.get("cache")
    if cache:
        print(
            f"cache: hits={cache['hits']} misses={cache['misses']} "
            f"evictions={cache['evictions']} "
            f"hit_rate={100.0 * cache['hit_rate']:.1f}% "
            f"cached={_human_bytes(cache['cached_bytes'])}"
        )
    metrics = report["metrics"]
    if metrics["counters"]:
        print("counters:")
        for name, value in metrics["counters"].items():
            suffix = (
                f"  ({_human_bytes(value)})" if name.endswith("_bytes") else ""
            )
            print(f"  {name:<32} {value}{suffix}")
    if metrics["gauges"]:
        print("gauges:")
        for name, value in metrics["gauges"].items():
            print(f"  {name:<32} {value:g}")
    if metrics["histograms"]:
        print("histograms:")
        for name, hist in metrics["histograms"].items():
            mean = hist["mean"]
            print(
                f"  {name:<32} n={hist['count']} mean={mean:.6g} "
                f"max={hist['max'] if hist['max'] is not None else 0:.6g}"
            )
    if report.get("spans"):
        print("spans:")
        for span in report["spans"]:
            indent = "  " * span["depth"]
            attrs = " ".join(f"{k}={v}" for k, v in span["attrs"].items())
            print(
                f"  {indent}{span['name']} {span['elapsed'] * 1e3:.3f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )


def _filter_spans(spans: list[dict], min_ms: float, name: str) -> list[dict]:
    """Apply ``--min-ms`` / ``--name`` filters to span dicts."""
    kept = []
    for span in spans:
        if span.get("elapsed", 0.0) * 1e3 < min_ms:
            continue
        if name and name not in span.get("name", ""):
            continue
        kept.append(span)
    return kept


def _fetch_json(url: str, path: str, timeout: float = 10.0) -> dict:
    """GET ``url + path`` from a running dlv server; parse the JSON."""
    import urllib.request

    request = urllib.request.Request(url.rstrip("/") + path)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def cmd_trace(args) -> int:
    from repro import obs
    from repro.obs.export import mark_orphans, to_chrome, to_jsonl

    if args.url:
        spans = _fetch_json(args.url, "/v1/trace")["spans"]
    else:
        spans = mark_orphans(
            [span.to_dict() for span in obs.get_recorder().spans()]
        )
    spans = _filter_spans(spans, args.min_ms, args.name or "")
    if args.chrome:
        rendered = json.dumps(to_chrome(spans), indent=2)
    else:
        rendered = to_jsonl(spans)
    if args.out:
        Path(args.out).write_text(rendered + "\n")
        _print({
            "written": str(Path(args.out).resolve()),
            "spans": len(spans),
            "format": "chrome" if args.chrome else "jsonl",
        })
    else:
        sys.stdout.write(rendered + "\n")
    return 0


def cmd_slowlog(args) -> int:
    from repro.obs.cost import get_slowlog

    if args.url:
        report = _fetch_json(args.url, "/v1/slowlog")
    else:
        slowlog = get_slowlog()
        report = {
            "threshold_ms": slowlog.threshold_ms,
            "capacity": slowlog.capacity,
            "total_recorded": slowlog.total_recorded,
            "entries": slowlog.entries(),
        }
    if args.json:
        _print(report)
        return 0
    print(
        f"slowlog: threshold {report['threshold_ms']:g} ms, "
        f"{report['total_recorded']} recorded, "
        f"{len(report['entries'])} retained"
    )
    for entry in report["entries"]:
        cost = entry.get("cost") or {}
        print(
            "  {name:<20} {ms:>9.3f} ms  trace={trace}  "
            "bytes={bytes_read} planes={planes}".format(
                name=entry["name"],
                ms=entry["ms"],
                trace=(entry.get("trace_id") or "-")[:16],
                bytes_read=cost.get("bytes_read", 0),
                planes=cost.get("planes_fetched", 0),
            )
        )
    return 0


def _render_top(payload: dict) -> list[str]:
    """One refresh of the ``dlv top`` board, as printable lines."""
    metrics = payload.get("metrics", payload)
    lines = []
    queues = payload.get("queues")
    if queues is not None:
        depth = " ".join(f"{k}={v}" for k, v in sorted(queues.items()))
        lines.append(f"queues: {depth or '(idle)'}")
    cache = payload.get("plane_cache")
    if cache:
        lines.append(
            "plane cache: hits={hits} misses={misses} "
            "cached={cached}".format(
                hits=cache.get("hits", 0),
                misses=cache.get("misses", 0),
                cached=_human_bytes(cache.get("cached_bytes", 0)),
            )
        )
    windows = metrics.get("windows") or {}
    if windows:
        lines.append(
            f"{'latency window':<24} {'count':>7} {'mean':>9} "
            f"{'p50':>9} {'p95':>9} {'p99':>9}"
        )
        for name, snap in sorted(windows.items()):
            lines.append(
                "{name:<24} {count:>7} {mean:>8.2f}m {p50:>8.2f}m "
                "{p95:>8.2f}m {p99:>8.2f}m".format(
                    name=name,
                    count=snap["count"],
                    mean=snap["mean"] * 1e3,
                    p50=snap["p50"] * 1e3,
                    p95=snap["p95"] * 1e3,
                    p99=snap["p99"] * 1e3,
                )
            )
    counters = metrics.get("counters") or {}
    interesting = {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(("serve.", "hub.", "store.", "cache."))
    }
    for name, value in interesting.items():
        suffix = f"  ({_human_bytes(value)})" if name.endswith("_bytes") else ""
        lines.append(f"  {name:<32} {value}{suffix}")
    return lines


def cmd_top(args) -> int:
    import time

    iterations = args.iterations
    count = 0
    while True:
        try:
            payload = _fetch_json(args.url, "/metrics")
        except OSError as exc:
            print(f"dlv top: {args.url} unreachable: {exc}", file=sys.stderr)
            return 1
        lines = _render_top(payload)
        if not args.no_clear:
            sys.stdout.write("\x1b[2J\x1b[H")
        print(f"dlv top — {args.url}  (refresh {args.interval:g}s)")
        for line in lines:
            print(line)
        sys.stdout.flush()
        count += 1
        if iterations and count >= iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


def cmd_hub_serve(args) -> int:
    import signal
    import threading

    from repro.hub.httpd import HubHTTPServer
    from repro.hub.replication import Replicator
    from repro.hub.server import HubServer

    store = HubServer(args.hub)
    replicator = None
    role = "primary"
    if args.peers:
        # Replica mode: keep this hub in sync with the named primary
        # tier; the HTTP surface stays read-only either way.
        role = "replica"
        replicator = Replicator(
            store,
            args.peers,
            interval_s=args.sync_interval,
            timeout=args.timeout,
        )
    server = HubHTTPServer(
        store,
        host=args.host or "127.0.0.1",
        port=args.port or 0,
        peer_name=args.peer_name or ("hub" if role == "primary" else "replica"),
        role=role,
        replicator=replicator,
    )
    server.start()
    if replicator is not None:
        replicator.start()
    # One flushed JSON line so wrappers can discover the bound port.
    _print(
        {
            "hub": str(server.server.root),
            "url": server.url,
            "port": server.port,
            "peer": server.peer_name,
            "role": server.role,
            "peers": args.peers or "",
        }
    )
    sys.stdout.flush()
    stop_event = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop_event.set())
    stop_event.wait()
    if replicator is not None:
        replicator.stop()
    server.stop()
    _print({"stopped": True})
    return 0


def cmd_hub(args) -> int:
    if args.hub_cmd == "status":
        return cmd_hub_status(args)
    raise ValueError(f"unknown hub subcommand {args.hub_cmd!r}")


def cmd_hub_status(args) -> int:
    from repro.hub.fleet import FleetClient

    client = FleetClient(args.hub, timeout=args.timeout)
    try:
        report = client.status()
    finally:
        client.close()
    healthy = sum(1 for entry in report if entry.get("ok"))
    watermarks = [
        entry.get("watermark") for entry in report if entry.get("ok")
    ]
    head = max((w for w in watermarks if w is not None), default=0)
    for entry in report:
        if entry.get("ok") and entry.get("watermark") is not None:
            entry["lag"] = head - entry["watermark"]
    if args.json:
        _print({"peers": report, "healthy": healthy, "watermark": head})
    else:
        print(f"hub fleet: {healthy}/{len(report)} peers healthy, "
              f"head watermark {head}")
        for entry in report:
            if entry.get("ok"):
                print(
                    f"  {entry['url']:<28} {entry.get('role', '?'):<8} "
                    f"peer={entry.get('peer', '?'):<10} "
                    f"watermark={entry.get('watermark')} "
                    f"lag={entry.get('lag')} breaker={entry['breaker']}"
                )
            else:
                print(
                    f"  {entry['url']:<28} DOWN     {entry.get('error', '')}"
                )
    return 0 if healthy == len(report) else 1


def cmd_stats(args) -> int:
    from repro import obs
    from repro.core.cache import RetrievalCache

    with _open_repo(args) as repo:
        versions = repo.list_versions()
        repo_info = {
            "versions": len(versions),
            "snapshots": sum(len(v.snapshots) for v in versions),
            "chunks": sum(1 for _ in repo.store.addresses()),
            "stored_bytes": repo.store.total_size(),
        }
        dedup_stats = repo.dedup_stats()
        cache_stats = None
        if not args.no_retrieval:
            # Exercise one group retrieval (twice: a cold pass then a warm
            # pass) through a cache wired to the global registry, so the
            # report shows live cache and chunkstore counters.
            with_snapshots = [v for v in versions if v.snapshots]
            if with_snapshots:
                archive = repo.archive_view()
                cache = RetrievalCache(archive, registry=obs.get_registry())
                latest = with_snapshots[-1]
                key = latest.snapshots[-1].key
                for _ in range(2):
                    cache.recreate_snapshot(key)
                cache_stats = cache.stats()
    report = {
        "repository": repo_info,
        "dedup": dedup_stats,
        "cache": cache_stats,
        "metrics": obs.dump_metrics(),
    }
    if args.spans:
        report["spans"] = _filter_spans(
            [span.to_dict() for span in obs.get_recorder().spans()],
            args.min_ms,
            args.name or "",
        )
    if args.json:
        _print(report)
    else:
        _render_stats_text(report)
    return 0


def cmd_query(args) -> int:
    from repro.dql.executor import DQLExecutor

    with _open_repo(args) as repo:
        executor = DQLExecutor(repo, strict=args.strict)
        result = executor.run(args.dql)
    _print(result.to_dict())
    return 0


def cmd_check(args) -> int:
    """Static diagnostics.  Exit status: 0 = no error-severity findings
    (warnings/info do not fail the command), 1 = at least one error,
    2 = usage/repo errors (argparse or missing repository)."""
    from repro import analysis
    from repro.analysis.diagnostics import codes_for_pass
    from repro.dnn.network import Network

    if args.list_codes:
        codes = codes_for_pass(args.pass_name)
        if args.json:
            _print({"codes": codes})
        else:
            for code, description in codes.items():
                print(f"{code}  {description}")
        return 0

    diagnostics = []
    checked: dict[str, object] = {}
    if args.lint:
        diagnostics.extend(analysis.lint_paths(args.lint))
        checked["lint_paths"] = list(args.lint)
    if args.conc is not None:
        conc_paths = args.conc or ["src/repro"]
        missing = [p for p in conc_paths if not Path(p).exists()]
        if missing:
            # A vacuous pass over a mistyped path must not look clean.
            print(
                f"error: no such path: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 2
        diagnostics.extend(analysis.conc_check_paths(conc_paths))
        checked["conc_paths"] = list(conc_paths)
    file_passes = args.lint or args.conc is not None
    needs_repo = args.dql is not None or not (file_passes or args.dql)
    if needs_repo:
        with _open_repo(args) as repo:
            if args.dql is not None:
                diagnostics.extend(analysis.check_query(args.dql, repo=repo))
                checked["dql"] = args.dql
            else:
                # Default pass: validate every (or one) version's DAG
                # statically, from the stored spec, without loading weights.
                versions = (
                    [repo.resolve(args.ref)]
                    if args.ref is not None
                    else repo.list_versions()
                )
                names = []
                for version in versions:
                    net = Network.from_spec(version.network)
                    for diag in analysis.check_network(net):
                        diagnostics.append(
                            type(diag)(
                                diag.code, diag.severity,
                                f"{version.name}: {diag.message}",
                                span=diag.span, hint=diag.hint,
                                source=diag.source, file=diag.file,
                            )
                        )
                    names.append(version.name)
                checked["networks"] = names
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = sum(1 for d in diagnostics if d.severity == "warning")
    if args.json:
        _print(
            {
                "checked": checked,
                "diagnostics": [d.to_dict() for d in diagnostics],
                "summary": {
                    "errors": errors,
                    "warnings": warnings,
                    "total": len(diagnostics),
                },
            }
        )
    else:
        for diag in diagnostics:
            print(analysis.format_diagnostic(diag))
        print(
            f"checked {', '.join(f'{k}={v}' for k, v in checked.items()) or 'nothing'}: "
            f"{len(diagnostics)} finding(s), {errors} error(s), "
            f"{warnings} warning(s)"
        )
    return 1 if errors else 0


def cmd_serve(args) -> int:
    import signal
    import threading

    from repro.serve import ModelServer, ServeConfig

    from repro.obs.propagation import parse_traceparent_env
    from repro.obs.tracing import trace_span

    # A driver that sets TRACEPARENT sees the whole boot — including any
    # hub pull — join its own trace (the de-facto CLI propagation rule).
    env_ctx = parse_traceparent_env()
    with trace_span(
        "dlv.serve.boot",
        trace_id=env_ctx.trace_id if env_ctx else None,
        remote_parent=env_ctx.span_id if env_ctx else None,
        hub=args.hub or "",
    ):
        repo_path = args.repo
        if args.hub is not None:
            if not args.name:
                raise ValueError("--hub requires --name <published repo>")
            from repro.hub.client import HubClient

            # Comma-separated --hub URLs name a replicated fleet;
            # HubClient routes those pulls through a FleetClient with
            # failover + resume, so one dead peer doesn't fail the boot.
            repo_path = HubClient(
                args.hub, timeout=args.hub_timeout
            ).pull_for_serving(args.name)
        config = ServeConfig().with_overrides(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_limit=args.queue_limit,
            cache_bytes=args.cache_mb << 20 if args.cache_mb else None,
            start_planes=args.start_planes,
            drain_timeout_s=args.drain_timeout,
        )
        server = ModelServer(
            repo_path,
            config,
            models=args.model or None,
            strict=args.strict,
        )
        server.start()
    # One flushed JSON line so wrappers can discover the bound port.
    _print(
        {
            "serving": server.address,
            "port": server.port,
            "models": server.scheduler.models(),
            "rejected": server.rejected,
        }
    )
    sys.stdout.flush()
    stop_event = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop_event.set())
    stop_event.wait()
    drained = server.stop(drain=True)
    _print({"stopped": True, "drained": drained})
    return 0 if drained else 1


def cmd_publish(args) -> int:
    from repro.hub.client import HubClient

    client = HubClient(args.hub)
    with _open_repo(args) as repo:
        record = client.publish(repo, name=args.name, description=args.message)
    _print({"published": record.name, "revision": record.revision})
    return 0


def cmd_search(args) -> int:
    from repro.hub.client import HubClient

    client = HubClient(args.hub)
    _print(
        [
            {
                "name": r.name,
                "description": r.description,
                "revision": r.revision,
                "models": r.model_names,
            }
            for r in client.search(args.pattern)
        ]
    )
    return 0


def cmd_pull(args) -> int:
    from repro.hub.client import HubClient

    client = HubClient(args.hub)
    path = client.pull(args.name, args.dest)
    _print({"pulled": args.name, "path": str(path)})
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dlv", description="DLV model version control (ModelHub)"
    )
    parser.add_argument(
        "--repo", default=".", help="repository directory (default: cwd)"
    )
    parser.add_argument(
        "--store", default=None, metavar="URL",
        help="repository storage URL (file://dir, sqlite://repo.db, "
             "mem://name); overrides --repo and the DLV_STORE env var",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="initialize a dlv repository")
    p.add_argument(
        "--backend", default=None,
        choices=["local-fs", "sqlite", "memory"],
        help="storage substrate for a bare-path target (URLs carry "
             "their own scheme); sqlite lands the whole repo in "
             "<repo>/.dlv/repo.db",
    )
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("add", help="stage files for the next commit")
    p.add_argument("paths", nargs="+")
    p.set_defaults(func=cmd_add)

    p = sub.add_parser("commit", help="commit a model directory")
    p.add_argument("--model-dir", required=True)
    p.add_argument("--name", required=True)
    p.add_argument("-m", "--message", default="")
    p.add_argument("--parent", default=None)
    p.add_argument("--float-scheme", default="float32")
    p.set_defaults(func=cmd_commit)

    p = sub.add_parser("copy", help="scaffold a model from an old one")
    p.add_argument("source")
    p.add_argument("name")
    p.add_argument("-m", "--message", default="")
    p.set_defaults(func=cmd_copy)

    p = sub.add_parser(
        "convert", help="re-encode a snapshot with a lossier float scheme"
    )
    p.add_argument("ref")
    p.add_argument("--snapshot", type=int, default=-1)
    p.add_argument("--float-scheme", required=True)
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("archive", help="re-optimize parameter storage")
    p.add_argument("--alpha", type=float, default=2.0)
    p.add_argument(
        "--scheme",
        choices=[s.value for s in RetrievalScheme],
        default="independent",
    )
    p.add_argument(
        "--algorithm",
        choices=[
            "best", "mst", "spt", "last", "pas-mt", "pas-pt", "spt-tighten",
        ],
        default="best",
    )
    p.add_argument(
        "--dedup", action="store_true",
        help="allow page-dedup payloads (cross-model similarity store)",
    )
    p.add_argument(
        "--page-size", type=int, default=None,
        help="dedup page granularity in bytes (default 1024)",
    )
    p.set_defaults(func=cmd_archive)

    p = sub.add_parser("dedup", help="cross-model page dedup operations")
    dedup_sub = p.add_subparsers(dest="dedup_cmd", required=True)
    d = dedup_sub.add_parser("stats", help="family-wide dedup accounting")
    d.add_argument("--json", action="store_true", help="machine-readable output")
    d.set_defaults(func=cmd_dedup)
    d = dedup_sub.add_parser("run", help="re-archive with dedup enabled")
    d.add_argument("--alpha", type=float, default=2.0)
    d.add_argument("--page-size", type=int, default=None)
    d.set_defaults(func=cmd_dedup)

    p = sub.add_parser("list", help="list models and lineage")
    p.add_argument("--pattern", default=None, help="SQL LIKE name filter")
    p.add_argument("--html", default=None, help="write an HTML report here")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("desc", help="describe a model version")
    p.add_argument("ref")
    p.add_argument("--html", default=None, help="write an HTML report here")
    p.set_defaults(func=cmd_desc)

    p = sub.add_parser("log", help="print a version's training log")
    p.add_argument("ref")
    p.set_defaults(func=cmd_log)

    p = sub.add_parser("gc", help="remove unreferenced parameter chunks")
    p.set_defaults(func=cmd_gc)

    p = sub.add_parser("verify", help="check repository integrity")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "fsck", help="deep integrity check (re-hash blobs, catalog audit)"
    )
    p.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt blobs and restore/re-materialize payloads",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser(
        "inspect", help="segment-only stats/histogram of a parameter matrix"
    )
    p.add_argument("ref")
    p.add_argument("--layer", required=True)
    p.add_argument("--param", default="W")
    p.add_argument("--snapshot", type=int, default=-1)
    p.add_argument("--planes", type=int, default=2)
    p.add_argument("--bins", type=int, default=10)
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("prune", help="drop intermediate checkpoints")
    p.add_argument("ref")
    p.add_argument("--keep-every", type=int, default=2)
    p.add_argument("--keep-last", type=int, default=1)
    p.set_defaults(func=cmd_prune)

    p = sub.add_parser("export", help="write a model directory for a version")
    p.add_argument("ref")
    p.add_argument("dest")
    p.add_argument("--snapshot", type=int, default=-1)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("diff", help="compare two model versions")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--parameters", action="store_true")
    p.add_argument("--html", default=None, help="write an HTML report here")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("eval", help="evaluate a model on an .npz dataset")
    p.add_argument("ref")
    p.add_argument("data", help=".npz with arrays x (and optionally y)")
    p.add_argument("--snapshot", type=int, default=-1)
    p.add_argument(
        "--progressive", action="store_true",
        help="answer from high-order byte segments with exactness guarantee",
    )
    p.set_defaults(func=cmd_eval)

    p = sub.add_parser(
        "stats", help="repository storage + live telemetry counters"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--spans", action="store_true",
        help="include recorded trace spans",
    )
    p.add_argument(
        "--no-retrieval", action="store_true",
        help="report storage stats only; skip the instrumented retrieval",
    )
    p.add_argument(
        "--min-ms", type=float, default=0.0,
        help="with --spans: only spans at least this many ms long",
    )
    p.add_argument(
        "--name", default=None,
        help="with --spans: only spans whose name contains this substring",
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("trace", help="work with recorded trace spans")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    pe = tsub.add_parser(
        "export", help="export spans as JSONL or Chrome trace-event JSON"
    )
    pe.add_argument(
        "--chrome", action="store_true",
        help="Chrome trace-event JSON (open in chrome://tracing / Perfetto)",
    )
    pe.add_argument(
        "--url", default=None,
        help="export a running server's /v1/trace instead of this process",
    )
    pe.add_argument("--out", default=None, help="write here instead of stdout")
    pe.add_argument(
        "--min-ms", type=float, default=0.0,
        help="only spans at least this many ms long",
    )
    pe.add_argument(
        "--name", default=None,
        help="only spans whose name contains this substring",
    )
    pe.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "slowlog", help="requests that crossed the slow threshold"
    )
    p.add_argument(
        "--url", default=None,
        help="read a running server's /v1/slowlog instead of this process",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_slowlog)

    p = sub.add_parser(
        "top", help="live latency/counter board for a running server"
    )
    p.add_argument("--url", required=True, help="server base url")
    p.add_argument(
        "--interval", type=float, default=2.0, help="refresh period, seconds"
    )
    p.add_argument(
        "--iterations", type=int, default=0,
        help="stop after N refreshes (0: run until interrupted)",
    )
    p.add_argument(
        "--no-clear", action="store_true",
        help="append refreshes instead of clearing the screen",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("query", help="run a DQL statement")
    p.add_argument("dql")
    p.add_argument(
        "--strict", action="store_true",
        help="run static analysis first; refuse to execute on errors",
    )
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "check", help="static diagnostics for DQL, networks, and code"
    )
    p.add_argument(
        "--dql", default=None, metavar="QUERY",
        help="analyze this DQL statement instead of the repo networks",
    )
    p.add_argument(
        "--ref", default=None,
        help="validate just this version's network (default: all versions)",
    )
    p.add_argument(
        "--lint", nargs="+", default=None, metavar="PATH",
        help="also run the repo-invariant linter over these files/dirs",
    )
    p.add_argument(
        "--conc", nargs="*", default=None, metavar="PATH",
        help="run the concurrency checker (CONC4xx) over these files/dirs "
        "(bare --conc defaults to src/repro)",
    )
    p.add_argument(
        "--list-codes", action="store_true",
        help="print the diagnostic code table and exit "
        "(exit status: 0 always)",
    )
    p.add_argument(
        "--pass", dest="pass_name", default=None,
        choices=["dql", "net", "lint", "conc"],
        help="with --list-codes: only this pass's codes",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "serve", help="serve model snapshots over HTTP (progressive + batched)"
    )
    p.add_argument("--host", default=None, help="bind address")
    p.add_argument(
        "--port", type=int, default=None,
        help="bind port (default 0: OS-assigned, reported on stdout)",
    )
    p.add_argument(
        "--model", action="append", default=None, metavar="NAME",
        help="serve only this version name (repeatable; default: all)",
    )
    p.add_argument("--max-batch", type=int, default=None)
    p.add_argument("--max-wait-ms", type=float, default=None)
    p.add_argument("--queue-limit", type=int, default=None)
    p.add_argument("--cache-mb", type=int, default=None)
    p.add_argument("--start-planes", type=int, default=None)
    p.add_argument("--drain-timeout", type=float, default=None)
    p.add_argument(
        "--strict", action="store_true",
        help="abort startup when any snapshot fails network validation",
    )
    p.add_argument(
        "--hub", default=None,
        help="pull --name from this hub into a scratch dir and serve it "
             "(comma-separated URLs route through the fleet client)",
    )
    p.add_argument(
        "--hub-timeout", type=float, default=30.0,
        help="socket timeout for hub pull requests, seconds",
    )
    p.add_argument(
        "--name", default=None,
        help="published repository name (with --hub)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("publish", help="publish this repository to a hub")
    p.add_argument("--hub", required=True, help="hub directory")
    p.add_argument("--name", required=True)
    p.add_argument("-m", "--message", default="")
    p.set_defaults(func=cmd_publish)

    p = sub.add_parser("search", help="search a hub")
    p.add_argument("--hub", required=True)
    p.add_argument("pattern")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("pull", help="pull a repository from a hub")
    p.add_argument("--hub", required=True)
    p.add_argument("name")
    p.add_argument("dest")
    p.set_defaults(func=cmd_pull)

    p = sub.add_parser(
        "hub-serve", help="serve a hub directory over HTTP (search + pull)"
    )
    p.add_argument("--hub", required=True, help="hub directory")
    p.add_argument("--host", default=None, help="bind address")
    p.add_argument(
        "--port", type=int, default=None,
        help="bind port (default 0: OS-assigned, reported on stdout)",
    )
    p.add_argument(
        "--peers", default=None,
        help="comma-separated primary URL(s) to replicate from "
             "(starts this hub as a read replica)",
    )
    p.add_argument(
        "--peer-name", default=None,
        help="fleet identity reported by /healthz (default hub/replica)",
    )
    p.add_argument(
        "--sync-interval", type=float, default=2.0,
        help="replication poll period, seconds (with --peers)",
    )
    p.add_argument(
        "--timeout", type=float, default=10.0,
        help="socket timeout for replication requests, seconds",
    )
    p.set_defaults(func=cmd_hub_serve)

    p = sub.add_parser("hub", help="hub fleet operations")
    hub_sub = p.add_subparsers(dest="hub_cmd", required=True)
    s = hub_sub.add_parser(
        "status", help="probe every fleet peer: role, watermark, lag"
    )
    s.add_argument(
        "--hub", required=True,
        help="comma-separated hub URL(s) to probe",
    )
    s.add_argument("--json", action="store_true")
    s.add_argument(
        "--timeout", type=float, default=5.0,
        help="socket timeout per probe, seconds",
    )
    s.set_defaults(func=cmd_hub)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, FileNotFoundError, FileExistsError) as exc:
        print(f"dlv: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
