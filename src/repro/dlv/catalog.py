"""sqlite3 metadata catalog for DLV repositories.

ModelHub manages artifacts in a split back-end (Sec. I): structured data —
network structure, training logs, lineage, metadata — lives in a
relational database, while learned parameters live in PAS.  This module
owns the relational half.  The schema follows the paper's data model:

* ``model_version(name, id, ...)`` with the network ``N`` stored both as a
  JSON spec and relationally as ``node``/``edge`` EDBs (the DQL selector
  operator navigates these);
* ``metadata(version_id, key, value)`` and ``training_log`` for ``M``;
* ``file(version_id, path, sha)`` for ``F``;
* ``lineage(base, derived, commit)`` — the ``parent`` relation;
* ``snapshot`` / ``matrix`` / ``payload`` — the PAS-side bookkeeping:
  which matrices belong to which snapshot (co-usage groups) and how each
  matrix is currently stored (materialized or as a delta, with its byte
  plane chunk addresses).
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.core.storage.base import TxnState
from repro.dlv.objects import ModelVersion, Snapshot
from repro.faults import fs as ffs

_SCHEMA = """
CREATE TABLE IF NOT EXISTS model_version (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    message     TEXT NOT NULL DEFAULT '',
    created_at  TEXT NOT NULL,
    network     TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS node (
    version_id  INTEGER NOT NULL REFERENCES model_version(id),
    name        TEXT NOT NULL,
    kind        TEXT NOT NULL,
    attrs       TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (version_id, name)
);
CREATE TABLE IF NOT EXISTS edge (
    version_id  INTEGER NOT NULL REFERENCES model_version(id),
    src         TEXT NOT NULL,
    dst         TEXT NOT NULL,
    PRIMARY KEY (version_id, src, dst)
);
CREATE TABLE IF NOT EXISTS metadata (
    version_id  INTEGER NOT NULL REFERENCES model_version(id),
    key         TEXT NOT NULL,
    value       TEXT NOT NULL,
    PRIMARY KEY (version_id, key)
);
CREATE TABLE IF NOT EXISTS training_log (
    version_id  INTEGER NOT NULL REFERENCES model_version(id),
    iteration   INTEGER NOT NULL,
    loss        REAL,
    accuracy    REAL,
    lr          REAL,
    epoch       INTEGER
);
CREATE TABLE IF NOT EXISTS file (
    version_id  INTEGER NOT NULL REFERENCES model_version(id),
    path        TEXT NOT NULL,
    sha         TEXT NOT NULL,
    PRIMARY KEY (version_id, path)
);
CREATE TABLE IF NOT EXISTS lineage (
    base        INTEGER NOT NULL REFERENCES model_version(id),
    derived     INTEGER NOT NULL REFERENCES model_version(id),
    message     TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (base, derived)
);
CREATE TABLE IF NOT EXISTS snapshot (
    version_id   INTEGER NOT NULL REFERENCES model_version(id),
    idx          INTEGER NOT NULL,
    iteration    INTEGER NOT NULL,
    float_scheme TEXT NOT NULL DEFAULT 'float32',
    created_at   TEXT NOT NULL,
    PRIMARY KEY (version_id, idx)
);
CREATE TABLE IF NOT EXISTS matrix (
    matrix_id    TEXT PRIMARY KEY,
    version_id   INTEGER NOT NULL,
    snapshot_idx INTEGER NOT NULL,
    layer        TEXT NOT NULL,
    param        TEXT NOT NULL,
    shape        TEXT NOT NULL,
    nbytes       INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS payload (
    matrix_id    TEXT PRIMARY KEY REFERENCES matrix(matrix_id),
    parent       TEXT NOT NULL,
    kind         TEXT NOT NULL,
    chunks       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS commit_marker (
    txid        TEXT PRIMARY KEY,
    version_id  INTEGER NOT NULL,
    created_at  TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS page_ref (
    sha         TEXT PRIMARY KEY,
    refcount    INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS page_payload (
    matrix_id   TEXT NOT NULL,
    plane       INTEGER NOT NULL,
    manifest    TEXT NOT NULL,
    PRIMARY KEY (matrix_id, plane)
);
CREATE TABLE IF NOT EXISTS page_sketch (
    sketch      TEXT NOT NULL,
    sha         TEXT NOT NULL,
    PRIMARY KEY (sketch, sha)
);
CREATE INDEX IF NOT EXISTS idx_matrix_snapshot
    ON matrix(version_id, snapshot_idx);
CREATE INDEX IF NOT EXISTS idx_page_sketch_sha
    ON page_sketch(sha);
"""


class Catalog:
    """Thin data-access layer over the repository's sqlite3 database.

    Opens (and owns) its own connection when given a ``path``, or rides
    a connection borrowed from a storage backend whose blobs live in the
    same database (``conn=``) — in which case the catalog never closes
    it.  The transaction-nesting state can likewise be shared: a backend
    passes its :class:`~repro.core.storage.base.TxnState` so blob writes
    issued inside a :meth:`transaction` block join the same sqlite
    transaction and commit (or roll back) with it.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        conn: Optional[sqlite3.Connection] = None,
        txn: Optional[TxnState] = None,
    ) -> None:
        if conn is None:
            if path is None:
                raise ValueError("Catalog needs a path or a connection")
            self.path = Path(path)
            self._conn = sqlite3.connect(self.path)
            self._conn.row_factory = sqlite3.Row
            self._owns_conn = True
        else:
            self.path = Path(path) if path is not None else None
            self._conn = conn
            self._owns_conn = False
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._txn = txn if txn is not None else TxnState()

    def close(self) -> None:
        if self._owns_conn:
            self._conn.close()

    # -- transactions ---------------------------------------------------------

    def _maybe_commit(self) -> None:
        """Commit now, unless a :meth:`transaction` is open (deferred)."""
        if self._txn.depth == 0:
            self._conn.commit()

    @contextmanager
    def transaction(self) -> Iterator["Catalog"]:
        """Group catalog writes into one atomic sqlite transaction.

        Every write method inside the block defers its commit; the block
        exit commits once (all rows become visible together, which is
        what makes a crash mid-commit leave *zero* dangling rows) or
        rolls everything back on error.  Nesting is allowed — only the
        outermost exit commits.  The commit point is an instrumented
        fault site (``catalog.commit``), so crash-matrix tests cover
        "died just before the transaction landed".
        """
        self._txn.depth += 1
        try:
            yield self
        except BaseException:
            self._txn.depth -= 1
            if self._txn.depth == 0:
                self._conn.rollback()
            raise
        self._txn.depth -= 1
        if self._txn.depth == 0:
            try:
                ffs.checkpoint("catalog.commit")
            except BaseException:
                self._conn.rollback()
                raise
            self._conn.commit()

    # -- commit markers (journal protocol) ------------------------------------

    def add_commit_marker(
        self, txid: str, version_id: int, created_at: str = ""
    ) -> None:
        """Record that the transaction ``txid`` reached durability."""
        self._conn.execute(
            "INSERT OR REPLACE INTO commit_marker (txid, version_id, "
            "created_at) VALUES (?, ?, ?)",
            (txid, version_id, created_at),
        )
        self._maybe_commit()

    def has_commit_marker(self, txid: str) -> bool:
        row = self._conn.execute(
            "SELECT txid FROM commit_marker WHERE txid = ?", (txid,)
        ).fetchone()
        return row is not None

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- model versions ------------------------------------------------------

    def insert_version(
        self,
        name: str,
        message: str,
        created_at: str,
        network_spec: dict,
    ) -> int:
        cur = self._conn.execute(
            "INSERT INTO model_version (name, message, created_at, network) "
            "VALUES (?, ?, ?, ?)",
            (name, message, created_at, json.dumps(network_spec)),
        )
        version_id = cur.lastrowid
        for entry in network_spec.get("nodes", []):
            layer = entry["layer"]
            self._conn.execute(
                "INSERT INTO node (version_id, name, kind, attrs) "
                "VALUES (?, ?, ?, ?)",
                (
                    version_id,
                    layer["name"],
                    layer["kind"],
                    json.dumps(layer.get("hyperparams", {})),
                ),
            )
            self._conn.execute(
                "INSERT INTO edge (version_id, src, dst) VALUES (?, ?, ?)",
                (version_id, entry["input"], layer["name"]),
            )
        self._maybe_commit()
        return version_id

    def get_version(self, version_id: int) -> Optional[ModelVersion]:
        row = self._conn.execute(
            "SELECT * FROM model_version WHERE id = ?", (version_id,)
        ).fetchone()
        if row is None:
            return None
        version = ModelVersion(
            id=row["id"],
            name=row["name"],
            message=row["message"],
            created_at=row["created_at"],
            network=json.loads(row["network"]),
            metadata=self.get_metadata(version_id),
            files=self.get_files(version_id),
            snapshots=self.get_snapshots(version_id),
        )
        return version

    def find_versions(self, name_like: Optional[str] = None) -> list[ModelVersion]:
        """All versions, optionally filtered by a SQL LIKE pattern on name."""
        if name_like is None:
            rows = self._conn.execute(
                "SELECT id FROM model_version ORDER BY id"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT id FROM model_version WHERE name LIKE ? ORDER BY id",
                (name_like,),
            ).fetchall()
        return [self.get_version(r["id"]) for r in rows]

    def latest_version_id(self) -> Optional[int]:
        row = self._conn.execute(
            "SELECT MAX(id) AS m FROM model_version"
        ).fetchone()
        return row["m"]

    # -- metadata / logs / files -------------------------------------------------

    def set_metadata(self, version_id: int, values: dict) -> None:
        for key, value in values.items():
            self._conn.execute(
                "INSERT OR REPLACE INTO metadata (version_id, key, value) "
                "VALUES (?, ?, ?)",
                (version_id, key, json.dumps(value)),
            )
        self._maybe_commit()

    def get_metadata(self, version_id: int) -> dict:
        rows = self._conn.execute(
            "SELECT key, value FROM metadata WHERE version_id = ?",
            (version_id,),
        ).fetchall()
        return {r["key"]: json.loads(r["value"]) for r in rows}

    def add_training_log(self, version_id: int, entries: Iterable[dict]) -> None:
        self._conn.executemany(
            "INSERT INTO training_log (version_id, iteration, loss, accuracy, "
            "lr, epoch) VALUES (?, ?, ?, ?, ?, ?)",
            [
                (
                    version_id,
                    e.get("iteration"),
                    e.get("loss"),
                    e.get("accuracy"),
                    e.get("lr"),
                    e.get("epoch"),
                )
                for e in entries
            ],
        )
        self._maybe_commit()

    def get_training_log(self, version_id: int) -> list[dict]:
        rows = self._conn.execute(
            "SELECT iteration, loss, accuracy, lr, epoch FROM training_log "
            "WHERE version_id = ? ORDER BY iteration",
            (version_id,),
        ).fetchall()
        return [dict(r) for r in rows]

    def add_files(self, version_id: int, files: dict[str, str]) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO file (version_id, path, sha) VALUES (?, ?, ?)",
            [(version_id, p, s) for p, s in files.items()],
        )
        self._maybe_commit()

    def get_files(self, version_id: int) -> dict[str, str]:
        rows = self._conn.execute(
            "SELECT path, sha FROM file WHERE version_id = ?", (version_id,)
        ).fetchall()
        return {r["path"]: r["sha"] for r in rows}

    def all_file_shas(self) -> set[str]:
        """Every associated-file digest referenced by any version."""
        rows = self._conn.execute("SELECT DISTINCT sha FROM file").fetchall()
        return {r["sha"] for r in rows}

    # -- lineage ----------------------------------------------------------------

    def add_lineage(self, base: int, derived: int, message: str = "") -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO lineage (base, derived, message) "
            "VALUES (?, ?, ?)",
            (base, derived, message),
        )
        self._maybe_commit()

    def get_parents(self, version_id: int) -> list[int]:
        rows = self._conn.execute(
            "SELECT base FROM lineage WHERE derived = ?", (version_id,)
        ).fetchall()
        return [r["base"] for r in rows]

    def get_children(self, version_id: int) -> list[int]:
        rows = self._conn.execute(
            "SELECT derived FROM lineage WHERE base = ?", (version_id,)
        ).fetchall()
        return [r["derived"] for r in rows]

    def all_lineage(self) -> list[tuple[int, int, str]]:
        rows = self._conn.execute(
            "SELECT base, derived, message FROM lineage ORDER BY derived"
        ).fetchall()
        return [(r["base"], r["derived"], r["message"]) for r in rows]

    # -- snapshots & PAS bookkeeping ----------------------------------------------

    def add_snapshot(self, snapshot: Snapshot) -> None:
        self._conn.execute(
            "INSERT INTO snapshot (version_id, idx, iteration, float_scheme, "
            "created_at) VALUES (?, ?, ?, ?, ?)",
            (
                snapshot.version_id,
                snapshot.index,
                snapshot.iteration,
                snapshot.float_scheme,
                snapshot.created_at,
            ),
        )
        self._maybe_commit()

    def get_snapshots(self, version_id: int) -> list[Snapshot]:
        rows = self._conn.execute(
            "SELECT * FROM snapshot WHERE version_id = ? ORDER BY idx",
            (version_id,),
        ).fetchall()
        return [
            Snapshot(
                version_id=r["version_id"],
                index=r["idx"],
                iteration=r["iteration"],
                float_scheme=r["float_scheme"],
                created_at=r["created_at"],
            )
            for r in rows
        ]

    def add_matrix(
        self,
        matrix_id: str,
        version_id: int,
        snapshot_idx: int,
        layer: str,
        param: str,
        shape: tuple,
        nbytes: int,
    ) -> None:
        self._conn.execute(
            "INSERT INTO matrix (matrix_id, version_id, snapshot_idx, layer, "
            "param, shape, nbytes) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                matrix_id,
                version_id,
                snapshot_idx,
                layer,
                param,
                json.dumps(list(shape)),
                nbytes,
            ),
        )

    def get_matrices(
        self, version_id: Optional[int] = None, snapshot_idx: Optional[int] = None
    ) -> list[dict]:
        query = "SELECT * FROM matrix"
        clauses, args = [], []
        if version_id is not None:
            clauses.append("version_id = ?")
            args.append(version_id)
        if snapshot_idx is not None:
            clauses.append("snapshot_idx = ?")
            args.append(snapshot_idx)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        rows = self._conn.execute(query, args).fetchall()
        return [
            {
                "matrix_id": r["matrix_id"],
                "version_id": r["version_id"],
                "snapshot_idx": r["snapshot_idx"],
                "layer": r["layer"],
                "param": r["param"],
                "shape": tuple(json.loads(r["shape"])),
                "nbytes": r["nbytes"],
            }
            for r in rows
        ]

    def set_payload(
        self, matrix_id: str, parent: str, kind: str, chunks: list[str]
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO payload (matrix_id, parent, kind, chunks) "
            "VALUES (?, ?, ?, ?)",
            (matrix_id, parent, kind, json.dumps(chunks)),
        )

    def get_payload(self, matrix_id: str) -> Optional[dict]:
        row = self._conn.execute(
            "SELECT * FROM payload WHERE matrix_id = ?", (matrix_id,)
        ).fetchone()
        if row is None:
            return None
        return {
            "matrix_id": row["matrix_id"],
            "parent": row["parent"],
            "kind": row["kind"],
            "chunks": json.loads(row["chunks"]),
        }

    def all_payloads(self) -> list[dict]:
        rows = self._conn.execute("SELECT * FROM payload").fetchall()
        return [
            {
                "matrix_id": r["matrix_id"],
                "parent": r["parent"],
                "kind": r["kind"],
                "chunks": json.loads(r["chunks"]),
            }
            for r in rows
        ]

    # -- dedup page bookkeeping ---------------------------------------------------

    def set_page_manifest(self, matrix_id: str, plane: int, manifest: dict) -> None:
        """Record the page manifest of one plane of a page-encoded payload."""
        self._conn.execute(
            "INSERT OR REPLACE INTO page_payload (matrix_id, plane, manifest) "
            "VALUES (?, ?, ?)",
            (matrix_id, plane, json.dumps(manifest)),
        )
        self._maybe_commit()

    def get_page_manifests(self, matrix_id: str) -> dict[int, dict]:
        rows = self._conn.execute(
            "SELECT plane, manifest FROM page_payload WHERE matrix_id = ?",
            (matrix_id,),
        ).fetchall()
        return {r["plane"]: json.loads(r["manifest"]) for r in rows}

    def all_page_manifests(self) -> list[tuple[str, int, dict]]:
        rows = self._conn.execute(
            "SELECT matrix_id, plane, manifest FROM page_payload "
            "ORDER BY matrix_id, plane"
        ).fetchall()
        return [
            (r["matrix_id"], r["plane"], json.loads(r["manifest"])) for r in rows
        ]

    def delete_page_manifests(self, matrix_id: str) -> None:
        self._conn.execute(
            "DELETE FROM page_payload WHERE matrix_id = ?", (matrix_id,)
        )
        self._maybe_commit()

    def bump_page_ref(self, sha: str, delta: int) -> int:
        """Adjust one page's reference count; returns the new count.

        Rows at zero (or below — drift repaired by fsck F402) are
        dropped so the table mirrors the set of live pages.
        """
        self._conn.execute(
            "INSERT INTO page_ref (sha, refcount) VALUES (?, 0) "
            "ON CONFLICT(sha) DO NOTHING",
            (sha,),
        )
        self._conn.execute(
            "UPDATE page_ref SET refcount = refcount + ? WHERE sha = ?",
            (delta, sha),
        )
        row = self._conn.execute(
            "SELECT refcount FROM page_ref WHERE sha = ?", (sha,)
        ).fetchone()
        count = row["refcount"] if row is not None else 0
        if count <= 0:
            self._conn.execute("DELETE FROM page_ref WHERE sha = ?", (sha,))
        self._maybe_commit()
        return max(0, count)

    def page_refcounts(self) -> dict[str, int]:
        rows = self._conn.execute(
            "SELECT sha, refcount FROM page_ref"
        ).fetchall()
        return {r["sha"]: r["refcount"] for r in rows}

    def replace_page_refcounts(self, counts: dict[str, int]) -> None:
        """Overwrite the whole refcount table (fsck ``--repair``)."""
        self._conn.execute("DELETE FROM page_ref")
        self._conn.executemany(
            "INSERT INTO page_ref (sha, refcount) VALUES (?, ?)",
            [(sha, n) for sha, n in counts.items() if n > 0],
        )
        self._maybe_commit()

    def drop_page_refs(self, shas: Iterable[str]) -> None:
        self._conn.executemany(
            "DELETE FROM page_ref WHERE sha = ?", [(s,) for s in shas]
        )
        self._maybe_commit()

    def add_page_sketch(self, sketch: str, sha: str) -> None:
        self._conn.execute(
            "INSERT OR IGNORE INTO page_sketch (sketch, sha) VALUES (?, ?)",
            (sketch, sha),
        )
        self._maybe_commit()

    def sketch_candidates(self, sketches: Iterable[str], limit: int = 4) -> list[str]:
        """Base-page shas matching the most probe bands, best first."""
        keys = list(sketches)
        if not keys:
            return []
        placeholders = ",".join("?" for _ in keys)
        rows = self._conn.execute(
            f"SELECT sha, COUNT(*) AS votes FROM page_sketch "
            f"WHERE sketch IN ({placeholders}) "
            f"GROUP BY sha ORDER BY votes DESC, sha LIMIT ?",
            (*keys, limit),
        ).fetchall()
        return [r["sha"] for r in rows]

    def delete_page_sketches(self, shas: Iterable[str]) -> None:
        self._conn.executemany(
            "DELETE FROM page_sketch WHERE sha = ?", [(s,) for s in shas]
        )
        self._maybe_commit()

    def commit(self) -> None:
        self._maybe_commit()
