"""Regexp-style node selectors and layer templates (Sec. III-B).

The selector operator ``m1["conv[1,3,5]"]`` filters the nodes of a model
version's DAG by name pattern; ``prev``/``next`` attributes then allow
1-hop traversal.  Patterns support:

* literal characters (matched exactly);
* ``[...]`` character classes (passed through to the regex engine, so
  ``conv[1,3,5]`` matches ``conv1``/``conv3``/``conv5``);
* ``*`` — any substring;
* ``*($k)`` — any substring, captured as ``$k`` for substitution into new
  node names (``m1["conv*($1)"]`` + ``RELU("relu$1")`` names the inserted
  layer after the convolution it follows);
* ``?`` — any single character.

Layer templates such as ``POOL("MAX")`` serve two roles: as *conditions*
(``has POOL("MAX")``) they test a node's kind (and pool mode), and as
*constructors* in mutations they instantiate new layers.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.dnn.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.dnn.network import INPUT, Network
from repro.dql.ast_nodes import Template


class SelectorError(ValueError):
    """Raised for malformed selector patterns or unusable templates."""


def compile_selector(pattern: str) -> re.Pattern:
    """Translate a DQL selector pattern into an anchored regex."""
    out: list[str] = []
    i = 0
    group = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "*":
            capture = re.match(r"\*\(\$(\d+)\)", pattern[i:])
            if capture:
                out.append(f"(?P<cap{capture.group(1)}>.*)")
                i += capture.end()
            else:
                group += 1
                out.append(".*")
                i += 1
            continue
        if ch == "?":
            out.append(".")
            i += 1
            continue
        if ch == "[":
            end = pattern.find("]", i)
            if end < 0:
                raise SelectorError(f"unclosed character class in {pattern!r}")
            out.append(pattern[i : end + 1])
            i = end + 1
            continue
        out.append(re.escape(ch))
        i += 1
    try:
        return re.compile("^" + "".join(out) + "$")
    except re.error as exc:
        raise SelectorError(f"bad selector {pattern!r}: {exc}") from exc


def select_nodes(net: Network, pattern: str) -> list[tuple[str, dict[str, str]]]:
    """Nodes of ``net`` matching the pattern.

    Returns `(node_name, captures)` pairs in topological order, where
    ``captures`` maps ``"$k"`` to the captured substring.
    """
    regex = compile_selector(pattern)
    matches: list[tuple[str, dict[str, str]]] = []
    for name in net.topological_order():
        match = regex.match(name)
        if match:
            captures = {
                "$" + key[len("cap") :]: value
                for key, value in match.groupdict().items()
                if key.startswith("cap")
            }
            matches.append((name, captures))
    return matches


def traverse(net: Network, names: list[str], direction: str) -> list[str]:
    """1-hop ``next``/``prev`` traversal from a node set."""
    result: list[str] = []
    seen: set[str] = set()
    for name in names:
        if direction == "next":
            hops = net.consumers(name)
        elif direction == "prev":
            upstream = net.predecessor(name)
            hops = [] if upstream == INPUT else [upstream]
        else:
            raise SelectorError(f"unknown traversal {direction!r}")
        for hop in hops:
            if hop not in seen:
                seen.add(hop)
                result.append(hop)
    return result


def template_matches(layer: Layer, template: Template) -> bool:
    """Does a layer satisfy a template condition like ``POOL("MAX")``?"""
    if layer.kind != template.kind:
        return False
    if template.arg is None:
        return True
    if template.kind == "POOL":
        return layer.hyperparams.get("mode") == template.arg.upper()
    # For other kinds the argument is interpreted as a name pattern.
    return compile_selector(template.arg).match(layer.name) is not None


def substitute(text: str, captures: dict[str, str]) -> str:
    """Replace ``$k`` capture references inside a template argument."""
    # Longest keys first so $10 is not clobbered by $1.
    for key in sorted(captures, key=len, reverse=True):
        text = text.replace(key, captures[key])
    return text


def instantiate_template(
    template: Template, captures: dict[str, str], anchor_layer: Layer
) -> Layer:
    """Create a new layer from a mutation template.

    The template's string argument (after ``$k`` substitution) becomes the
    new node's name; layers needing structural hyperparameters (CONV, FULL,
    POOL) inherit sensible values from the anchor when not derivable.
    """
    name = substitute(template.arg or template.kind.lower(), captures)
    kind = template.kind
    if kind == "RELU":
        return ReLU(name)
    if kind == "SIGMOID":
        return Sigmoid(name)
    if kind == "TANH":
        return Tanh(name)
    if kind == "SOFTMAX":
        return Softmax(name)
    if kind == "FLATTEN":
        return Flatten(name)
    if kind == "DROPOUT":
        return Dropout(name, rate=0.5)
    if kind == "LRN":
        return LocalResponseNorm(name)
    if kind == "POOL":
        mode = "MAX"
        if template.arg and template.arg.upper() in ("MAX", "AVG"):
            mode = template.arg.upper()
            name = mode.lower() + "pool"
        cls = MaxPool2D if mode == "MAX" else AvgPool2D
        return cls(name, kernel=2)
    if kind == "CONV":
        filters = template.int_arg or anchor_layer.hyperparams.get("filters", 8)
        return Conv2D(name, filters=filters, kernel=3, pad=1)
    if kind == "FULL":
        units = template.int_arg or anchor_layer.hyperparams.get("units", 64)
        return Dense(name, units=units)
    raise SelectorError(f"cannot instantiate template kind {kind!r}")


def resolve_single_node(
    net: Network, pattern: Optional[str], description: str
) -> str:
    """Resolve a selector expected to match exactly one node (slice endpoints)."""
    if pattern is None:
        raise SelectorError(f"{description} requires a node selector")
    matches = select_nodes(net, pattern)
    if len(matches) != 1:
        raise SelectorError(
            f"{description} selector {pattern!r} matched "
            f"{len(matches)} nodes; need exactly 1"
        )
    return matches[0][0]
