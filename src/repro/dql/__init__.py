"""DQL — the model enumeration domain specific language (Sec. III-B.2).

DQL raises the abstraction level of the repetitive "adjust / tune / train /
compare" loop.  It has four key operations, mirroring the paper's
Queries 1-4:

* ``select``    — filter model versions by metadata and graph conditions;
* ``slice``     — extract a reusable sub-network between two nodes;
* ``construct`` — derive new architectures by inserting/deleting layers at
  selector-matched positions;
* ``evaluate``  — train enumerated candidates over hyperparameter
  combinations (``with`` / ``vary``) and keep the best (``keep``).

The implementation is a classic pipeline: :mod:`repro.dql.lexer` tokenizes,
:mod:`repro.dql.parser` builds the AST of :mod:`repro.dql.ast_nodes`,
and :mod:`repro.dql.executor` runs it against a DLV repository, with
:mod:`repro.dql.selector` handling the regexp-style node selectors and
layer templates.
"""

from repro.dql.executor import DQLExecutor, QueryResult
from repro.dql.parser import parse

__all__ = ["DQLExecutor", "QueryResult", "parse"]
