"""Execution engine for DQL queries against a DLV repository.

The executor binds query variables to model versions, evaluates the mixed
relational/graph conditions, performs slice/construct mutations on network
DAGs, and drives the train-and-keep loop of ``evaluate`` queries.  Query
results can be registered under a name so later queries can reference them
(the paper's ``evaluate m from "query3"``).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.dlv.objects import ModelVersion
from repro.dlv.repository import Repository
from repro.dnn.network import Network
from repro.dnn.training import Trainer, TrainResult, accuracy
from repro.dql import hyperparams as hp
from repro.dql.ast_nodes import (
    BoolOp,
    Comparison,
    Condition,
    ConstructQuery,
    EvaluateQuery,
    HasClause,
    Path,
    Query,
    SelectQuery,
    SliceQuery,
)
from repro.dql.parser import parse
from repro.obs.cost import cost_context, get_slowlog
from repro.obs.metrics import counter, histogram
from repro.obs.tracing import trace_span
from repro.dql.selector import (
    SelectorError,
    instantiate_template,
    resolve_single_node,
    select_nodes,
    template_matches,
    traverse,
)


class ExecutionError(RuntimeError):
    """Raised when a semantically invalid query is executed."""


@dataclass
class QueryResult:
    """The outcome of one DQL statement.

    Attributes:
        kind: The query verb (``select``/``slice``/``construct``/``evaluate``).
        versions: Matched model versions (select queries).
        networks: Derived candidate networks (slice/construct/evaluate).
        evaluations: Per-candidate training measurements (evaluate queries).
        cost: Storage/compute bill of executing the statement
            (:meth:`repro.obs.RequestCost.to_dict` shape); ``None`` for
            results constructed outside the executor.
    """

    kind: str
    versions: list[ModelVersion] = field(default_factory=list)
    networks: list[Network] = field(default_factory=list)
    evaluations: list[dict] = field(default_factory=list)
    cost: Optional[dict] = None

    def to_dict(self) -> dict:
        """JSON-friendly summary (used by ``dlv query``)."""
        return {
            "kind": self.kind,
            "versions": [
                {
                    "id": v.id,
                    "name": v.name,
                    "created_at": v.created_at,
                    "accuracy": v.metadata.get("final_accuracy"),
                }
                for v in self.versions
            ],
            "networks": [
                {
                    "name": n.name,
                    "layers": n.node_names(),
                    "signature": n.architecture_signature(),
                }
                for n in self.networks
            ],
            "evaluations": [
                {k: v for k, v in e.items() if k != "network"}
                for e in self.evaluations
            ],
            **({"cost": self.cost} if self.cost is not None else {}),
        }


class DQLExecutor:
    """Runs DQL statements against one repository.

    Args:
        repo: The DLV repository queried / mutated.
        commit_kept: When True, candidates surviving an evaluate query's
            ``keep`` clause are committed back into the repository ("save
            and work with", Sec. III-B).
        strict: When True, every statement is run through the static
            analyzer (:func:`repro.analysis.check_query`) first and
            execution is refused — with an
            :class:`~repro.analysis.AnalysisError` listing the spanned
            diagnostics — if any error-severity finding exists.  Derived
            networks are also validated (``build(validate=True)``) before
            weights are allocated.
    """

    def __init__(
        self,
        repo: Repository,
        commit_kept: bool = False,
        strict: bool = False,
    ) -> None:
        self.repo = repo
        self.commit_kept = commit_kept
        self.strict = strict
        self.results: dict[str, QueryResult] = {}
        self.configs: dict[str, dict] = {}

    def register_config(self, name: str, config: dict) -> None:
        """Make a tuning config available to ``with config = "<name>"``."""
        self.configs[name] = dict(config)

    def register_result(self, name: str, result: QueryResult) -> None:
        """Store a result so later queries can reference it by name."""
        self.results[name] = result

    # -- entry -------------------------------------------------------------

    def run(self, query: Union[str, Query], name: Optional[str] = None) -> QueryResult:
        """Execute one statement; optionally register the result by name."""
        text = query if isinstance(query, str) else None
        if isinstance(query, str):
            with trace_span("dql.parse") as parse_span:
                ast = parse(query)
            histogram("dql.parse_seconds").observe(parse_span.elapsed)
        else:
            ast = query
        if self.strict:
            self._analyze(ast, text)
        if isinstance(ast, SelectQuery):
            runner = self._run_select
        elif isinstance(ast, SliceQuery):
            runner = self._run_slice
        elif isinstance(ast, ConstructQuery):
            runner = self._run_construct
        elif isinstance(ast, EvaluateQuery):
            runner = self._run_evaluate
        else:  # pragma: no cover - parser produces only the above
            raise ExecutionError(f"unsupported query {type(ast).__name__}")
        kind = type(ast).__name__.removesuffix("Query").lower()
        with trace_span("dql.execute", kind=kind) as span:
            with cost_context() as cost:
                result = runner(ast)
            result.cost = cost.to_dict()
            span.set_attr("cost", result.cost)
        counter("dql.queries").inc()
        counter(f"dql.queries.{kind}").inc()
        histogram("dql.execute_seconds").observe(span.elapsed)
        get_slowlog().record(
            "dql.execute",
            span.elapsed * 1000.0,
            trace_id=span.trace_id,
            cost=result.cost,
            attrs={"kind": kind},
        )
        if name is not None:
            self.results[name] = result
        return result

    def _analyze(self, ast: Query, text: Optional[str]) -> None:
        """Strict-mode gate: refuse to execute on error diagnostics."""
        from repro.analysis.diagnostics import AnalysisError
        from repro.analysis.dql_check import check_query

        with trace_span("dql.analyze"):
            diagnostics = check_query(
                ast, repo=self.repo, configs=self.configs,
                results=self.results, text=text,
            )
        errors = [d for d in diagnostics if d.severity == "error"]
        if errors:
            counter("dql.strict_rejections").inc()
            raise AnalysisError(
                f"refusing to execute: {len(errors)} error diagnostic(s)",
                diagnostics,
            )

    # -- condition evaluation ---------------------------------------------------

    def _matching_versions(
        self, var: str, where: Optional[Condition]
    ) -> list[ModelVersion]:
        matches = []
        for version in self.repo.list_versions():
            if where is None or self._eval_condition(where, var, version):
                matches.append(version)
        return matches

    def _source_versions(
        self, var: str, where: Optional[Condition], source_query
    ) -> list[ModelVersion]:
        """Versions bound by slice/construct — whole repo, or a subquery."""
        if source_query is None:
            return self._matching_versions(var, where)
        nested = self.run(source_query)
        return [
            version
            for version in nested.versions
            if where is None or self._eval_condition(where, var, version)
        ]

    def _eval_condition(
        self, cond: Condition, var: str, version: ModelVersion,
        net: Optional[Network] = None,
    ) -> bool:
        if isinstance(cond, BoolOp):
            if cond.op == "not":
                return not self._eval_condition(
                    cond.operands[0], var, version, net
                )
            results = (
                self._eval_condition(op, var, version, net)
                for op in cond.operands
            )
            return all(results) if cond.op == "and" else any(results)
        if isinstance(cond, Comparison):
            return self._eval_comparison(cond, var, version)
        if isinstance(cond, HasClause):
            return self._eval_has(cond, var, version, net)
        raise ExecutionError(f"unknown condition {cond!r}")

    def _eval_comparison(
        self, cond: Comparison, var: str, version: ModelVersion
    ) -> bool:
        if cond.path.var != var:
            raise ExecutionError(
                f"unbound variable {cond.path.var!r} (bound: {var!r})"
            )
        value = self._attribute(version, cond.path)
        if value is None:
            return False
        if cond.op == "like":
            return fnmatch.fnmatch(
                str(value),
                str(cond.value).replace("%", "*").replace("_", "?"),
            )
        if isinstance(cond.value, (int, float)) and not isinstance(value, str):
            left, right = float(value), float(cond.value)
        else:
            left, right = str(value), str(cond.value)
        ops = {
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        if cond.op not in ops:
            raise ExecutionError(f"unknown comparison operator {cond.op!r}")
        return ops[cond.op](left, right)

    @staticmethod
    def _attribute(version: ModelVersion, path: Path) -> object:
        if not path.attrs:
            raise ExecutionError("comparison path needs an attribute")
        attr = path.attrs[0]
        if attr == "name":
            return version.name
        if attr in ("creation_time", "created_at"):
            return version.created_at
        if attr == "id":
            return version.id
        if attr in ("accuracy", "final_accuracy"):
            return version.metadata.get("final_accuracy")
        if attr in ("loss", "final_loss"):
            return version.metadata.get("final_loss")
        return version.metadata.get(attr)

    def _network_for(self, version: ModelVersion) -> Network:
        return Network.from_spec(version.network)

    def _eval_has(
        self, cond: HasClause, var: str, version: ModelVersion,
        net: Optional[Network] = None,
    ) -> bool:
        if cond.path.var != var:
            raise ExecutionError(
                f"unbound variable {cond.path.var!r} (bound: {var!r})"
            )
        if cond.path.selector is None:
            raise ExecutionError('"has" conditions need a node selector')
        network = net if net is not None else self._network_for(version)
        names = [n for n, _ in select_nodes(network, cond.path.selector)]
        for attr in cond.path.attrs:
            if attr in ("next", "prev"):
                names = traverse(network, names, attr)
            else:
                raise ExecutionError(
                    f"unsupported traversal attribute {attr!r}"
                )
        return any(
            template_matches(network[name], cond.template) for name in names
        )

    # -- select -----------------------------------------------------------------

    def _run_select(self, query: SelectQuery) -> QueryResult:
        versions = self._matching_versions(query.var, query.where)
        return QueryResult("select", versions=versions)

    # -- slice ------------------------------------------------------------------

    def _run_slice(self, query: SliceQuery) -> QueryResult:
        if (
            query.input_path.var != query.source_var
            or query.output_path.var != query.source_var
        ):
            raise ExecutionError(
                "slice endpoints must select nodes of the source variable"
            )
        versions = self._source_versions(
            query.source_var, query.where, query.source_query
        )
        networks = []
        for version in versions:
            net = self.repo.load_network(version)
            try:
                start = resolve_single_node(
                    net, query.input_path.selector, "slice input"
                )
                end = resolve_single_node(
                    net, query.output_path.selector, "slice output"
                )
                sliced = net.slice_between(
                    start, end, name=f"{version.name}-{query.new_var}"
                )
            except (SelectorError, ValueError, KeyError):
                continue
            networks.append(sliced)
        return QueryResult("slice", versions=versions, networks=networks)

    # -- construct -----------------------------------------------------------------

    def _anchor_conditions(
        self, where: Optional[Condition], var: str, selector: str
    ) -> list[HasClause]:
        """``has`` conditions in the where clause sharing a mutation's selector.

        Query 3 reads: *models whose* ``conv*`` *is followed by an AVG pool*
        — and the insert applies to exactly those convolutions.  We honour
        that by re-checking shared-selector has-conditions per anchor node.
        """
        found: list[HasClause] = []

        def walk(cond: Optional[Condition]) -> None:
            if cond is None:
                return
            if isinstance(cond, BoolOp):
                for op in cond.operands:
                    walk(op)
            elif isinstance(cond, HasClause):
                if cond.path.var == var and cond.path.selector == selector:
                    found.append(cond)

        walk(where)
        return found

    def _anchor_satisfies(
        self, net: Network, node: str, clauses: list[HasClause]
    ) -> bool:
        for clause in clauses:
            names = [node]
            for attr in clause.path.attrs:
                if attr in ("next", "prev"):
                    names = traverse(net, names, attr)
            if not any(
                template_matches(net[n], clause.template) for n in names
            ):
                return False
        return True

    def _run_construct(self, query: ConstructQuery) -> QueryResult:
        versions = self._source_versions(
            query.source_var, query.where, query.source_query
        )
        networks = []
        for version in versions:
            net = self.repo.load_network(version)
            derived = net.clone(name=f"{version.name}-{query.new_var}")
            mutated = False
            for mutation in query.mutations:
                if mutation.anchor.selector is None:
                    raise ExecutionError("mutation anchors need a selector")
                anchor_filter = self._anchor_conditions(
                    query.where, query.source_var, mutation.anchor.selector
                )
                for node, captures in select_nodes(
                    derived, mutation.anchor.selector
                ):
                    if not self._anchor_satisfies(derived, node, anchor_filter):
                        continue
                    if mutation.action == "insert":
                        layer = instantiate_template(
                            mutation.template, captures, derived[node]
                        )
                        if layer.name in derived:
                            continue
                        derived.insert_after(node, layer)
                        mutated = True
                    else:  # delete
                        if mutation.template is None:
                            derived.delete_node(node)
                            mutated = True
                        else:
                            for downstream in list(derived.consumers(node)):
                                if template_matches(
                                    derived[downstream], mutation.template
                                ):
                                    derived.delete_node(downstream)
                                    mutated = True
            if mutated:
                derived.build(seed=0, validate=self.strict)
                networks.append(derived)
        return QueryResult("construct", versions=versions, networks=networks)

    # -- evaluate -------------------------------------------------------------------

    def _candidate_networks(self, source) -> list[Network]:
        if isinstance(source, str):
            if source in self.results:
                result = self.results[source]
                if result.networks:
                    return [n.clone() for n in result.networks]
                return [self.repo.load_network(v) for v in result.versions]
            # Fall back to a name pattern over the repository.
            versions = self.repo.list_versions(source)
            if not versions:
                raise ExecutionError(
                    f"evaluate source {source!r} is neither a registered "
                    "result nor a model name pattern"
                )
            return [self.repo.load_network(v) for v in versions]
        nested = self.run(source)
        if nested.networks:
            return nested.networks
        return [self.repo.load_network(v) for v in nested.versions]

    def _run_evaluate(self, query: EvaluateQuery) -> QueryResult:
        candidates = self._candidate_networks(query.source)
        base_config = hp.load_config(query.config_ref, self.configs)
        configs = hp.expand_vary(base_config, query.vary)
        max_iterations = (
            query.keep.iterations
            if query.keep is not None and query.keep.mode == "top"
            else None
        )
        evaluations: list[dict] = []
        for net in candidates:
            for config in configs:
                candidate = net.clone()
                if not candidate.is_built:
                    candidate.build(
                        seed=int(config.get("seed", 0)),
                        validate=self.strict,
                    )
                dataset = hp.dataset_from_config(config)
                if tuple(dataset.input_shape) != tuple(candidate.input_shape):
                    raise ExecutionError(
                        f"config input_data shape {dataset.input_shape} does "
                        f"not match model {candidate.name!r} input "
                        f"{candidate.input_shape}; set data_size or use a "
                        "matching .npz"
                    )
                solver = hp.solver_from_config(config)
                trainer = Trainer(candidate, solver)
                stop_cb = None
                if max_iterations is not None:
                    stop_cb = lambda it, loss: it >= max_iterations  # noqa: E731
                result: TrainResult = trainer.fit(
                    dataset.x_train,
                    dataset.y_train,
                    dataset.x_test,
                    dataset.y_test,
                    callback=stop_cb,
                )
                evaluations.append(
                    {
                        "model": candidate.name,
                        "overrides": config.get("_overrides", {}),
                        "loss": result.final_loss,
                        "accuracy": accuracy(
                            candidate, dataset.x_test, dataset.y_test
                        ),
                        "iterations": (
                            result.log[-1]["iteration"] if result.log else 0
                        ),
                        "network": candidate,
                    }
                )
        kept = hp.apply_keep(evaluations, query.keep)
        if self.commit_kept:
            for index, row in enumerate(kept):
                network = row["network"]
                self.repo.commit(
                    network,
                    name=f"{network.name}-kept{index}",
                    message=f"kept by DQL evaluate ({row['overrides']})",
                    metadata={
                        "final_accuracy": row["accuracy"],
                        "final_loss": row["loss"],
                        "dql_overrides": row["overrides"],
                    },
                )
        return QueryResult(
            "evaluate",
            networks=[row["network"] for row in kept],
            evaluations=kept,
        )
