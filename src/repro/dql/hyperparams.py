"""Hyperparameter enumeration for DQL ``evaluate`` queries.

The paper separates network enumeration from hyperparameter tuning: the
``with`` operator binds a tuning config template, ``vary`` expresses the
multi-dimensional combinations to activate, ``auto`` applies a default
search strategy (grid search), and ``keep`` controls early stopping
(Sec. III-B, Query 4).
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Optional

from repro.dnn.data import Dataset, synthetic_digits, synthetic_faces
from repro.dnn.training import SGDConfig
from repro.dql.ast_nodes import KeepClause, VaryClause

#: Default grids for `vary ... auto` (grid search, per the paper's current
#: implementation), keyed by the last path component.
AUTO_GRIDS: dict[str, tuple] = {
    "base_lr": (0.1, 0.01, 0.001),
    "lr": (1.0, 0.1),
    "momentum": (0.9, 0.5),
    "batch_size": (16, 32),
}

#: Config keys that map straight onto SGDConfig fields.
_SOLVER_KEYS = {
    "base_lr", "momentum", "weight_decay", "batch_size", "epochs",
    "lr_policy", "lr_step", "lr_gamma", "seed", "snapshot_every",
}

_BUILTIN_DATASETS = {
    "synthetic-digits": synthetic_digits,
    "synthetic-faces": synthetic_faces,
}


class ConfigError(ValueError):
    """Raised for unusable tuning configs."""


def load_config(ref: str, registry: Optional[dict[str, dict]] = None) -> dict:
    """Resolve a ``with config = "..."`` reference.

    The reference is either a name registered on the executor or a path to
    a JSON file.
    """
    if registry and ref in registry:
        return dict(registry[ref])
    path = Path(ref)
    if path.exists():
        return json.loads(path.read_text())
    raise ConfigError(
        f"config {ref!r} is neither a registered name nor a JSON file"
    )


def _apply_dimension(config: dict, target: tuple[str, ...], value: object) -> dict:
    """Return a copy of ``config`` with one vary dimension set."""
    out = dict(config)
    if len(target) == 1:
        out[target[0]] = value
        return out
    if target[0] == "net" and len(target) == 3 and target[2] == "lr":
        multipliers = dict(out.get("lr_multipliers", {}))
        multipliers[target[1]] = value
        out["lr_multipliers"] = multipliers
        return out
    raise ConfigError(f"unsupported vary target config.{'.'.join(target)}")


def _grid_for(clause: VaryClause) -> tuple:
    if clause.values is not None:
        return tuple(clause.values)
    if clause.auto:
        key = clause.target[-1]
        if key not in AUTO_GRIDS:
            raise ConfigError(f"no auto grid for config.{'.'.join(clause.target)}")
        return AUTO_GRIDS[key]
    raise ConfigError("vary clause has neither values nor auto")


def expand_vary(config: dict, clauses: tuple[VaryClause, ...]) -> list[dict]:
    """Cartesian product of all vary dimensions over the base config.

    Each returned config carries an ``_overrides`` entry recording the
    dimension values that produced it (for reporting).
    """
    if not clauses:
        base = dict(config)
        base["_overrides"] = {}
        return [base]
    grids = [_grid_for(clause) for clause in clauses]
    expanded = []
    for combo in itertools.product(*grids):
        candidate = dict(config)
        overrides = {}
        for clause, value in zip(clauses, combo):
            candidate = _apply_dimension(candidate, clause.target, value)
            overrides["config." + ".".join(clause.target)] = value
        candidate["_overrides"] = overrides
        expanded.append(candidate)
    return expanded


def solver_from_config(config: dict) -> SGDConfig:
    """Build the optimizer config from the tuning-config dict."""
    kwargs = {k: config[k] for k in _SOLVER_KEYS if k in config}
    solver = SGDConfig(**kwargs)
    if "lr_multipliers" in config:
        solver.lr_multipliers = dict(config["lr_multipliers"])
    return solver


def dataset_from_config(config: dict) -> Dataset:
    """Resolve ``input_data``: a builtin dataset name or an .npz path.

    Builtin names (``synthetic-digits`` / ``synthetic-faces``) honour the
    optional ``data_size`` and ``data_classes`` config keys.  An ``.npz``
    file must contain ``x_train``, ``y_train``, ``x_test``, ``y_test``.
    """
    ref = config.get("input_data", "synthetic-digits")
    if ref in _BUILTIN_DATASETS:
        kwargs = {}
        if "data_size" in config:
            kwargs["size"] = int(config["data_size"])
        if "data_classes" in config:
            kwargs["num_classes"] = int(config["data_classes"])
        return _BUILTIN_DATASETS[ref](**kwargs)
    path = Path(ref)
    if path.exists():
        import numpy as np

        with np.load(path) as data:
            required = ("x_train", "y_train", "x_test", "y_test")
            missing = [k for k in required if k not in data]
            if missing:
                raise ConfigError(f"{ref}: missing arrays {missing}")
            return Dataset(
                name=path.stem,
                x_train=data["x_train"],
                y_train=data["y_train"],
                x_test=data["x_test"],
                y_test=data["y_test"],
                num_classes=int(data["y_train"].max()) + 1,
            )
    raise ConfigError(f"unknown input_data {ref!r}")


def metric_name(keep: KeepClause) -> str:
    """The metric a keep clause ranks by (from ``m["loss"]``-style paths)."""
    if keep.metric is None:
        return "loss"
    if keep.metric.selector:
        return keep.metric.selector
    if keep.metric.attrs:
        return keep.metric.attrs[-1]
    return "loss"


def apply_keep(evaluations: list[dict], keep: Optional[KeepClause]) -> list[dict]:
    """Filter candidate evaluations per the keep clause.

    ``top(k, metric, iters)`` keeps the best ``k`` (loss ascends, anything
    else descends); threshold mode keeps rows satisfying the comparison.
    """
    if keep is None or not evaluations:
        return evaluations
    metric = metric_name(keep)
    if keep.mode == "top":
        reverse = metric != "loss"
        ranked = sorted(
            evaluations,
            key=lambda e: e.get(metric, float("inf") if not reverse else 0.0),
            reverse=reverse,
        )
        return ranked[: keep.k]
    ops = {
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
    }
    compare = ops[keep.op]
    return [
        e for e in evaluations
        if metric in e and compare(e[metric], keep.value)
    ]
