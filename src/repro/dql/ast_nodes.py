"""Abstract syntax tree for DQL statements.

Nodes that diagnostics commonly point at (paths, templates, clauses, and
the queries themselves) carry an optional ``span`` — a ``(start, end)``
character-offset pair into the source text.  Spans are metadata only:
they are excluded from equality/repr so AST comparisons in tests and the
executor are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

#: ``(start_offset, end_offset)`` into the query text.
Span = tuple[int, int]


def _span_field():
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Path:
    """A dotted/selected reference like ``m1["conv*($1)"].next``.

    Attributes:
        var: The bound model variable (``m1``).
        selector: Optional node-selector pattern (the bracketed string).
        attrs: Attribute accesses in order (``next``, ``prev``, ``name``,
            ``input``, ``output``, metadata keys, ...).
        selector_pos: How many attrs precede the selector — 0 for
            ``m1["conv1"].next``, 1 for ``config.net["conv*"].lr``.
    """

    var: str
    selector: Optional[str] = None
    attrs: tuple[str, ...] = ()
    selector_pos: int = 0
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class Template:
    """A layer template like ``POOL("MAX")`` or ``RELU("relu$1")``.

    ``arg`` is the single string argument; its meaning depends on context —
    a matching condition (pool mode) in ``has`` clauses, a new node name
    (possibly with ``$k`` capture substitutions) in mutations.
    """

    kind: str
    arg: Optional[str] = None
    int_arg: Optional[int] = None
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class Comparison:
    """``path <op> literal`` — op in {like, =, !=, <, <=, >, >=}."""

    path: Path
    op: str
    value: object


@dataclass(frozen=True)
class HasClause:
    """``path has TEMPLATE`` — graph-traversal containment condition."""

    path: Path
    template: Template


@dataclass(frozen=True)
class BoolOp:
    """``and`` / ``or`` over sub-conditions."""

    op: str
    operands: tuple


Condition = Union[Comparison, HasClause, BoolOp]


@dataclass(frozen=True)
class SelectQuery:
    """``select m1 where <cond>`` (Query 1)."""

    var: str
    where: Optional[Condition]
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class SliceQuery:
    """``slice m2 from m1 where <cond> mutate m2.input = ... and m2.output = ...``.

    ``source_query`` is set when the ``from`` clause is a nested query
    (``slice m2 from (select m1 where ...) ...``); the outer ``where``
    then filters the nested result.
    """

    new_var: str
    source_var: str
    where: Optional[Condition]
    input_path: Path
    output_path: Path
    source_query: Optional["Query"] = None
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class Mutation:
    """One ``mutate`` action of a construct query.

    ``action`` is ``insert`` or ``delete``; ``anchor`` selects the nodes
    the action applies to; ``template`` is the inserted layer (or the
    downstream-kind condition for deletes when given).
    """

    anchor: Path
    action: str
    template: Optional[Template]
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class ConstructQuery:
    """``construct m2 from m1 [where <cond>] mutate <mutations>`` (Query 3).

    ``source_query`` supports the nested form
    ``construct m2 from (select ...) mutate ...``.
    """

    new_var: str
    source_var: str
    where: Optional[Condition]
    mutations: tuple[Mutation, ...]
    source_query: Optional["Query"] = None
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class VaryClause:
    """One dimension of the hyperparameter sweep.

    ``target`` is the config path (e.g. ``("base_lr",)`` or
    ``("net", "conv*", "lr")``); ``values`` is the explicit grid, or
    ``None`` with ``auto=True`` for the default search strategy.
    """

    target: tuple[str, ...]
    values: Optional[tuple] = None
    auto: bool = False
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class KeepClause:
    """Early-stopping / selection rule.

    ``top(k, metric, iterations)``: keep the best ``k`` candidates by
    ``metric`` measured at ``iterations``.  Threshold form: keep
    candidates whose metric satisfies the comparison.
    """

    mode: str  # "top" | "threshold"
    k: Optional[int] = None
    metric: Optional[Path] = None
    iterations: Optional[int] = None
    op: Optional[str] = None
    value: Optional[float] = None
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class EvaluateQuery:
    """``evaluate m from <source> with config = "..." vary ... keep ...`` (Query 4)."""

    var: str
    source: Union[str, "Query"]  # named result set / subquery
    config_ref: str
    vary: tuple[VaryClause, ...] = ()
    keep: Optional[KeepClause] = None
    span: Optional[Span] = _span_field()
    source_span: Optional[Span] = _span_field()
    config_span: Optional[Span] = _span_field()


Query = Union[SelectQuery, SliceQuery, ConstructQuery, EvaluateQuery]


@dataclass
class ParsedProgram:
    """A sequence of DQL statements (queries can be chained by name)."""

    statements: list = field(default_factory=list)
