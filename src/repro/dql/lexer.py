"""Tokenizer for DQL.

DQL adopts standard SQL-ish syntax (Sec. III-B): keywords, identifiers,
string/number literals, selector brackets, attribute dots, comparison
operators, and list brackets for ``vary ... in [...]`` clauses.  Keywords
are case-insensitive; identifiers and string contents are not.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "select", "slice", "construct", "evaluate",
    "from", "where", "mutate", "with", "vary", "keep",
    "and", "or", "not", "has", "like", "in", "auto", "top",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``keyword``, ``ident``, ``string``, ``number``,
    ``op``, ``lbracket``, ``rbracket``, ``lparen``, ``rparen``, ``comma``,
    ``dot``, or ``eof``; ``value`` is the normalized payload (keywords
    lowercased, strings unquoted, numbers as float/int).  ``length`` is
    the raw source length of the token, so parse errors and analyzer
    diagnostics can report exact spans.
    """

    kind: str
    value: object
    position: int
    length: int = 0

    @property
    def end(self) -> int:
        return self.position + self.length


class LexError(ValueError):
    """Raised on input DQL text that cannot be tokenized."""


def tokenize(text: str) -> list[Token]:
    """Tokenize DQL text; appends a trailing ``eof`` token."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            snippet = text[pos : pos + 20]
            raise LexError(f"cannot tokenize at offset {pos}: {snippet!r}")
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind == "ws":
            continue
        if kind == "string":
            value = value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        elif kind == "number":
            value = float(value) if any(c in value for c in ".eE") else int(value)
        elif kind == "ident":
            lowered = value.lower()
            if lowered in KEYWORDS:
                kind, value = "keyword", lowered
        tokens.append(
            Token(kind, value, match.start(), match.end() - match.start())
        )
    tokens.append(Token("eof", None, len(text)))
    return tokens


def iter_significant(tokens: list[Token]) -> Iterator[Token]:
    """All tokens except the trailing EOF (convenience for tests)."""
    for token in tokens:
        if token.kind != "eof":
            yield token
