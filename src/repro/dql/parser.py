"""Recursive-descent parser for DQL.

Grammar (keywords case-insensitive)::

    query      := select_q | slice_q | construct_q | evaluate_q
    select_q   := "select" IDENT ["where" cond]
    slice_q    := "slice" IDENT "from" IDENT ["where" cond]
                  "mutate" IDENT "." "input" "=" path "and"
                           IDENT "." "output" "=" path
    construct_q:= "construct" IDENT "from" IDENT ["where" cond]
                  "mutate" mutation ("and" mutation)*
    mutation   := path "." ("insert" | "delete") ["=" template]
    evaluate_q := "evaluate" IDENT "from" source
                  "with" "config" "=" STRING
                  ["vary" vary ("and" vary)*]
                  ["keep" keep]
    source     := STRING | "(" query ")"
    cond       := and_expr ("or" and_expr)*
    and_expr   := primary ("and" primary)*
    primary    := "(" cond ")" | path ("has" template | OP literal)
    path       := IDENT ("[" STRING "]")? ("." IDENT)*
    template   := IDENT "(" [STRING | NUMBER] ")"
    vary       := path ("in" "[" literal ("," literal)* "]" | "auto")
    keep       := "top" "(" NUMBER "," path "," NUMBER ")"
                | path OP NUMBER
"""

from __future__ import annotations

from typing import Optional

from repro.dql.ast_nodes import (
    BoolOp,
    Comparison,
    Condition,
    ConstructQuery,
    EvaluateQuery,
    HasClause,
    KeepClause,
    Mutation,
    Path,
    Query,
    SelectQuery,
    SliceQuery,
    Template,
    VaryClause,
)
from repro.dql.lexer import Token, tokenize


class ParseError(ValueError):
    """Raised on syntactically invalid DQL."""


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def check(self, kind: str, value: Optional[object] = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value: Optional[object] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[object] = None) -> Token:
        if not self.check(kind, value):
            token = self.current
            want = f"{kind}" + (f" {value!r}" if value is not None else "")
            raise ParseError(
                f"expected {want} at offset {token.position}, "
                f"found {token.kind} {token.value!r}"
            )
        return self.advance()

    # -- entry ---------------------------------------------------------------

    def parse_query(self) -> Query:
        token = self.current
        if token.kind != "keyword":
            raise ParseError(
                f"query must start with a verb, found {token.value!r}"
            )
        if token.value == "select":
            return self._select()
        if token.value == "slice":
            return self._slice()
        if token.value == "construct":
            return self._construct()
        if token.value == "evaluate":
            return self._evaluate()
        raise ParseError(f"unknown query verb {token.value!r}")

    # -- statements -----------------------------------------------------------

    def _select(self) -> SelectQuery:
        self.expect("keyword", "select")
        var = self.expect("ident").value
        where = None
        if self.accept("keyword", "where"):
            where = self._condition()
        return SelectQuery(var, where)

    def _source(self) -> tuple[str, Optional[Query]]:
        """The ``from`` clause of slice/construct: a variable or a subquery."""
        if self.accept("lparen"):
            nested = self.parse_query()
            self.expect("rparen")
            var = getattr(nested, "var", None) or getattr(
                nested, "new_var", "m"
            )
            return var, nested
        return self.expect("ident").value, None

    def _slice(self) -> SliceQuery:
        self.expect("keyword", "slice")
        new_var = self.expect("ident").value
        self.expect("keyword", "from")
        source_var, source_query = self._source()
        where = None
        if self.accept("keyword", "where"):
            where = self._condition()
        self.expect("keyword", "mutate")
        assignments: dict[str, Path] = {}
        while True:
            var = self.expect("ident").value
            self.expect("dot")
            endpoint = self.expect("ident").value
            if endpoint not in ("input", "output"):
                raise ParseError(
                    f"slice mutate assigns input/output, got {endpoint!r}"
                )
            if var != new_var:
                raise ParseError(
                    f"slice mutate must assign to {new_var!r}, got {var!r}"
                )
            self.expect("op", "=")
            assignments[endpoint] = self._path()
            if not self.accept("keyword", "and"):
                break
        missing = {"input", "output"} - set(assignments)
        if missing:
            raise ParseError(f"slice mutate is missing {sorted(missing)}")
        return SliceQuery(
            new_var, source_var, where,
            assignments["input"], assignments["output"],
            source_query,
        )

    def _construct(self) -> ConstructQuery:
        self.expect("keyword", "construct")
        new_var = self.expect("ident").value
        self.expect("keyword", "from")
        source_var, source_query = self._source()
        where = None
        if self.accept("keyword", "where"):
            where = self._condition()
        self.expect("keyword", "mutate")
        mutations = [self._mutation()]
        while self.accept("keyword", "and"):
            mutations.append(self._mutation())
        return ConstructQuery(
            new_var, source_var, where, tuple(mutations), source_query
        )

    def _mutation(self) -> Mutation:
        path = self._path()
        if not path.attrs or path.attrs[-1] not in ("insert", "delete"):
            raise ParseError(
                "construct mutations must end in .insert or .delete"
            )
        action = path.attrs[-1]
        anchor = Path(path.var, path.selector, path.attrs[:-1])
        template = None
        if self.accept("op", "="):
            template = self._template()
        if action == "insert" and template is None:
            raise ParseError(".insert requires a layer template")
        return Mutation(anchor, action, template)

    def _evaluate(self) -> EvaluateQuery:
        self.expect("keyword", "evaluate")
        var = self.expect("ident").value
        self.expect("keyword", "from")
        if self.check("string"):
            source: object = self.advance().value
        elif self.accept("lparen"):
            source = self.parse_query()
            self.expect("rparen")
        else:
            raise ParseError(
                'evaluate "from" takes a quoted result-set name or a '
                "parenthesized subquery"
            )
        self.expect("keyword", "with")
        config_word = self.expect("ident")
        if config_word.value != "config":
            raise ParseError('expected "config" after with')
        self.expect("op", "=")
        config_ref = self.expect("string").value
        vary: list[VaryClause] = []
        if self.accept("keyword", "vary"):
            vary.append(self._vary())
            while self.accept("keyword", "and"):
                vary.append(self._vary())
        keep = None
        if self.accept("keyword", "keep"):
            keep = self._keep()
        return EvaluateQuery(var, source, config_ref, tuple(vary), keep)

    # -- clauses --------------------------------------------------------------

    def _vary(self) -> VaryClause:
        path = self._path()
        target = self._vary_target(path)
        if self.accept("keyword", "auto"):
            return VaryClause(target, auto=True)
        self.expect("keyword", "in")
        self.expect("lbracket")
        values = [self._literal()]
        while self.accept("comma"):
            values.append(self._literal())
        self.expect("rbracket")
        return VaryClause(target, tuple(values))

    @staticmethod
    def _vary_target(path: Path) -> tuple[str, ...]:
        if path.var != "config":
            raise ParseError(
                f"vary dimensions live under config.*, got {path.var!r}"
            )
        parts: list[str] = list(path.attrs)
        if path.selector is not None:
            # config.net["conv*"].lr — selector slots in at its position.
            parts.insert(path.selector_pos, path.selector)
        return tuple(parts)

    def _keep(self) -> KeepClause:
        if self.accept("keyword", "top"):
            self.expect("lparen")
            k = int(self.expect("number").value)
            self.expect("comma")
            metric = self._path()
            self.expect("comma")
            iterations = int(self.expect("number").value)
            self.expect("rparen")
            return KeepClause("top", k=k, metric=metric, iterations=iterations)
        metric = self._path()
        op = self.expect("op").value
        value = float(self.expect("number").value)
        return KeepClause("threshold", metric=metric, op=op, value=value)

    def _condition(self) -> Condition:
        left = self._and_expr()
        operands = [left]
        while self.accept("keyword", "or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return left
        return BoolOp("or", tuple(operands))

    def _and_expr(self) -> Condition:
        left = self._primary()
        operands = [left]
        while self.accept("keyword", "and"):
            operands.append(self._primary())
        if len(operands) == 1:
            return left
        return BoolOp("and", tuple(operands))

    def _primary(self) -> Condition:
        if self.accept("keyword", "not"):
            return BoolOp("not", (self._primary(),))
        if self.accept("lparen"):
            inner = self._condition()
            self.expect("rparen")
            return inner
        path = self._path()
        if self.accept("keyword", "has"):
            return HasClause(path, self._template())
        if self.accept("keyword", "like"):
            value = self.expect("string").value
            return Comparison(path, "like", value)
        op = self.expect("op").value
        value = self._literal()
        return Comparison(path, op, value)

    def _path(self) -> Path:
        var = self.expect("ident").value
        selector = None
        selector_pos = 0
        attrs: list[str] = []
        while True:
            if self.check("lbracket") and selector is None:
                self.advance()
                selector = self.expect("string").value
                self.expect("rbracket")
                selector_pos = len(attrs)
                continue
            if self.accept("dot"):
                attrs.append(self.expect("ident").value)
                continue
            break
        return Path(var, selector, tuple(attrs), selector_pos)

    def _template(self) -> Template:
        kind = self.expect("ident").value.upper()
        self.expect("lparen")
        arg = None
        int_arg = None
        if self.check("string"):
            arg = self.advance().value
        elif self.check("number"):
            int_arg = int(self.advance().value)
        self.expect("rparen")
        return Template(kind, arg, int_arg)

    def _literal(self) -> object:
        if self.check("string"):
            return self.advance().value
        if self.check("number"):
            return self.advance().value
        token = self.current
        raise ParseError(
            f"expected a literal at offset {token.position}, "
            f"found {token.kind} {token.value!r}"
        )


def parse(text: str) -> Query:
    """Parse one DQL statement; raises :class:`ParseError` on bad input."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect("eof")
    return query
