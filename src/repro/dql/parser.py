"""Recursive-descent parser for DQL.

Grammar (keywords case-insensitive)::

    query      := select_q | slice_q | construct_q | evaluate_q
    select_q   := "select" IDENT ["where" cond]
    slice_q    := "slice" IDENT "from" IDENT ["where" cond]
                  "mutate" IDENT "." "input" "=" path "and"
                           IDENT "." "output" "=" path
    construct_q:= "construct" IDENT "from" IDENT ["where" cond]
                  "mutate" mutation ("and" mutation)*
    mutation   := path "." ("insert" | "delete") ["=" template]
    evaluate_q := "evaluate" IDENT "from" source
                  "with" "config" "=" STRING
                  ["vary" vary ("and" vary)*]
                  ["keep" keep]
    source     := STRING | "(" query ")"
    cond       := and_expr ("or" and_expr)*
    and_expr   := primary ("and" primary)*
    primary    := "(" cond ")" | path ("has" template | OP literal)
    path       := IDENT ("[" STRING "]")? ("." IDENT)*
    template   := IDENT "(" [STRING | NUMBER] ")"
    vary       := path ("in" "[" literal ("," literal)* "]" | "auto")
    keep       := "top" "(" NUMBER "," path "," NUMBER ")"
                | path OP NUMBER

Parse errors carry the offending token's position — character ``offset``
plus 1-based ``line``/``col`` — in the same span format the static
analyzer (:mod:`repro.analysis`) uses for its diagnostics.
"""

from __future__ import annotations

from typing import Optional

from repro.dql.ast_nodes import (
    BoolOp,
    Comparison,
    Condition,
    ConstructQuery,
    EvaluateQuery,
    HasClause,
    KeepClause,
    Mutation,
    Path,
    Query,
    SelectQuery,
    SliceQuery,
    Template,
    VaryClause,
)
from repro.dql.lexer import Token, tokenize


def line_col(text: str, offset: int) -> tuple[int, int]:
    """1-based ``(line, col)`` of a character offset into ``text``."""
    offset = max(0, min(offset, len(text)))
    line = text.count("\n", 0, offset) + 1
    col = offset - text.rfind("\n", 0, offset)
    return line, col


class ParseError(ValueError):
    """Raised on syntactically invalid DQL.

    Attributes:
        offset: 0-based character offset of the offending token (or None
            when the error carries no position).
        length: Source length of the offending token (>= 1).
        line, col: 1-based position, computed when the source text is
            known.  The formatted message always repeats the offset so
            the error and analyzer diagnostics share one span format.
    """

    def __init__(
        self,
        message: str,
        offset: Optional[int] = None,
        length: int = 1,
        text: Optional[str] = None,
    ) -> None:
        self.offset = offset
        self.length = max(length, 1)
        self.line: Optional[int] = None
        self.col: Optional[int] = None
        if offset is not None and text is not None:
            self.line, self.col = line_col(text, offset)
        if offset is None:
            full = message
        elif self.line is not None:
            full = (
                f"{message} at line {self.line}, col {self.col} "
                f"(offset {offset})"
            )
        else:
            full = f"{message} at offset {offset}"
        super().__init__(full)


class _Parser:
    def __init__(self, tokens: list[Token], text: str = "") -> None:
        self.tokens = tokens
        self.text = text
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def check(self, kind: str, value: Optional[object] = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value: Optional[object] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def error(self, message: str, token: Optional[Token] = None) -> ParseError:
        """Build a :class:`ParseError` pinned to a token's source span."""
        token = token if token is not None else self.current
        return ParseError(
            message, offset=token.position, length=token.length,
            text=self.text,
        )

    def expect(self, kind: str, value: Optional[object] = None) -> Token:
        if not self.check(kind, value):
            token = self.current
            want = f"{kind}" + (f" {value!r}" if value is not None else "")
            raise self.error(
                f"expected {want}, found {token.kind} {token.value!r}"
            )
        return self.advance()

    def _start(self) -> int:
        """Offset where the next construct begins."""
        return self.current.position

    def _end(self) -> int:
        """Offset just past the last consumed token."""
        if self.pos == 0:
            return 0
        return self.tokens[self.pos - 1].end

    # -- entry ---------------------------------------------------------------

    def parse_query(self) -> Query:
        token = self.current
        if token.kind != "keyword":
            raise self.error(
                f"query must start with a verb, found {token.value!r}"
            )
        if token.value == "select":
            return self._select()
        if token.value == "slice":
            return self._slice()
        if token.value == "construct":
            return self._construct()
        if token.value == "evaluate":
            return self._evaluate()
        raise self.error(f"unknown query verb {token.value!r}")

    # -- statements -----------------------------------------------------------

    def _select(self) -> SelectQuery:
        start = self._start()
        self.expect("keyword", "select")
        var = self.expect("ident").value
        where = None
        if self.accept("keyword", "where"):
            where = self._condition()
        return SelectQuery(var, where, span=(start, self._end()))

    def _source(self) -> tuple[str, Optional[Query]]:
        """The ``from`` clause of slice/construct: a variable or a subquery."""
        if self.accept("lparen"):
            nested = self.parse_query()
            self.expect("rparen")
            var = getattr(nested, "var", None) or getattr(
                nested, "new_var", "m"
            )
            return var, nested
        return self.expect("ident").value, None

    def _slice(self) -> SliceQuery:
        start = self._start()
        self.expect("keyword", "slice")
        new_var = self.expect("ident").value
        self.expect("keyword", "from")
        source_var, source_query = self._source()
        where = None
        if self.accept("keyword", "where"):
            where = self._condition()
        self.expect("keyword", "mutate")
        assignments: dict[str, Path] = {}
        while True:
            var_token = self.current
            var = self.expect("ident").value
            self.expect("dot")
            endpoint_token = self.current
            endpoint = self.expect("ident").value
            if endpoint not in ("input", "output"):
                raise self.error(
                    f"slice mutate assigns input/output, got {endpoint!r}",
                    endpoint_token,
                )
            if var != new_var:
                raise self.error(
                    f"slice mutate must assign to {new_var!r}, got {var!r}",
                    var_token,
                )
            self.expect("op", "=")
            assignments[endpoint] = self._path()
            if not self.accept("keyword", "and"):
                break
        missing = {"input", "output"} - set(assignments)
        if missing:
            raise self.error(f"slice mutate is missing {sorted(missing)}")
        return SliceQuery(
            new_var, source_var, where,
            assignments["input"], assignments["output"],
            source_query,
            span=(start, self._end()),
        )

    def _construct(self) -> ConstructQuery:
        start = self._start()
        self.expect("keyword", "construct")
        new_var = self.expect("ident").value
        self.expect("keyword", "from")
        source_var, source_query = self._source()
        where = None
        if self.accept("keyword", "where"):
            where = self._condition()
        self.expect("keyword", "mutate")
        mutations = [self._mutation()]
        while self.accept("keyword", "and"):
            mutations.append(self._mutation())
        return ConstructQuery(
            new_var, source_var, where, tuple(mutations), source_query,
            span=(start, self._end()),
        )

    def _mutation(self) -> Mutation:
        start = self._start()
        path = self._path()
        if not path.attrs or path.attrs[-1] not in ("insert", "delete"):
            raise self.error(
                "construct mutations must end in .insert or .delete",
                self.tokens[self.pos - 1],
            )
        action = path.attrs[-1]
        anchor = Path(
            path.var, path.selector, path.attrs[:-1], path.selector_pos,
            span=path.span,
        )
        template = None
        if self.accept("op", "="):
            template = self._template()
        if action == "insert" and template is None:
            raise self.error(".insert requires a layer template")
        return Mutation(anchor, action, template, span=(start, self._end()))

    def _evaluate(self) -> EvaluateQuery:
        start = self._start()
        self.expect("keyword", "evaluate")
        var = self.expect("ident").value
        self.expect("keyword", "from")
        source_start = self._start()
        if self.check("string"):
            source: object = self.advance().value
        elif self.accept("lparen"):
            source = self.parse_query()
            self.expect("rparen")
        else:
            raise self.error(
                'evaluate "from" takes a quoted result-set name or a '
                "parenthesized subquery"
            )
        source_span = (source_start, self._end())
        self.expect("keyword", "with")
        config_word = self.expect("ident")
        if config_word.value != "config":
            raise self.error('expected "config" after with', config_word)
        self.expect("op", "=")
        config_start = self._start()
        config_ref = self.expect("string").value
        config_span = (config_start, self._end())
        vary: list[VaryClause] = []
        if self.accept("keyword", "vary"):
            vary.append(self._vary())
            while self.accept("keyword", "and"):
                vary.append(self._vary())
        keep = None
        if self.accept("keyword", "keep"):
            keep = self._keep()
        return EvaluateQuery(
            var, source, config_ref, tuple(vary), keep,
            span=(start, self._end()),
            source_span=source_span,
            config_span=config_span,
        )

    # -- clauses --------------------------------------------------------------

    def _vary(self) -> VaryClause:
        start = self._start()
        path = self._path()
        target = self._vary_target(path)
        if self.accept("keyword", "auto"):
            return VaryClause(target, auto=True, span=(start, self._end()))
        self.expect("keyword", "in")
        self.expect("lbracket")
        values = [self._literal()]
        while self.accept("comma"):
            values.append(self._literal())
        self.expect("rbracket")
        return VaryClause(target, tuple(values), span=(start, self._end()))

    def _vary_target(self, path: Path) -> tuple[str, ...]:
        if path.var != "config":
            raise self.error(
                f"vary dimensions live under config.*, got {path.var!r}"
            )
        parts: list[str] = list(path.attrs)
        if path.selector is not None:
            # config.net["conv*"].lr — selector slots in at its position.
            parts.insert(path.selector_pos, path.selector)
        return tuple(parts)

    def _keep(self) -> KeepClause:
        start = self._start()
        if self.accept("keyword", "top"):
            self.expect("lparen")
            k = int(self.expect("number").value)
            self.expect("comma")
            metric = self._path()
            self.expect("comma")
            iterations = int(self.expect("number").value)
            self.expect("rparen")
            return KeepClause(
                "top", k=k, metric=metric, iterations=iterations,
                span=(start, self._end()),
            )
        metric = self._path()
        op = self.expect("op").value
        value = float(self.expect("number").value)
        return KeepClause(
            "threshold", metric=metric, op=op, value=value,
            span=(start, self._end()),
        )

    def _condition(self) -> Condition:
        left = self._and_expr()
        operands = [left]
        while self.accept("keyword", "or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return left
        return BoolOp("or", tuple(operands))

    def _and_expr(self) -> Condition:
        left = self._primary()
        operands = [left]
        while self.accept("keyword", "and"):
            operands.append(self._primary())
        if len(operands) == 1:
            return left
        return BoolOp("and", tuple(operands))

    def _primary(self) -> Condition:
        if self.accept("keyword", "not"):
            return BoolOp("not", (self._primary(),))
        if self.accept("lparen"):
            inner = self._condition()
            self.expect("rparen")
            return inner
        path = self._path()
        if self.accept("keyword", "has"):
            return HasClause(path, self._template())
        if self.accept("keyword", "like"):
            value = self.expect("string").value
            return Comparison(path, "like", value)
        op = self.expect("op").value
        value = self._literal()
        return Comparison(path, op, value)

    def _path(self) -> Path:
        start = self._start()
        var = self.expect("ident").value
        selector = None
        selector_pos = 0
        attrs: list[str] = []
        while True:
            if self.check("lbracket") and selector is None:
                self.advance()
                selector = self.expect("string").value
                self.expect("rbracket")
                selector_pos = len(attrs)
                continue
            if self.accept("dot"):
                attrs.append(self.expect("ident").value)
                continue
            break
        return Path(
            var, selector, tuple(attrs), selector_pos,
            span=(start, self._end()),
        )

    def _template(self) -> Template:
        start = self._start()
        kind = self.expect("ident").value.upper()
        self.expect("lparen")
        arg = None
        int_arg = None
        if self.check("string"):
            arg = self.advance().value
        elif self.check("number"):
            int_arg = int(self.advance().value)
        self.expect("rparen")
        return Template(kind, arg, int_arg, span=(start, self._end()))

    def _literal(self) -> object:
        if self.check("string"):
            return self.advance().value
        if self.check("number"):
            return self.advance().value
        token = self.current
        raise self.error(
            f"expected a literal, found {token.kind} {token.value!r}"
        )


def parse(text: str) -> Query:
    """Parse one DQL statement; raises :class:`ParseError` on bad input."""
    parser = _Parser(tokenize(text), text)
    query = parser.parse_query()
    parser.expect("eof")
    return query
