"""Directory-backed hub server.

Hub layout::

    <hub-root>/
        index.json                     name -> record
        repos/<name>/<revision>/       full copies of published .dlv trees

Revisions are monotonically increasing integers per name, so repeated
publishes never clobber history — collaborators can pull any revision.
"""

from __future__ import annotations

import datetime
import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.obs.metrics import counter


def _count_request(operation: str) -> None:
    """Bump the hub request counters (total plus per-operation)."""
    counter("hub.requests").inc()
    counter(f"hub.requests.{operation}").inc()


@dataclass
class HubRecord:
    """Index entry for one published repository."""

    name: str
    description: str = ""
    revision: int = 1
    published_at: str = ""
    model_names: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "revision": self.revision,
            "published_at": self.published_at,
            "model_names": list(self.model_names),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HubRecord":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            revision=data.get("revision", 1),
            published_at=data.get("published_at", ""),
            model_names=list(data.get("model_names", [])),
        )


class HubServer:
    """Owns a hub directory: the index plus published repository trees."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "repos").mkdir(exist_ok=True)

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> dict[str, dict]:
        if self._index_path.exists():
            return json.loads(self._index_path.read_text())
        return {}

    def _save_index(self, index: dict[str, dict]) -> None:
        self._index_path.write_text(json.dumps(index, indent=2))

    def publish(
        self,
        name: str,
        dlv_dir: Path,
        description: str = "",
        model_names: Optional[list[str]] = None,
    ) -> HubRecord:
        """Store a copy of a repository's ``.dlv`` tree under ``name``."""
        _count_request("publish")
        index = self._load_index()
        revision = index.get(name, {}).get("revision", 0) + 1
        dest = self.root / "repos" / name / str(revision)
        if dest.exists():
            shutil.rmtree(dest)
        shutil.copytree(dlv_dir, dest)
        record = HubRecord(
            name=name,
            description=description,
            revision=revision,
            published_at=datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(),
            model_names=model_names or [],
        )
        index[name] = record.to_dict()
        self._save_index(index)
        return record

    def search(self, pattern: str = "*") -> list[HubRecord]:
        """Match records by glob pattern on name, description, or models."""
        _count_request("search")
        import fnmatch

        records = [
            HubRecord.from_dict(d) for d in self._load_index().values()
        ]
        if pattern in ("", "*"):
            return sorted(records, key=lambda r: r.name)
        matched = []
        for record in records:
            haystacks = [record.name, record.description, *record.model_names]
            if any(fnmatch.fnmatch(h, pattern) for h in haystacks):
                matched.append(record)
        return sorted(matched, key=lambda r: r.name)

    def get(self, name: str, revision: Optional[int] = None) -> Path:
        """Path of a published repository tree.

        Raises:
            KeyError: unknown name or revision.
        """
        _count_request("get")
        index = self._load_index()
        if name not in index:
            raise KeyError(f"hub has no repository {name!r}")
        revision = revision or index[name]["revision"]
        path = self.root / "repos" / name / str(revision)
        if not path.exists():
            raise KeyError(f"{name!r} has no revision {revision}")
        return path

    def revisions(self, name: str) -> list[int]:
        """All stored revisions of a repository."""
        _count_request("revisions")
        base = self.root / "repos" / name
        if not base.exists():
            return []
        return sorted(int(p.name) for p in base.iterdir() if p.is_dir())

    def delete(self, name: str) -> bool:
        """Remove a repository (all revisions) from the hub."""
        _count_request("delete")
        index = self._load_index()
        if name not in index:
            return False
        del index[name]
        self._save_index(index)
        tree = self.root / "repos" / name
        if tree.exists():
            shutil.rmtree(tree)
        return True
