"""Directory-backed hub server.

Hub layout::

    <hub-root>/
        index.json                          name -> record
        repos/<name>/<revision>/            full copies of published .dlv trees
        repos/<name>/<revision>.manifest.json   per-file sha256 checksums

Revisions are monotonically increasing integers per name, so repeated
publishes never clobber history — collaborators can pull any revision.
The manifest written beside each revision lists the sha256 of every file
in the tree; clients verify it after pulling, so a torn or bit-flipped
transfer is detected before the repository is installed.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.faults import fs as ffs
from repro.obs.metrics import counter


class HubIntegrityError(OSError):
    """A pulled tree does not match its published manifest.

    An :class:`OSError` subclass so the hub's :class:`~repro.hub.retry.Retrier`
    treats a failed verification as transient and re-copies.
    """


def compute_manifest(root: str | Path) -> dict[str, str]:
    """``relative path -> sha256`` for every file under ``root``."""
    root = Path(root)
    manifest = {}
    for path in sorted(root.rglob("*")):
        if path.is_file():
            manifest[path.relative_to(root).as_posix()] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return manifest


def verify_tree(root: str | Path, manifest: dict[str, str]) -> None:
    """Check a tree against a manifest; raises :class:`HubIntegrityError`.

    Extra local files are permitted (a pulled repository immediately
    grows journal/replay artifacts); missing or mismatched files are not.
    """
    root = Path(root)
    problems = []
    for rel, expected in manifest.items():
        path = root / rel
        if not path.exists():
            problems.append(f"missing {rel}")
        elif hashlib.sha256(path.read_bytes()).hexdigest() != expected:
            problems.append(f"checksum mismatch {rel}")
    if problems:
        counter("hub.verify_failures").inc()
        raise HubIntegrityError(
            f"pulled tree fails verification: {'; '.join(problems[:5])}"
            + (f" (+{len(problems) - 5} more)" if len(problems) > 5 else "")
        )


def _count_request(operation: str) -> None:
    """Bump the hub request counters (total plus per-operation)."""
    counter("hub.requests").inc()
    counter(f"hub.requests.{operation}").inc()


@dataclass
class HubRecord:
    """Index entry for one published repository."""

    name: str
    description: str = ""
    revision: int = 1
    published_at: str = ""
    model_names: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "revision": self.revision,
            "published_at": self.published_at,
            "model_names": list(self.model_names),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HubRecord":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            revision=data.get("revision", 1),
            published_at=data.get("published_at", ""),
            model_names=list(data.get("model_names", [])),
        )


class HubServer:
    """Owns a hub directory: the index plus published repository trees."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "repos").mkdir(exist_ok=True)

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> dict[str, dict]:
        if self._index_path.exists():
            return json.loads(self._index_path.read_text())
        return {}

    def _save_index(self, index: dict[str, dict]) -> None:
        ffs.write_bytes(
            self._index_path,
            json.dumps(index, indent=2).encode(),
            site="hub.publish.index",
        )

    def _manifest_path(self, name: str, revision: int) -> Path:
        return self.root / "repos" / name / f"{revision}.manifest.json"

    def manifest(self, name: str, revision: Optional[int] = None) -> Optional[dict]:
        """Checksum manifest of one published revision (None when absent)."""
        index = self._load_index()
        if name not in index:
            raise KeyError(f"hub has no repository {name!r}")
        revision = revision or index[name]["revision"]
        path = self._manifest_path(name, revision)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def publish(
        self,
        name: str,
        dlv_dir: Path,
        description: str = "",
        model_names: Optional[list[str]] = None,
    ) -> HubRecord:
        """Store a copy of a repository's ``.dlv`` tree under ``name``.

        A checksum manifest is written beside the revision so pullers can
        verify the transfer; the index update comes last, so a publish
        that dies midway never becomes visible.
        """
        _count_request("publish")
        index = self._load_index()
        revision = index.get(name, {}).get("revision", 0) + 1
        dest = self.root / "repos" / name / str(revision)
        if dest.exists():
            shutil.rmtree(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        ffs.copytree(dlv_dir, dest, site="hub.publish.copytree")
        ffs.write_bytes(
            self._manifest_path(name, revision),
            json.dumps(compute_manifest(dest), indent=2).encode(),
            site="hub.publish.manifest",
        )
        record = HubRecord(
            name=name,
            description=description,
            revision=revision,
            published_at=datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(),
            model_names=model_names or [],
        )
        index[name] = record.to_dict()
        self._save_index(index)
        return record

    def search(self, pattern: str = "*") -> list[HubRecord]:
        """Match records by glob pattern on name, description, or models."""
        _count_request("search")
        import fnmatch

        records = [
            HubRecord.from_dict(d) for d in self._load_index().values()
        ]
        if pattern in ("", "*"):
            return sorted(records, key=lambda r: r.name)
        matched = []
        for record in records:
            haystacks = [record.name, record.description, *record.model_names]
            if any(fnmatch.fnmatch(h, pattern) for h in haystacks):
                matched.append(record)
        return sorted(matched, key=lambda r: r.name)

    def get(self, name: str, revision: Optional[int] = None) -> Path:
        """Path of a published repository tree.

        Raises:
            KeyError: unknown name or revision.
        """
        _count_request("get")
        index = self._load_index()
        if name not in index:
            raise KeyError(f"hub has no repository {name!r}")
        revision = revision or index[name]["revision"]
        path = self.root / "repos" / name / str(revision)
        if not path.exists():
            raise KeyError(f"{name!r} has no revision {revision}")
        return path

    def revisions(self, name: str) -> list[int]:
        """All stored revisions of a repository."""
        _count_request("revisions")
        base = self.root / "repos" / name
        if not base.exists():
            return []
        return sorted(int(p.name) for p in base.iterdir() if p.is_dir())

    def names(self) -> list[str]:
        """All published repository names."""
        return sorted(self._load_index())

    def watermark(self) -> int:
        """Replication watermark: count of ``(name, revision)`` trees held.

        Publishes only ever add trees, so the watermark is monotone; a
        follower is caught up exactly when its watermark matches the
        primary's.  Counted from the ``repos/`` directory rather than
        the index so a follower mid-sync reports the trees it can
        actually serve.
        """
        repos = self.root / "repos"
        if not repos.exists():
            return 0
        total = 0
        for name_dir in repos.iterdir():
            if name_dir.is_dir():
                total += sum(
                    1
                    for p in name_dir.iterdir()
                    if p.is_dir() and p.name.isdigit()
                )
        return total

    def install_revision(
        self,
        name: str,
        revision: int,
        tree: Path,
        manifest: dict[str, str],
        record: Optional[HubRecord] = None,
    ) -> bool:
        """Adopt an already-verified tree as ``name``/``revision``.

        The replication path: a follower fetched and checksum-verified
        ``tree`` from its primary and now *moves* it into place (the
        manifest file lands first, the atomic rename is the commit
        point, the index update comes last — the same
        never-visible-half-done ordering ``publish`` uses).  Returns
        ``False`` without touching anything when the revision already
        exists locally.
        """
        _count_request("install")
        dest = self.root / "repos" / name / str(revision)
        if dest.exists():
            shutil.rmtree(tree, ignore_errors=True)
            return False
        dest.parent.mkdir(parents=True, exist_ok=True)
        ffs.write_bytes(
            self._manifest_path(name, revision),
            json.dumps(manifest, indent=2).encode(),
            site="hub.sync.manifest",
        )
        ffs.replace(tree, dest, site="hub.sync.install")
        index = self._load_index()
        current = index.get(name, {})
        latest = max(self.revisions(name))
        merged = record.to_dict() if record is not None else dict(current)
        merged.setdefault("name", name)
        # Advertise only what this hub can actually serve: the newest
        # locally held revision, whatever the primary is already at.
        merged["revision"] = latest
        index[name] = merged
        self._save_index(index)
        return True

    def delete(self, name: str) -> bool:
        """Remove a repository (all revisions) from the hub."""
        _count_request("delete")
        index = self._load_index()
        if name not in index:
            return False
        del index[name]
        self._save_index(index)
        tree = self.root / "repos" / name
        if tree.exists():
            shutil.rmtree(tree)
        return True
