"""Asynchronous hub-to-hub replication: primary publish → follower sync.

A replicated hub fleet is one *primary* (where ``dlv publish`` lands)
plus N read-only followers, each running a :class:`Replicator` against
the primary's HTTP surface.  Replication is pull-based and idempotent:

1. list the primary's index and per-name revisions,
2. for every ``(name, revision)`` tree the follower does not hold,
   fetch it file-by-file into a temp directory,
3. verify the tree against the primary's sha256 manifest,
4. atomically install it (manifest file → tree rename → index update)
   via :meth:`~repro.hub.server.HubServer.install_revision`.

Because revisions are immutable once published, there is no conflict
resolution — a follower converges by copying trees it misses, and its
*watermark* (count of ``(name, revision)`` trees held, see
:meth:`HubServer.watermark`) meets the primary's when it is caught up.
``hub.replication.lag`` (a gauge) tracks the difference after every
sync round; ``/healthz`` on a follower reports the same numbers.

Sync runs either on demand (:meth:`Replicator.sync_once` — what the
deterministic chaos tests drive) or on a background thread
(:meth:`start`/:meth:`stop`) that polls at ``interval_s`` using an
``Event`` wait, so ``stop`` never blocks for a full interval.
"""

from __future__ import annotations

import http.client
import shutil
import threading
from typing import Optional

from repro.hub.httpd import RemoteHub
from repro.hub.server import HubServer, verify_tree
from repro.obs.metrics import counter, gauge
from repro.obs.tracing import trace_span

__all__ = ["Replicator"]


class Replicator:
    """Keeps one follower :class:`HubServer` in sync with a primary.

    Args:
        local: The follower's hub directory (written by sync).
        primary_urls: One or more ``http://`` addresses of the primary
            tier; sync uses the first one that answers, so a primary
            behind several addresses (or a re-elected one) still feeds
            the follower.
        interval_s: Poll period of the background thread.
        timeout: Socket timeout for primary requests.
    """

    def __init__(
        self,
        local: HubServer,
        primary_urls: str | list[str],
        interval_s: float = 2.0,
        timeout: float = 10.0,
    ) -> None:
        if isinstance(primary_urls, str):
            primary_urls = [
                u.strip() for u in primary_urls.split(",") if u.strip()
            ]
        if not primary_urls:
            raise ValueError("replicator needs at least one primary url")
        self.local = local
        self.primary_urls = list(primary_urls)
        self.interval_s = interval_s
        self.timeout = timeout
        self._thread: Optional[threading.Thread] = None
        self._wake = threading.Event()
        # Guards lifecycle writes (_thread) and the stats dict.
        self._lock = threading.Lock()
        self._stats = {
            "synced_revisions": 0,
            "sync_rounds": 0,
            "sync_errors": 0,
            "lag": None,
            "last_error": "",
            "primary": "",
        }

    # -- one synchronous round (what tests drive directly) -------------------

    def sync_once(self) -> int:
        """Run one full sync round; returns revisions copied.

        Raises on total failure (no primary reachable); partial
        progress before an error is kept — every installed revision was
        individually verified, so there is nothing to roll back.
        """
        with trace_span("hub.replication.sync", follower=str(self.local.root)):
            try:
                copied = self._sync_round()
            except Exception as exc:
                with self._lock:
                    self._stats["sync_errors"] += 1
                    self._stats["last_error"] = f"{type(exc).__name__}: {exc}"
                counter("hub.replication.sync_errors").inc()
                raise
        return copied

    def _sync_round(self) -> int:
        last_error: Optional[Exception] = None
        for url in self.primary_urls:
            remote = RemoteHub(url, timeout=self.timeout)
            try:
                copied, primary_watermark = self._sync_from(remote)
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
                continue
            finally:
                remote.close()
            lag = max(0, primary_watermark - self.local.watermark())
            gauge("hub.replication.lag").set(lag)
            with self._lock:
                self._stats["synced_revisions"] += copied
                self._stats["sync_rounds"] += 1
                self._stats["lag"] = lag
                self._stats["primary"] = url
                self._stats["last_error"] = ""
            if copied:
                counter("hub.replication.synced_revisions").inc(copied)
            return copied
        raise OSError(
            f"no primary reachable among {self.primary_urls}"
        ) from last_error

    def _sync_from(self, remote: RemoteHub) -> tuple[int, int]:
        primary_watermark = int(remote.health().get("watermark", 0))
        copied = 0
        for record in remote.search("*"):
            have = set(self.local.revisions(record.name))
            for revision in remote.revisions(record.name):
                if revision in have:
                    continue
                if self._copy_revision(remote, record, revision):
                    copied += 1
        return copied, primary_watermark

    def _copy_revision(self, remote, record, revision: int) -> bool:
        """Fetch + verify + install one revision tree; True when installed."""
        manifest = remote.manifest(record.name, revision)
        tmp = (
            self.local.root / "repos" / record.name
            / f".sync.{revision}.tmp"
        )
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.parent.mkdir(parents=True, exist_ok=True)
        try:
            remote.fetch_tree(record.name, revision, tmp)
            if manifest is not None:
                verify_tree(tmp, manifest)
            return self.local.install_revision(
                record.name, revision, tmp, manifest or {}, record
            )
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    # -- background thread ----------------------------------------------------

    def start(self) -> "Replicator":
        """Start the poll thread (idempotent per lifecycle)."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("replicator already started")
            self._wake.clear()
            self._thread = threading.Thread(
                target=self._run,
                name=f"dlv-hub-sync-{self.local.root.name}",
                daemon=True,
            )
            thread = self._thread
        thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        self._wake.set()
        if thread is not None:
            thread.join(timeout=10.0)

    def _run(self) -> None:
        while not self._wake.is_set():
            try:
                self.sync_once()
            except Exception:  # noqa: BLE001 - stats/metrics already updated
                pass
            self._wake.wait(self.interval_s)

    def stats(self) -> dict:
        """Snapshot of sync progress (what ``/healthz`` reports)."""
        with self._lock:
            return dict(self._stats)

    def __enter__(self) -> "Replicator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
