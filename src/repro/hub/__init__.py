"""ModelHub sharing service: publish, search, and pull DLV repositories.

The paper hosts DLV repositories in an online service playing the role
GitHub plays for code (Sec. III-C).  Networking is out of scope offline,
so the hub here is a *directory-backed* service with the same API surface:
a :class:`~repro.hub.server.HubServer` owning a hub directory, and a
:class:`~repro.hub.client.HubClient` that publishes whole repositories,
searches their metadata, and pulls them back as working local
repositories.  Because a DLV repository is standalone (catalog + chunk
store), hosting it whole is exactly the paper's design.

:class:`~repro.hub.httpd.HubHTTPServer` puts a real (stdlib) HTTP
transport in front of the same directory: ``dlv hub-serve`` exposes
search and pull over the wire, with ``/metrics`` (JSON or Prometheus
text) and ``traceparent`` adoption, and :class:`HubClient` speaks to it
transparently whenever the hub location is an ``http(s)://`` URL.

The hub scales out as a *replicated fleet*: a primary (the only
writable peer) plus read replicas kept in sync by
:class:`~repro.hub.replication.Replicator` (async pull-based sync with
revision watermarks and lag metrics).  :class:`~repro.hub.fleet.FleetClient`
— used automatically by :class:`HubClient` when given several URLs —
adds health-checked read routing, per-peer circuit breakers, and
mid-pull failover on top of the resumable chunk transfer in
:mod:`repro.hub.transfer`, so one dead or flapping peer never fails a
pull.
"""

from repro.hub.client import HubClient
from repro.hub.fleet import CircuitBreaker, FleetClient, HubFleet, NoHealthyPeer
from repro.hub.httpd import (
    HubHTTPServer,
    RemoteHub,
    RemoteHubError,
    RemoteHubUnavailable,
)
from repro.hub.replication import Replicator
from repro.hub.server import HubRecord, HubServer

__all__ = [
    "CircuitBreaker",
    "FleetClient",
    "HubClient",
    "HubFleet",
    "HubHTTPServer",
    "HubRecord",
    "HubServer",
    "NoHealthyPeer",
    "RemoteHub",
    "RemoteHubError",
    "RemoteHubUnavailable",
    "Replicator",
]
