"""ModelHub sharing service: publish, search, and pull DLV repositories.

The paper hosts DLV repositories in an online service playing the role
GitHub plays for code (Sec. III-C).  Networking is out of scope offline,
so the hub here is a *directory-backed* service with the same API surface:
a :class:`~repro.hub.server.HubServer` owning a hub directory, and a
:class:`~repro.hub.client.HubClient` that publishes whole repositories,
searches their metadata, and pulls them back as working local
repositories.  Because a DLV repository is standalone (catalog + chunk
store), hosting it whole is exactly the paper's design.

:class:`~repro.hub.httpd.HubHTTPServer` puts a real (stdlib) HTTP
transport in front of the same directory: ``dlv hub-serve`` exposes
search and pull over the wire, with ``/metrics`` (JSON or Prometheus
text) and ``traceparent`` adoption, and :class:`HubClient` speaks to it
transparently whenever the hub location is an ``http(s)://`` URL.
"""

from repro.hub.client import HubClient
from repro.hub.httpd import HubHTTPServer, RemoteHub, RemoteHubError
from repro.hub.server import HubRecord, HubServer

__all__ = [
    "HubClient",
    "HubHTTPServer",
    "HubRecord",
    "HubServer",
    "RemoteHub",
    "RemoteHubError",
]
