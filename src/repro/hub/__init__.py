"""ModelHub sharing service: publish, search, and pull DLV repositories.

The paper hosts DLV repositories in an online service playing the role
GitHub plays for code (Sec. III-C).  Networking is out of scope offline,
so the hub here is a *directory-backed* service with the same API surface:
a :class:`~repro.hub.server.HubServer` owning a hub directory, and a
:class:`~repro.hub.client.HubClient` that publishes whole repositories,
searches their metadata, and pulls them back as working local
repositories.  Because a DLV repository is standalone (catalog + chunk
store), hosting it whole is exactly the paper's design.
"""

from repro.hub.client import HubClient
from repro.hub.server import HubRecord, HubServer

__all__ = ["HubClient", "HubRecord", "HubServer"]
