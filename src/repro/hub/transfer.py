"""Resumable chunk transfer: the ``.partial`` state file and fetch loop.

A hub pull moves a whole published tree file-by-file.  When the peer
dies mid-transfer the bytes already moved are not garbage — every file
is covered by the revision's sha256 manifest, so a completed file can be
*proven* complete and never fetched again.  This module owns that
protocol:

* :class:`PartialState` — the ``.dlv.pull.partial.json`` file written
  beside the in-flight temp tree.  It records the pull's identity
  (``name``/``revision``) plus a map of relative path → verified sha256
  for every file that has fully landed.  A later pull with the same
  identity adopts the state and skips those files; a pull for a
  different name/revision discards it.
* :class:`ResumableTransfer` — the fetch loop.  Each file is downloaded
  (resuming mid-file via an HTTP Range offset when partial bytes are
  already on disk), hashed, checked against the manifest entry, and only
  then recorded in the state file.  A peer failure leaves the state
  consistent, so the caller can swap in another peer's fetch function
  and call :meth:`run` again — completed files are not re-downloaded.

The fetch function signature is ``fetch(rel, offset) -> bytes`` (bytes
from ``offset`` to EOF), which both :class:`~repro.hub.httpd.RemoteHub`
and test doubles satisfy; the transfer layer itself never touches a
socket.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.faults import fs as ffs
from repro.hub.server import HubIntegrityError
from repro.obs.metrics import counter

__all__ = ["PartialState", "ResumableTransfer", "TransferStats"]

#: Well-known names beside a pull destination (stable across processes,
#: so a pull restarted after a crash finds its own leftovers).
TMP_DIR_NAME = ".dlv.pull.tmp"
PARTIAL_STATE_NAME = ".dlv.pull.partial.json"


class PartialState:
    """The ``.partial`` file: which files of which pull are verified.

    Args:
        path: Where the state file lives (beside the temp tree).
        name / revision: Identity of the pull this state belongs to.
    """

    def __init__(self, path: str | Path, name: str, revision: int) -> None:
        self.path = Path(path)
        self.name = name
        self.revision = int(revision)
        self.completed: dict[str, str] = {}

    @classmethod
    def load(cls, path: str | Path) -> Optional["PartialState"]:
        """Read a state file; ``None`` when absent or unreadable."""
        path = Path(path)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            state = cls(path, data["name"], data["revision"])
            state.completed = {
                str(k): str(v) for k, v in data["completed"].items()
            }
            return state
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def matches(self, name: str, revision: int) -> bool:
        return self.name == name and self.revision == int(revision)

    def mark(self, rel: str, digest: str) -> None:
        """Record one verified file and persist the state durably."""
        self.completed[rel] = digest
        self.save()

    def save(self) -> None:
        ffs.write_bytes(
            self.path,
            json.dumps(
                {
                    "name": self.name,
                    "revision": self.revision,
                    "completed": self.completed,
                },
                indent=2,
            ).encode(),
            site="hub.pull.partial",
        )

    def discard(self) -> None:
        self.path.unlink(missing_ok=True)


@dataclass
class TransferStats:
    """What one :meth:`ResumableTransfer.run` round actually moved."""

    files_fetched: int = 0
    files_resumed: int = 0
    bytes_fetched: int = 0
    bytes_resumed: int = 0


class ResumableTransfer:
    """Fetch a manifest's files into ``tmp``, resumable and verified.

    Args:
        tmp: Temp tree the files land in (created on demand).
        state: The pull's :class:`PartialState` (already matched to this
            name/revision by the caller).
        manifest: ``relative path -> sha256`` — the transfer's ground
            truth; a fetched file that does not hash to its manifest
            entry is refetched from offset 0 once, then the transfer
            fails with :class:`~repro.hub.server.HubIntegrityError`.
        files: Relative paths to move (normally ``manifest.keys()``).
    """

    def __init__(
        self,
        tmp: str | Path,
        state: PartialState,
        manifest: dict[str, str],
        files: Optional[list[str]] = None,
    ) -> None:
        self.tmp = Path(tmp)
        self.state = state
        self.manifest = dict(manifest)
        self.files = sorted(files if files is not None else manifest)
        self.stats = TransferStats()

    def pending(self) -> list[str]:
        """Files not yet verified-complete (adopting prior state)."""
        remaining = []
        for rel in self.files:
            expected = self.manifest.get(rel)
            done = (
                expected is not None
                and self.state.completed.get(rel) == expected
                and (self.tmp / rel).is_file()
            )
            if not done:
                remaining.append(rel)
        return remaining

    def run(self, fetch: Callable[[str, int], bytes]) -> TransferStats:
        """Fetch every pending file through ``fetch(rel, offset)``.

        Raises whatever ``fetch`` raises on a network failure — the
        state file already records everything that completed, so the
        caller may call :meth:`run` again with a different peer's fetch
        function and only the remainder moves.
        """
        for rel in self.pending():
            self._fetch_one(rel, fetch)
        return self.stats

    def _fetch_one(self, rel: str, fetch: Callable[[str, int], bytes]) -> None:
        expected = self.manifest.get(rel)
        target = self.tmp / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        offset = target.stat().st_size if target.is_file() else 0
        for attempt in range(2):
            if offset:
                # Mid-file resume: ask for the tail, append to the
                # partial bytes a dead peer left behind.
                data = fetch(rel, offset)
                with open(target, "ab") as handle:
                    handle.write(data)
                self.stats.bytes_resumed += offset
                counter("hub.pull.bytes_resumed").inc(offset)
            else:
                data = fetch(rel, 0)
                target.write_bytes(data)
            self.stats.bytes_fetched += len(data)
            digest = hashlib.sha256(target.read_bytes()).hexdigest()
            if expected is None or digest == expected:
                self.stats.files_fetched += 1
                counter("hub.pull.files_fetched").inc()
                self.state.mark(rel, digest)
                return
            # Corrupt (e.g. the partial bytes were torn): one clean retry.
            counter("hub.pull.file_checksum_retries").inc()
            target.unlink(missing_ok=True)
            offset = 0
        raise HubIntegrityError(
            f"file {rel!r} failed checksum verification after refetch"
        )


def open_transfer(
    dest: Path,
    name: str,
    revision: int,
    manifest: dict[str, str],
    files: Optional[list[str]] = None,
) -> ResumableTransfer:
    """Set up (or adopt) the resumable transfer workspace under ``dest``.

    Uses the well-known ``.dlv.pull.tmp`` / ``.dlv.pull.partial.json``
    names so a crashed pull's leftovers are found and resumed instead of
    accumulating as orphans.  State belonging to a *different*
    name/revision is discarded along with its temp tree.
    """
    tmp = dest / TMP_DIR_NAME
    state_path = dest / PARTIAL_STATE_NAME
    state = PartialState.load(state_path)
    if state is not None and state.matches(name, revision):
        resumed = sum(
            1
            for rel, digest in state.completed.items()
            if manifest.get(rel) == digest and (tmp / rel).is_file()
        )
        if resumed:
            counter("hub.pull.resumes").inc()
            counter("hub.pull.files_resumed").inc(resumed)
    else:
        if tmp.exists():
            shutil.rmtree(tmp)
        state = PartialState(state_path, name, revision)
        state.save()
    tmp.mkdir(parents=True, exist_ok=True)
    transfer = ResumableTransfer(tmp, state, manifest, files)
    transfer.stats.files_resumed = len(transfer.files) - len(
        transfer.pending()
    )
    return transfer
