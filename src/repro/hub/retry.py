"""Retrying wrapper for hub operations.

Hub traffic is the one place this system talks to storage it does not
own, so transient I/O failures (NFS hiccups, racing publishers, flapping
peers) are expected.  :class:`Retrier` retries a callable under
exponential backoff with *deterministic* jitter — the jitter is a hash
of ``(seed, attempt)`` rather than a PRNG draw, so tests can assert
exact sleep sequences and two processes with different seeds still
de-synchronize.

Two caller-protection features on top of the attempt budget:

* ``deadline_s`` caps *total elapsed time* across attempts (measured by
  an injectable monotonic clock).  An attempt budget alone can exceed
  any caller SLA once backoff delays stack up; with a deadline the
  retrier gives up early rather than sleeping past it.
* A raised exception carrying a ``retry_after`` attribute (seconds) —
  e.g. :class:`~repro.hub.httpd.RemoteHubUnavailable` built from a
  server's ``Retry-After`` header on 429/503 — overrides the computed
  backoff for that retry: the server knows its own recovery time better
  than our exponential guess.

Only exceptions in ``retry_on`` (default :class:`OSError`) are retried.
:class:`~repro.faults.plan.CrashSimulated` is a ``BaseException`` and
passes straight through — a retry wrapper must not resurrect a process
the fault plan declared dead.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Optional, Sequence

from repro.obs.metrics import counter


class RetryDeadlineExceeded(OSError):
    """The retrier's total-elapsed deadline expired before success.

    Carries the original failure as ``__cause__``.  An :class:`OSError`
    subclass so an *outer* retrier (with its own, longer deadline) may
    still treat it as transient.
    """


class Retrier:
    """Call a function, retrying transient failures with backoff.

    Args:
        attempts: Total tries (first call included); must be >= 1.
        base_delay: Backoff before the second try, doubled per retry.
        max_delay: Ceiling on the un-jittered backoff.
        retry_on: Exception types that trigger a retry; anything else
            propagates immediately.
        sleep: Injectable sleep function (tests pass a recorder).
        seed: Jitter seed — retries are fully deterministic given it.
        deadline_s: Optional cap on total elapsed seconds across all
            attempts.  When the next backoff would overrun it, the
            retrier raises :class:`RetryDeadlineExceeded` immediately
            instead of sleeping.
        clock: Injectable monotonic clock backing the deadline.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        retry_on: Sequence[type] = (OSError,),
        sleep: Optional[Callable[[float], None]] = None,
        seed: int = 0,
        deadline_s: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.retry_on = tuple(retry_on)
        self.sleep = sleep if sleep is not None else time.sleep
        self.seed = seed
        self.deadline_s = deadline_s
        self.clock = clock if clock is not None else time.monotonic

    def jitter(self, attempt: int) -> float:
        """Deterministic uniform-ish value in ``[0, 1)`` for one attempt."""
        digest = hashlib.sha256(f"{self.seed}:{attempt}".encode()).digest()
        return int.from_bytes(digest[:4], "big") / 2**32

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered.

        The jitter scales the exponential base delay by a factor in
        ``[0.5, 1.5)`` so concurrent clients spread out.
        """
        base = min(self.base_delay * (2**attempt), self.max_delay)
        return base * (0.5 + self.jitter(attempt))

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)``, retrying per this policy."""
        start = self.clock()
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                counter("hub.retry.attempts").inc()
                if attempt + 1 == self.attempts:
                    counter("hub.retry.giveups").inc()
                    raise
                delay = self.delay(attempt)
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None:
                    # The server told us when to come back; believe it
                    # (still capped by the overall deadline below).
                    delay = float(retry_after)
                    counter("hub.retry.retry_after_honored").inc()
                if self.deadline_s is not None:
                    elapsed = self.clock() - start
                    if elapsed + delay > self.deadline_s:
                        counter("hub.retry.deadline_exceeded").inc()
                        raise RetryDeadlineExceeded(
                            f"retry deadline of {self.deadline_s:g}s exceeded "
                            f"after {attempt + 1} attempt(s) "
                            f"({elapsed:.3f}s elapsed, next delay {delay:.3f}s)"
                        ) from exc
                self.sleep(delay)
