"""Retrying wrapper for hub operations.

Hub traffic is the one place this system talks to storage it does not
own, so transient I/O failures (NFS hiccups, racing publishers) are
expected.  :class:`Retrier` retries a callable under exponential backoff
with *deterministic* jitter — the jitter is a hash of ``(seed, attempt)``
rather than a PRNG draw, so tests can assert exact sleep sequences and
two processes with different seeds still de-synchronize.

Only exceptions in ``retry_on`` (default :class:`OSError`) are retried.
:class:`~repro.faults.plan.CrashSimulated` is a ``BaseException`` and
passes straight through — a retry wrapper must not resurrect a process
the fault plan declared dead.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Optional, Sequence

from repro.obs.metrics import counter


class Retrier:
    """Call a function, retrying transient failures with backoff.

    Args:
        attempts: Total tries (first call included); must be >= 1.
        base_delay: Backoff before the second try, doubled per retry.
        max_delay: Ceiling on the un-jittered backoff.
        retry_on: Exception types that trigger a retry; anything else
            propagates immediately.
        sleep: Injectable sleep function (tests pass a recorder).
        seed: Jitter seed — retries are fully deterministic given it.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        retry_on: Sequence[type] = (OSError,),
        sleep: Optional[Callable[[float], None]] = None,
        seed: int = 0,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.retry_on = tuple(retry_on)
        self.sleep = sleep if sleep is not None else time.sleep
        self.seed = seed

    def jitter(self, attempt: int) -> float:
        """Deterministic uniform-ish value in ``[0, 1)`` for one attempt."""
        digest = hashlib.sha256(f"{self.seed}:{attempt}".encode()).digest()
        return int.from_bytes(digest[:4], "big") / 2**32

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered.

        The jitter scales the exponential base delay by a factor in
        ``[0.5, 1.5)`` so concurrent clients spread out.
        """
        base = min(self.base_delay * (2**attempt), self.max_delay)
        return base * (0.5 + self.jitter(attempt))

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)``, retrying per this policy."""
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except self.retry_on:
                counter("hub.retry.attempts").inc()
                if attempt + 1 == self.attempts:
                    counter("hub.retry.giveups").inc()
                    raise
                self.sleep(self.delay(attempt))
