"""HTTP transport for the hub: :class:`HubHTTPServer` and :class:`RemoteHub`.

The directory-backed :class:`~repro.hub.server.HubServer` stays the
source of truth; this module puts a stdlib ``ThreadingHTTPServer`` in
front of it so a :class:`~repro.hub.client.HubClient` on another machine
(or just another process) can search and pull over the wire.  Endpoints:

=============================================  ==============================
``GET /healthz``                               Liveness probe.
``GET /metrics``                               ``repro.obs`` dump (JSON);
                                               Prometheus text under
                                               ``Accept: text/plain``.
``GET /v1/trace``                              Span ring buffer (orphan-
                                               marked dicts).
``GET /v1/index?pattern=``                     Search the published index.
``GET /v1/repos/<name>/revisions``             Stored revisions of a repo.
``GET /v1/repos/<name>/<rev>/manifest``        Checksum manifest (``latest``
                                               resolves the newest revision).
``GET /v1/repos/<name>/<rev>/files``           Relative paths in the tree.
``GET /v1/repos/<name>/<rev>/files/<rel>``     Raw bytes of one file.
=============================================  ==============================

Every handler adopts an incoming ``traceparent`` header, so a remote
pull's server-side ``hub.http.*`` spans join the puller's trace — the
same propagation contract the serving tier speaks.

:class:`RemoteHub` is the matching client: keep-alive ``http.client``,
the same ``search``/``revisions``/``manifest`` surface as
:class:`HubServer`, plus :meth:`RemoteHub.fetch_tree`, which downloads a
whole published revision file-by-file.  It sends the calling context's
``traceparent`` on every request and bills downloaded bytes to the
context's :class:`~repro.obs.cost.RequestCost`.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from repro.hub.server import HubRecord, HubServer
from repro.obs.cost import charge
from repro.obs.export import mark_orphans
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.propagation import (
    TRACEPARENT_HEADER,
    current_traceparent,
    parse_traceparent,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_text,
    wants_text,
)
from repro.obs.tracing import get_recorder, trace_span

__all__ = ["HubHTTPServer", "RemoteHub", "RemoteHubError"]


class RemoteHubError(RuntimeError):
    """Non-2xx response from a remote hub."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class _HTTPError(Exception):
    """Internal: carry an HTTP status + JSON body up to the dispatcher."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP exchange; state lives on ``server.hub_http``."""

    protocol_version = "HTTP/1.1"
    server_version = "dlv-hub"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # requests are observable via /metrics, not stderr noise

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str = "application/octet-stream") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self) -> None:
        hub = self.server.hub_http
        parsed = urllib.parse.urlsplit(self.path)
        parts = [
            urllib.parse.unquote(p)
            for p in parsed.path.split("/")
            if p != ""
        ]
        query = urllib.parse.parse_qs(parsed.query)
        ctx = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        try:
            with trace_span(
                "hub.http",
                trace_id=ctx.trace_id if ctx else None,
                remote_parent=ctx.span_id if ctx else None,
                path=parsed.path,
            ):
                self._route(hub, parts, query)
        except _HTTPError as exc:
            self._send_json(exc.status, exc.payload)
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - surface, don't kill thread
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, hub: "HubHTTPServer", parts: list[str],
               query: dict[str, list[str]]) -> None:
        if parts == ["healthz"]:
            self._send_json(200, {"status": "ok", "root": str(hub.server.root)})
        elif parts == ["metrics"]:
            if wants_text(self.headers.get("Accept")):
                self._send_bytes(
                    200,
                    render_text(hub.registry).encode(),
                    PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._send_json(200, hub.registry.as_dict())
        elif parts == ["v1", "trace"]:
            recorder = get_recorder()
            self._send_json(200, {
                "total_recorded": recorder.total_recorded,
                "spans": mark_orphans(
                    [s.to_dict() for s in recorder.spans()]
                ),
            })
        elif parts == ["v1", "index"]:
            pattern = query.get("pattern", ["*"])[0]
            self._send_json(200, {
                "records": [r.to_dict() for r in hub.server.search(pattern)]
            })
        elif len(parts) == 4 and parts[:2] == ["v1", "repos"] \
                and parts[3] == "revisions":
            self._send_json(200, {
                "name": parts[2],
                "revisions": hub.server.revisions(parts[2]),
            })
        elif len(parts) == 5 and parts[:2] == ["v1", "repos"] \
                and parts[4] == "manifest":
            name, revision = parts[2], self._revision(parts[3])
            self._send_json(200, {
                "name": name,
                "revision": self._resolve(hub, name, revision),
                "manifest": hub.server.manifest(name, revision),
            })
        elif len(parts) == 5 and parts[:2] == ["v1", "repos"] \
                and parts[4] == "files":
            name, revision = parts[2], self._revision(parts[3])
            tree = hub.server.get(name, revision)
            files = sorted(
                p.relative_to(tree).as_posix()
                for p in tree.rglob("*")
                if p.is_file()
            )
            self._send_json(200, {
                "name": name,
                "revision": self._resolve(hub, name, revision),
                "files": files,
            })
        elif len(parts) >= 6 and parts[:2] == ["v1", "repos"] \
                and parts[4] == "files":
            name, revision = parts[2], self._revision(parts[3])
            rel = "/".join(parts[5:])
            tree = hub.server.get(name, revision).resolve()
            target = (tree / rel).resolve()
            # Traversal guard: the resolved path must stay inside the
            # published tree, whatever ".." or symlink tricks ``rel`` pulls.
            if tree not in target.parents and target != tree:
                raise _HTTPError(403, {"error": f"path escapes tree: {rel}"})
            if not target.is_file():
                raise _HTTPError(404, {"error": f"no file {rel}"})
            self._send_bytes(200, target.read_bytes())
        else:
            raise _HTTPError(
                404, {"error": f"no route {self.command} {self.path}"}
            )

    @staticmethod
    def _revision(raw: str) -> Optional[int]:
        """Parse a revision path segment (``latest`` -> newest)."""
        if raw == "latest":
            return None
        try:
            return int(raw)
        except ValueError:
            raise _HTTPError(400, {"error": f"bad revision {raw!r}"}) from None

    @staticmethod
    def _resolve(hub: "HubHTTPServer", name: str,
                 revision: Optional[int]) -> int:
        if revision is not None:
            return revision
        revisions = hub.server.revisions(name)
        if not revisions:
            raise KeyError(f"hub has no repository {name!r}")
        return revisions[-1]

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch()


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    disable_nagle_algorithm = True
    request_queue_size = 128
    hub_http: "HubHTTPServer"


class HubHTTPServer:
    """Serves one hub directory over HTTP (read-only: search + pull).

    Publishing stays a local, filesystem-level operation — the HTTP
    surface deliberately exposes only the verbs a *puller* needs, so an
    exposed hub cannot be written to remotely.

    Args:
        root: Hub directory or an existing :class:`HubServer`.
        host / port: Bind address; port 0 lets the OS pick.
        registry: Metrics registry backing ``/metrics`` (defaults to the
            process-global one, so ``dlv stats`` agrees).
    """

    def __init__(
        self,
        root: str | Path | HubServer,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.server = root if isinstance(root, HubServer) else HubServer(root)
        self.host = host
        self._port = port
        self.registry = registry if registry is not None else get_registry()
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        # Guards lifecycle writes (_httpd/_thread); reads stay lockless.
        self._lifecycle = threading.Lock()

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HubHTTPServer":
        with self._lifecycle:
            if self._httpd is not None:
                raise RuntimeError("hub server already started")
            self._httpd = _Server((self.host, self._port), _Handler)
            self._httpd.hub_http = self
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="dlv-hub-http",
                daemon=True,
            )
            thread = self._thread
        thread.start()
        return self

    def stop(self) -> None:
        with self._lifecycle:
            httpd, thread = self._httpd, self._thread
            self._httpd = None
            self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "HubHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class RemoteHub:
    """Keep-alive HTTP client for a :class:`HubHTTPServer`.

    Mirrors the read side of :class:`HubServer` — ``search``,
    ``revisions``, ``manifest`` — and adds :meth:`fetch_tree` for
    materializing a published revision locally.  One instance per
    thread; the underlying connection is not thread-safe.
    """

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", "https"):
            raise ValueError(f"not an http(s) hub url: {url!r}")
        self.url = url.rstrip("/")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or (443 if parsed.scheme == "https" else 80)
        self.scheme = parsed.scheme
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RemoteHub":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, path: str) -> tuple[int, bytes]:
        if self._conn is None:
            conn_cls = (
                http.client.HTTPSConnection
                if self.scheme == "https"
                else http.client.HTTPConnection
            )
            self._conn = conn_cls(self.host, self.port, timeout=self.timeout)
            self._conn.connect()
            if isinstance(self._conn.sock, socket.socket):
                self._conn.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
        headers = {}
        traceparent = current_traceparent()
        if traceparent:
            headers[TRACEPARENT_HEADER] = traceparent
        self._conn.request("GET", path, headers=headers)
        response = self._conn.getresponse()
        return response.status, response.read()

    def _get(self, path: str) -> tuple[int, bytes]:
        try:
            return self._roundtrip(path)
        except (http.client.HTTPException, ConnectionError, BrokenPipeError):
            self.close()
            return self._roundtrip(path)

    def _get_json(self, path: str) -> dict:
        status, raw = self._get(path)
        try:
            data = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            data = {"error": raw.decode(errors="replace")}
        if status >= 400:
            if status == 404:
                raise KeyError(data.get("error", f"not found: {path}"))
            raise RemoteHubError(status, data)
        return data

    def _get_bytes(self, path: str) -> bytes:
        status, raw = self._get(path)
        if status >= 400:
            try:
                data = json.loads(raw or b"{}")
            except json.JSONDecodeError:
                data = {"error": raw.decode(errors="replace")}
            if status == 404:
                raise KeyError(data.get("error", f"not found: {path}"))
            raise RemoteHubError(status, data)
        return raw

    # -- hub surface ---------------------------------------------------------

    def health(self) -> dict:
        return self._get_json("/healthz")

    def metrics(self) -> dict:
        return self._get_json("/metrics")

    def search(self, pattern: str = "*") -> list[HubRecord]:
        quoted = urllib.parse.quote(pattern)
        payload = self._get_json(f"/v1/index?pattern={quoted}")
        return [HubRecord.from_dict(d) for d in payload["records"]]

    def revisions(self, name: str) -> list[int]:
        quoted = urllib.parse.quote(name, safe="")
        return self._get_json(f"/v1/repos/{quoted}/revisions")["revisions"]

    def manifest(
        self, name: str, revision: Optional[int] = None
    ) -> Optional[dict]:
        quoted = urllib.parse.quote(name, safe="")
        rev = "latest" if revision is None else str(revision)
        return self._get_json(
            f"/v1/repos/{quoted}/{rev}/manifest"
        )["manifest"]

    def resolve_revision(
        self, name: str, revision: Optional[int] = None
    ) -> int:
        """The concrete revision number ``latest`` currently means."""
        if revision is not None:
            return revision
        quoted = urllib.parse.quote(name, safe="")
        return self._get_json(f"/v1/repos/{quoted}/latest/files")["revision"]

    def files(self, name: str, revision: Optional[int] = None) -> list[str]:
        quoted = urllib.parse.quote(name, safe="")
        rev = "latest" if revision is None else str(revision)
        return self._get_json(f"/v1/repos/{quoted}/{rev}/files")["files"]

    def fetch_tree(
        self, name: str, revision: Optional[int], dest: str | Path
    ) -> int:
        """Download a published revision into ``dest``; returns bytes read.

        Files land one request at a time over the keep-alive connection;
        each file's bytes are billed to the calling context's request
        cost, so a ``hub.pull`` bill reflects real transfer volume.
        """
        dest = Path(dest)
        quoted = urllib.parse.quote(name, safe="")
        rev = self.resolve_revision(name, revision)
        total = 0
        for rel in self.files(name, rev):
            quoted_rel = "/".join(
                urllib.parse.quote(seg, safe="") for seg in rel.split("/")
            )
            data = self._get_bytes(
                f"/v1/repos/{quoted}/{rev}/files/{quoted_rel}"
            )
            charge(bytes_read=len(data), chunks_fetched=1)
            target = dest / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
            total += len(data)
        return total
