"""HTTP transport for the hub: :class:`HubHTTPServer` and :class:`RemoteHub`.

The directory-backed :class:`~repro.hub.server.HubServer` stays the
source of truth; this module puts a stdlib ``ThreadingHTTPServer`` in
front of it so a :class:`~repro.hub.client.HubClient` on another machine
(or just another process) can search and pull over the wire.  Endpoints:

=============================================  ==============================
``GET /healthz``                               Liveness + fleet identity:
                                               peer name, role, replication
                                               watermark (and replicator
                                               stats on followers).
``GET /metrics``                               ``repro.obs`` dump (JSON);
                                               Prometheus text under
                                               ``Accept: text/plain``.
``GET /v1/trace``                              Span ring buffer (orphan-
                                               marked dicts).
``GET /v1/index?pattern=``                     Search the published index.
``GET /v1/repos/<name>/revisions``             Stored revisions of a repo.
``GET /v1/repos/<name>/<rev>/manifest``        Checksum manifest (``latest``
                                               resolves the newest revision).
``GET /v1/repos/<name>/<rev>/files``           Relative paths in the tree.
``GET /v1/repos/<name>/<rev>/files/<rel>``     Raw bytes of one file; honors
                                               ``Range: bytes=N-`` with a
                                               206 so interrupted transfers
                                               resume mid-file.
=============================================  ==============================

Every handler adopts an incoming ``traceparent`` header, so a remote
pull's server-side ``hub.http.*`` spans join the puller's trace — the
same propagation contract the serving tier speaks.

Every request also passes one deterministic chaos seam: an injected
:class:`~repro.faults.net.NetFaultPlan` is consulted (site
``"<peer>:<path>"``) before routing, and may answer with an error
status, a 503 + ``Retry-After``, a dropped connection, a truncated body,
or an injected delay — which is how the fleet's failover paths are
proven without real networks misbehaving on cue.

:class:`RemoteHub` is the matching client: keep-alive ``http.client``
with a per-request socket timeout, the same ``search``/``revisions``/
``manifest`` surface as :class:`HubServer`, plus :meth:`RemoteHub.fetch_file`
(range-resumable single file) and :meth:`RemoteHub.fetch_tree`, which
downloads a whole published revision file-by-file.  It sends the calling
context's ``traceparent`` on every request and bills downloaded bytes to
the context's :class:`~repro.obs.cost.RequestCost`.  429/5xx
responses raise :class:`RemoteHubUnavailable` — an :class:`OSError`
carrying any server ``Retry-After`` — so retriers and the fleet's
circuit breakers treat them as transient.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from repro.faults.net import get_net_plan
from repro.hub.server import HubRecord, HubServer
from repro.obs.cost import charge
from repro.obs.export import mark_orphans
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.propagation import (
    TRACEPARENT_HEADER,
    current_traceparent,
    parse_traceparent,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_text,
    wants_text,
)
from repro.obs.tracing import get_recorder, trace_span

__all__ = [
    "HubHTTPServer",
    "RemoteHub",
    "RemoteHubError",
    "RemoteHubUnavailable",
]

#: Default socket/read timeout for hub requests — a hung peer must fail
#: the request (so retries and failover can act), not block a pull forever.
DEFAULT_HUB_TIMEOUT_S = 30.0


class RemoteHubError(RuntimeError):
    """Non-2xx response from a remote hub."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class RemoteHubUnavailable(RemoteHubError, OSError):
    """429/5xx from a remote hub: transient, retry elsewhere or later.

    An :class:`OSError` subclass so :class:`~repro.hub.retry.Retrier`
    retries it; carries the server's ``Retry-After`` (seconds, or
    ``None``) which the retrier honors over its own backoff.
    """

    def __init__(
        self, status: int, payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        RemoteHubError.__init__(self, status, payload)
        self.retry_after = retry_after


class _HTTPError(Exception):
    """Internal: carry an HTTP status + JSON body up to the dispatcher."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP exchange; state lives on ``server.hub_http``."""

    protocol_version = "HTTP/1.1"
    server_version = "dlv-hub"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # requests are observable via /metrics, not stderr noise

    # -- plumbing ------------------------------------------------------------

    def _send_payload(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[dict] = None,
    ) -> None:
        """One choke point for every response — where truncation bites.

        A ``truncate`` net fault promises the full ``Content-Length``
        but writes only the first N bytes and closes the connection, so
        the client's read fails with ``IncompleteRead`` exactly like a
        torn transfer.
        """
        truncate = getattr(self, "_truncate_body", None)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, str(value))
        if truncate is not None and truncate < len(body):
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body[:truncate])
            self.close_connection = True
        else:
            self.end_headers()
            self.wfile.write(body)

    def _send_json(
        self, status: int, payload: dict,
        extra_headers: Optional[dict] = None,
    ) -> None:
        body = json.dumps(payload, default=str).encode()
        self._send_payload(status, body, "application/json", extra_headers)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str = "application/octet-stream",
                    extra_headers: Optional[dict] = None) -> None:
        self._send_payload(status, body, content_type, extra_headers)

    def _apply_net_fault(self, path: str) -> bool:
        """Consult the chaos plan; returns True when the request is done."""
        plan = get_net_plan()
        if plan is None:
            return False
        hub = self.server.hub_http
        point = plan.on_request(f"{hub.peer_name}:{path}")
        if point is None:
            return False
        if point.action == "drop":
            # No response at all: the client sees the connection die.
            self.close_connection = True
            return True
        if point.action == "error":
            self._send_json(point.status, {"error": point.message})
            return True
        if point.action == "unavailable":
            headers = {}
            if point.retry_after is not None:
                headers["Retry-After"] = f"{point.retry_after:g}"
            self._send_json(503, {"error": point.message}, headers)
            return True
        # truncate: let routing proceed; _send_payload tears the body.
        self._truncate_body = point.offset
        return False

    def _dispatch(self) -> None:
        hub = self.server.hub_http
        parsed = urllib.parse.urlsplit(self.path)
        parts = [
            urllib.parse.unquote(p)
            for p in parsed.path.split("/")
            if p != ""
        ]
        query = urllib.parse.parse_qs(parsed.query)
        ctx = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        try:
            if self._apply_net_fault(parsed.path):
                return
            with trace_span(
                "hub.http",
                trace_id=ctx.trace_id if ctx else None,
                remote_parent=ctx.span_id if ctx else None,
                path=parsed.path,
            ):
                self._route(hub, parts, query)
        except _HTTPError as exc:
            self._send_json(exc.status, exc.payload)
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - surface, don't kill thread
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, hub: "HubHTTPServer", parts: list[str],
               query: dict[str, list[str]]) -> None:
        if parts == ["healthz"]:
            self._send_json(200, hub.health_payload())
        elif parts == ["metrics"]:
            if wants_text(self.headers.get("Accept")):
                self._send_bytes(
                    200,
                    render_text(hub.registry).encode(),
                    PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._send_json(200, hub.registry.as_dict())
        elif parts == ["v1", "trace"]:
            recorder = get_recorder()
            self._send_json(200, {
                "total_recorded": recorder.total_recorded,
                "spans": mark_orphans(
                    [s.to_dict() for s in recorder.spans()]
                ),
            })
        elif parts == ["v1", "index"]:
            pattern = query.get("pattern", ["*"])[0]
            self._send_json(200, {
                "records": [r.to_dict() for r in hub.server.search(pattern)]
            })
        elif len(parts) == 4 and parts[:2] == ["v1", "repos"] \
                and parts[3] == "revisions":
            self._send_json(200, {
                "name": parts[2],
                "revisions": hub.server.revisions(parts[2]),
            })
        elif len(parts) == 5 and parts[:2] == ["v1", "repos"] \
                and parts[4] == "manifest":
            name, revision = parts[2], self._revision(parts[3])
            self._send_json(200, {
                "name": name,
                "revision": self._resolve(hub, name, revision),
                "manifest": hub.server.manifest(name, revision),
            })
        elif len(parts) == 5 and parts[:2] == ["v1", "repos"] \
                and parts[4] == "files":
            name, revision = parts[2], self._revision(parts[3])
            tree = hub.server.get(name, revision)
            files = sorted(
                p.relative_to(tree).as_posix()
                for p in tree.rglob("*")
                if p.is_file()
            )
            self._send_json(200, {
                "name": name,
                "revision": self._resolve(hub, name, revision),
                "files": files,
            })
        elif len(parts) >= 6 and parts[:2] == ["v1", "repos"] \
                and parts[4] == "files":
            name, revision = parts[2], self._revision(parts[3])
            rel = "/".join(parts[5:])
            tree = hub.server.get(name, revision).resolve()
            target = (tree / rel).resolve()
            # Traversal guard: the resolved path must stay inside the
            # published tree, whatever ".." or symlink tricks ``rel`` pulls.
            if tree not in target.parents and target != tree:
                raise _HTTPError(403, {"error": f"path escapes tree: {rel}"})
            if not target.is_file():
                raise _HTTPError(404, {"error": f"no file {rel}"})
            data = target.read_bytes()
            start = self._range_start(len(data))
            if start is None:
                self._send_bytes(200, data)
            else:
                self._send_bytes(
                    206,
                    data[start:],
                    extra_headers={
                        "Content-Range":
                            f"bytes {start}-{len(data) - 1}/{len(data)}",
                    },
                )
        else:
            raise _HTTPError(
                404, {"error": f"no route {self.command} {self.path}"}
            )

    def _range_start(self, size: int) -> Optional[int]:
        """Parse an open-ended ``Range: bytes=N-`` header (or ``None``).

        Only the suffix-open form the resumable transfer sends is
        supported; anything else is ignored and the full body returned
        (a legal, if unhelpful, server response to any Range request).
        """
        header = self.headers.get("Range", "")
        if not header.startswith("bytes=") or not header.endswith("-"):
            return None
        raw = header[len("bytes="):-1]
        if not raw.isdigit():
            return None
        start = int(raw)
        if start <= 0 or start > size:
            return None
        return start

    @staticmethod
    def _revision(raw: str) -> Optional[int]:
        """Parse a revision path segment (``latest`` -> newest)."""
        if raw == "latest":
            return None
        try:
            return int(raw)
        except ValueError:
            raise _HTTPError(400, {"error": f"bad revision {raw!r}"}) from None

    @staticmethod
    def _resolve(hub: "HubHTTPServer", name: str,
                 revision: Optional[int]) -> int:
        if revision is not None:
            return revision
        revisions = hub.server.revisions(name)
        if not revisions:
            raise KeyError(f"hub has no repository {name!r}")
        return revisions[-1]

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch()


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    disable_nagle_algorithm = True
    request_queue_size = 128
    hub_http: "HubHTTPServer"


class HubHTTPServer:
    """Serves one hub directory over HTTP (read-only: search + pull).

    Publishing stays a local, filesystem-level operation — the HTTP
    surface deliberately exposes only the verbs a *puller* needs, so an
    exposed hub cannot be written to remotely.

    Args:
        root: Hub directory or an existing :class:`HubServer`.
        host / port: Bind address; port 0 lets the OS pick.
        registry: Metrics registry backing ``/metrics`` (defaults to the
            process-global one, so ``dlv stats`` agrees).
        peer_name: Fleet identity reported by ``/healthz`` and used as
            the chaos-plan site prefix (default ``"hub"``).
        role: ``"primary"`` or ``"replica"`` — advisory, reported by
            ``/healthz`` so a :class:`~repro.hub.fleet.FleetClient` can
            tell the topology apart.
        replicator: Optional :class:`~repro.hub.replication.Replicator`
            whose stats ``/healthz`` reports.  Lifecycle stays with the
            caller — the HTTP server never starts or stops replication.
    """

    def __init__(
        self,
        root: str | Path | HubServer,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        peer_name: str = "hub",
        role: str = "primary",
        replicator=None,
    ) -> None:
        self.server = root if isinstance(root, HubServer) else HubServer(root)
        self.host = host
        self._port = port
        self.registry = registry if registry is not None else get_registry()
        self.peer_name = peer_name
        self.role = role
        self.replicator = replicator
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        # Guards lifecycle writes (_httpd/_thread); reads stay lockless.
        self._lifecycle = threading.Lock()

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health_payload(self) -> dict:
        """What ``/healthz`` reports: liveness plus fleet identity."""
        payload = {
            "status": "ok",
            "root": str(self.server.root),
            "peer": self.peer_name,
            "role": self.role,
            "watermark": self.server.watermark(),
        }
        if self.replicator is not None:
            payload["replication"] = self.replicator.stats()
        return payload

    def start(self) -> "HubHTTPServer":
        with self._lifecycle:
            if self._httpd is not None:
                raise RuntimeError("hub server already started")
            self._httpd = _Server((self.host, self._port), _Handler)
            self._httpd.hub_http = self
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"dlv-hub-http-{self.peer_name}",
                daemon=True,
            )
            thread = self._thread
        thread.start()
        return self

    def stop(self) -> None:
        with self._lifecycle:
            httpd, thread = self._httpd, self._thread
            self._httpd = None
            self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "HubHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class RemoteHub:
    """Keep-alive HTTP client for a :class:`HubHTTPServer`.

    Mirrors the read side of :class:`HubServer` — ``search``,
    ``revisions``, ``manifest`` — and adds :meth:`fetch_file` /
    :meth:`fetch_tree` for materializing published bytes locally.  One
    instance per thread; the underlying connection is not thread-safe.

    Args:
        url: ``http(s)://`` address of a running hub.
        timeout: Socket timeout per request, seconds
            (:data:`DEFAULT_HUB_TIMEOUT_S`).  Covers connect *and* each
            read, so a peer that accepts and then hangs fails the
            request instead of blocking a pull indefinitely.
    """

    def __init__(
        self, url: str, timeout: float = DEFAULT_HUB_TIMEOUT_S
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", "https"):
            raise ValueError(f"not an http(s) hub url: {url!r}")
        self.url = url.rstrip("/")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or (443 if parsed.scheme == "https" else 80)
        self.scheme = parsed.scheme
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RemoteHub":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(
        self, path: str, extra_headers: Optional[dict] = None
    ) -> tuple[int, bytes, dict]:
        if self._conn is None:
            conn_cls = (
                http.client.HTTPSConnection
                if self.scheme == "https"
                else http.client.HTTPConnection
            )
            self._conn = conn_cls(self.host, self.port, timeout=self.timeout)
            self._conn.connect()
            if isinstance(self._conn.sock, socket.socket):
                self._conn.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
        headers = dict(extra_headers or {})
        traceparent = current_traceparent()
        if traceparent:
            headers[TRACEPARENT_HEADER] = traceparent
        self._conn.request("GET", path, headers=headers)
        response = self._conn.getresponse()
        return response.status, response.read(), dict(response.getheaders())

    def _get(
        self, path: str, extra_headers: Optional[dict] = None
    ) -> tuple[int, bytes, dict]:
        try:
            return self._roundtrip(path, extra_headers)
        except (http.client.HTTPException, ConnectionError, BrokenPipeError):
            # Stale keep-alive connection: reconnect once and retry.  A
            # second failure propagates — that is a peer problem, and
            # the caller's retrier/failover owns it from here.
            self.close()
            try:
                return self._roundtrip(path, extra_headers)
            except Exception:
                self.close()
                raise
        except OSError:
            self.close()
            raise

    @staticmethod
    def _retry_after(headers: dict) -> Optional[float]:
        raw = headers.get("Retry-After")
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:  # http-date form: not worth parsing here
            return None

    def _raise_for_status(
        self, path: str, status: int, raw: bytes, headers: dict
    ) -> None:
        if status < 400:
            return
        try:
            data = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            data = {"error": raw.decode(errors="replace")}
        if status == 404:
            raise KeyError(data.get("error", f"not found: {path}"))
        if status == 429 or status >= 500:
            # Any server-side failure is transient from the client's
            # seat: retryable here, failover-eligible in a fleet.
            raise RemoteHubUnavailable(
                status, data, retry_after=self._retry_after(headers)
            )
        raise RemoteHubError(status, data)

    def _get_json(self, path: str) -> dict:
        status, raw, headers = self._get(path)
        self._raise_for_status(path, status, raw, headers)
        try:
            return json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise RemoteHubError(
                status, {"error": f"invalid JSON body: {exc}"}
            ) from None

    def _get_bytes(
        self, path: str, extra_headers: Optional[dict] = None
    ) -> tuple[int, bytes]:
        status, raw, headers = self._get(path, extra_headers)
        self._raise_for_status(path, status, raw, headers)
        return status, raw

    # -- hub surface ---------------------------------------------------------

    def health(self) -> dict:
        return self._get_json("/healthz")

    def metrics(self) -> dict:
        return self._get_json("/metrics")

    def search(self, pattern: str = "*") -> list[HubRecord]:
        quoted = urllib.parse.quote(pattern)
        payload = self._get_json(f"/v1/index?pattern={quoted}")
        return [HubRecord.from_dict(d) for d in payload["records"]]

    def revisions(self, name: str) -> list[int]:
        quoted = urllib.parse.quote(name, safe="")
        return self._get_json(f"/v1/repos/{quoted}/revisions")["revisions"]

    def manifest(
        self, name: str, revision: Optional[int] = None
    ) -> Optional[dict]:
        quoted = urllib.parse.quote(name, safe="")
        rev = "latest" if revision is None else str(revision)
        return self._get_json(
            f"/v1/repos/{quoted}/{rev}/manifest"
        )["manifest"]

    def resolve_revision(
        self, name: str, revision: Optional[int] = None
    ) -> int:
        """The concrete revision number ``latest`` currently means."""
        if revision is not None:
            return revision
        quoted = urllib.parse.quote(name, safe="")
        return self._get_json(f"/v1/repos/{quoted}/latest/files")["revision"]

    def files(self, name: str, revision: Optional[int] = None) -> list[str]:
        quoted = urllib.parse.quote(name, safe="")
        rev = "latest" if revision is None else str(revision)
        return self._get_json(f"/v1/repos/{quoted}/{rev}/files")["files"]

    def fetch_file(
        self, name: str, revision: int, rel: str, offset: int = 0
    ) -> bytes:
        """Bytes of one published file, from ``offset`` to EOF.

        A non-zero offset is sent as ``Range: bytes=N-``; a server that
        ignores the header (answering 200 with the full body) is
        handled by slicing locally, so callers always receive exactly
        the tail they asked for.  Downloaded bytes are billed to the
        calling context's request cost.
        """
        quoted = urllib.parse.quote(name, safe="")
        quoted_rel = "/".join(
            urllib.parse.quote(seg, safe="") for seg in rel.split("/")
        )
        path = f"/v1/repos/{quoted}/{revision}/files/{quoted_rel}"
        headers = {"Range": f"bytes={offset}-"} if offset > 0 else None
        status, data = self._get_bytes(path, headers)
        if offset > 0 and status != 206:
            data = data[offset:]
        charge(bytes_read=len(data), chunks_fetched=1)
        return data

    def fetch_tree(
        self, name: str, revision: Optional[int], dest: str | Path
    ) -> int:
        """Download a published revision into ``dest``; returns bytes read.

        Files land one request at a time over the keep-alive connection;
        each file's bytes are billed to the calling context's request
        cost, so a ``hub.pull`` bill reflects real transfer volume.
        """
        dest = Path(dest)
        rev = self.resolve_revision(name, revision)
        total = 0
        for rel in self.files(name, rev):
            data = self.fetch_file(name, rev, rel)
            target = dest / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
            total += len(data)
        return total
