"""Replicated hub fleet: failover reads over N peers.

The paper's ModelHub is a single always-available service; in practice
one hub process is one fault away from failing every ``dlv serve --hub``
boot.  This module is the client half of the replicated answer (the
server half is :mod:`repro.hub.replication`):

* :class:`CircuitBreaker` — per-peer failure accounting.  After
  ``failure_threshold`` consecutive failures the breaker *opens* and the
  peer is skipped for ``cooldown_s`` (measured on an injectable
  monotonic clock, so tests advance time explicitly); after the
  cooldown one probe request half-opens it.
* :class:`FleetClient` — fronts a list of
  :class:`~repro.hub.httpd.RemoteHub` peers with health-checked routing,
  per-request socket deadlines, round-robin read spreading, and
  automatic failover: any network-shaped failure (connection refused or
  dropped, truncated body, timeout, 429/5xx) marks the peer and moves to
  the next one.  Pulls are *resumable across failover*: the per-file
  sha256 progress in the ``.partial`` state file (see
  :mod:`repro.hub.transfer`) means a pull that loses its peer mid-tree
  continues on another replica without re-downloading verified files.
* :class:`HubFleet` — boots a simulated primary + followers fleet in
  one process (each peer its own directory and
  :class:`~repro.hub.httpd.HubHTTPServer`), the fixture the chaos suite
  and the examples stand on.

A replica that answers but *lags* (404 for a revision it has not synced
yet) is not a failure — the client just tries the next peer without
charging the breaker.
"""

from __future__ import annotations

import http.client
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.dlv.repository import Repository
from repro.faults import fs as ffs
from repro.hub.httpd import DEFAULT_HUB_TIMEOUT_S, HubHTTPServer, RemoteHub
from repro.hub.replication import Replicator
from repro.hub.retry import Retrier
from repro.hub.server import HubRecord, HubServer, verify_tree
from repro.hub.transfer import open_transfer
from repro.obs.metrics import counter, get_registry
from repro.obs.tracing import trace_span

__all__ = ["CircuitBreaker", "FleetClient", "HubFleet", "NoHealthyPeer"]

#: Exception shapes that mean "this peer failed", triggering failover.
NETWORK_FAILURES = (OSError, http.client.HTTPException)


class NoHealthyPeer(OSError):
    """Every peer in the fleet failed (or had its breaker open)."""


class CircuitBreaker:
    """Consecutive-failure breaker for one peer.

    Closed (normal) → open after ``failure_threshold`` consecutive
    failures → half-open after ``cooldown_s``: one request is allowed
    through; success closes the breaker, failure re-opens it for
    another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    def allow(self) -> bool:
        """May a request be sent to this peer right now?"""
        with self._lock:
            if self._opened_at is None:
                return True
            if self.clock() - self._opened_at >= self.cooldown_s:
                # Half-open: let exactly one probe through per cooldown.
                if not self._probing:
                    self._probing = True
                    return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            reopened = self._probing
            if reopened or self._consecutive_failures >= self.failure_threshold:
                if self._opened_at is None or reopened:
                    counter("hub.fleet.breaker_opened").inc()
                self._opened_at = self.clock()
                self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self.clock() - self._opened_at >= self.cooldown_s:
                return "half-open"
            return "open"


class _Peer:
    """One fleet member: url + lazy connection + breaker."""

    def __init__(
        self, url: str, timeout: float, breaker: CircuitBreaker
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.breaker = breaker
        self.remote = RemoteHub(self.url, timeout=timeout)

    def close(self) -> None:
        self.remote.close()


class FleetClient:
    """Read client over a replicated hub fleet.

    Args:
        urls: Peer addresses (list, or one comma-separated string).
            Order matters only as a tiebreak — reads round-robin across
            peers whose breaker is closed.
        timeout: Per-request socket deadline, seconds.
        retrier: Policy for *metadata* reads (search/revisions/manifest)
            once failover across all peers has been exhausted; defaults
            to a single pass (failover across N peers already is the
            retry).  File transfers never retry blindly — they resume.
        failure_threshold / cooldown_s / clock: Breaker tuning (see
            :class:`CircuitBreaker`).
    """

    def __init__(
        self,
        urls: str | Sequence[str],
        timeout: float = DEFAULT_HUB_TIMEOUT_S,
        retrier: Optional[Retrier] = None,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if isinstance(urls, str):
            urls = [u.strip() for u in urls.split(",") if u.strip()]
        if not urls:
            raise ValueError("fleet needs at least one peer url")
        for url in urls:
            if not url.startswith(("http://", "https://")):
                raise ValueError(f"not an http(s) peer url: {url!r}")
        clock = clock if clock is not None else time.monotonic
        self.timeout = timeout
        self.peers = [
            _Peer(
                url,
                timeout,
                CircuitBreaker(failure_threshold, cooldown_s, clock),
            )
            for url in urls
        ]
        self.retrier = retrier if retrier is not None else Retrier(attempts=1)
        self._lock = threading.Lock()
        self._rr = 0

    def close(self) -> None:
        for peer in self.peers:
            peer.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- routing --------------------------------------------------------------

    def _rotation(self) -> list[_Peer]:
        """Peers in this request's try-order (round-robin start)."""
        with self._lock:
            start = self._rr
            self._rr = (self._rr + 1) % len(self.peers)
        ordered = self.peers[start:] + self.peers[:start]
        available = [p for p in ordered if p.breaker.allow()]
        # All breakers open: trying *something* beats failing for sure.
        return available or ordered

    def _each_peer(self, fn: Callable[[_Peer], object], what: str):
        """Run ``fn`` against peers in rotation until one succeeds.

        ``KeyError`` (a lagging replica that lacks the name/revision) is
        remembered but does not charge the breaker; network failures do.
        Raises the last error when every peer failed, or the remembered
        ``KeyError`` when peers were healthy but none had the data.
        """
        last_network: Optional[Exception] = None
        last_missing: Optional[KeyError] = None
        for peer in self._rotation():
            try:
                result = fn(peer)
            except KeyError as exc:
                last_missing = exc
                continue
            except NETWORK_FAILURES as exc:
                peer.breaker.record_failure()
                counter("hub.fleet.peer_failures").inc()
                last_network = exc
                continue
            peer.breaker.record_success()
            return result
        if last_missing is not None and last_network is None:
            raise last_missing
        counter("hub.fleet.exhausted").inc()
        raise NoHealthyPeer(
            f"all {len(self.peers)} hub peers failed during {what}"
        ) from (last_network or last_missing)

    # -- read surface ---------------------------------------------------------

    def health(self) -> dict:
        """Health of the first answering peer (fleet-level liveness)."""
        return self._each_peer(lambda p: p.remote.health(), "health")

    def status(self) -> list[dict]:
        """Per-peer probe: healthz payload (or error) + breaker state.

        Unlike the read surface this intentionally touches *every* peer,
        breaker or not — it is the observability verb behind
        ``dlv hub status``.
        """
        report = []
        for peer in self.peers:
            entry = {"url": peer.url, "breaker": peer.breaker.state}
            try:
                entry.update(peer.remote.health())
                entry["ok"] = True
            except NETWORK_FAILURES as exc:
                entry["ok"] = False
                entry["error"] = f"{type(exc).__name__}: {exc}"
            report.append(entry)
        return report

    def search(self, pattern: str = "*") -> list[HubRecord]:
        return self.retrier.call(
            self._each_peer, lambda p: p.remote.search(pattern), "search"
        )

    def revisions(self, name: str) -> list[int]:
        return self.retrier.call(
            self._each_peer, lambda p: p.remote.revisions(name), "revisions"
        )

    def manifest(
        self, name: str, revision: Optional[int] = None
    ) -> Optional[dict]:
        return self.retrier.call(
            self._each_peer,
            lambda p: p.remote.manifest(name, revision),
            "manifest",
        )

    def resolve_revision(
        self, name: str, revision: Optional[int] = None
    ) -> int:
        if revision is not None:
            return revision
        # "latest" must come from the most caught-up peer that answers —
        # a lagging replica would silently serve an old revision.
        def newest(peer: _Peer) -> int:
            revs = peer.remote.revisions(name)
            if not revs:
                raise KeyError(f"hub has no repository {name!r}")
            return revs[-1]

        candidates: list[int] = []
        for peer in self._rotation():
            try:
                candidates.append(newest(peer))
                peer.breaker.record_success()
            except KeyError:
                continue
            except NETWORK_FAILURES:
                peer.breaker.record_failure()
                counter("hub.fleet.peer_failures").inc()
                continue
        if not candidates:
            raise NoHealthyPeer(
                f"no peer could resolve latest revision of {name!r}"
            )
        return max(candidates)

    # -- the failover pull ----------------------------------------------------

    def pull(
        self,
        name: str,
        dest: str | Path,
        revision: Optional[int] = None,
    ) -> Path:
        """``dlv pull`` with mid-transfer failover and resume.

        The manifest is fetched first (from any peer) and becomes the
        transfer's ground truth; files then stream from one peer until
        it fails, at which point the transfer continues on the next —
        files already verified against the manifest are never fetched
        again, in this process or a restarted one (the ``.partial``
        state survives crashes).  The assembled tree is verified whole
        against the manifest before the atomic rename into place.
        """
        dest = Path(dest)
        target = dest / Repository.DLV_DIR
        if target.exists():
            raise FileExistsError(f"{dest} already contains a dlv repository")
        dest.mkdir(parents=True, exist_ok=True)
        with trace_span("hub.fleet.pull", repo=name) as span:
            rev = self.resolve_revision(name, revision)
            manifest = self.manifest(name, rev)
            files = self._each_peer(
                lambda p: p.remote.files(name, rev), "files"
            )
            transfer = open_transfer(dest, name, rev, manifest or {}, files)
            failovers = self._transfer_with_failover(transfer, name, rev)
            if manifest is not None:
                verify_tree(transfer.tmp, manifest)
                counter("hub.pulls_verified").inc()
            ffs.replace(transfer.tmp, target, site="hub.pull.replace")
            transfer.state.discard()
            span.set_attr("revision", rev)
            span.set_attr("failovers", failovers)
            span.set_attr("files_fetched", transfer.stats.files_fetched)
            span.set_attr("files_resumed", transfer.stats.files_resumed)
            span.set_attr("bytes", transfer.stats.bytes_fetched)
        get_registry().window("hub.pull").observe(span.elapsed)
        return dest

    def _transfer_with_failover(self, transfer, name: str, rev: int) -> int:
        """Drive the resumable transfer across peers; returns failovers."""
        failovers = 0
        last_error: Optional[Exception] = None
        attempts_left = 2 * len(self.peers)  # bounded even if all flap
        while transfer.pending():
            if attempts_left <= 0:
                counter("hub.fleet.exhausted").inc()
                raise NoHealthyPeer(
                    f"pull of {name!r} rev {rev} exhausted all peers "
                    f"({len(transfer.pending())} files remaining)"
                ) from last_error
            attempts_left -= 1
            peer = self._rotation()[0]
            try:
                transfer.run(
                    lambda rel, offset, _p=peer: _p.remote.fetch_file(
                        name, rev, rel, offset
                    )
                )
                peer.breaker.record_success()
            except KeyError as exc:
                # Lagging replica: no breaker charge, just another peer.
                last_error = exc
                failovers += 1
                counter("hub.fleet.failovers").inc()
            except NETWORK_FAILURES as exc:
                peer.breaker.record_failure()
                counter("hub.fleet.peer_failures").inc()
                last_error = exc
                failovers += 1
                counter("hub.fleet.failovers").inc()
        return failovers

    def pull_repository(
        self, name: str, dest: str | Path, revision: Optional[int] = None
    ) -> Repository:
        """Pull and open in one step."""
        return Repository.open(str(self.pull(name, dest, revision)))

    def pull_for_serving(
        self, name: str, revision: Optional[int] = None
    ) -> Path:
        """Pull into a fresh scratch directory (``dlv serve --hub``)."""
        scratch = Path(tempfile.mkdtemp(prefix=f"dlv-serve-{name}-"))
        try:
            return self.pull(name, scratch / "repo", revision)
        except Exception:
            shutil.rmtree(scratch, ignore_errors=True)
            raise


class HubFleet:
    """A simulated fleet: one primary + ``size - 1`` replicas, one process.

    Each peer owns its own hub directory under ``root`` and its own
    :class:`~repro.hub.httpd.HubHTTPServer`; replicas carry a
    :class:`~repro.hub.replication.Replicator` pointed at the primary.
    By default replication is driven manually via :meth:`sync` (what the
    deterministic chaos tests need); pass ``sync_interval_s`` to run the
    replicator threads instead.

    Usage::

        with HubFleet(tmp_path, size=3) as fleet:
            fleet.publish(repo, "shared")
            fleet.sync()                      # replicas catch up
            client = fleet.client()           # FleetClient over all peers
            client.pull("shared", dest)
    """

    def __init__(
        self,
        root: str | Path,
        size: int = 3,
        sync_interval_s: Optional[float] = None,
        timeout: float = DEFAULT_HUB_TIMEOUT_S,
    ) -> None:
        if size < 1:
            raise ValueError("fleet size must be >= 1")
        self.root = Path(root)
        self.size = size
        self.sync_interval_s = sync_interval_s
        self.timeout = timeout
        self.servers: list[HubHTTPServer] = []
        self.replicators: list[Replicator] = []

    @property
    def primary(self) -> HubHTTPServer:
        return self.servers[0]

    @property
    def urls(self) -> list[str]:
        return [server.url for server in self.servers]

    def start(self) -> "HubFleet":
        primary = HubHTTPServer(
            self.root / "n0", peer_name="n0", role="primary"
        ).start()
        self.servers.append(primary)
        for i in range(1, self.size):
            store = HubServer(self.root / f"n{i}")
            replicator = Replicator(
                store,
                primary.url,
                interval_s=self.sync_interval_s or 2.0,
                timeout=self.timeout,
            )
            server = HubHTTPServer(
                store,
                peer_name=f"n{i}",
                role="replica",
                replicator=replicator,
            ).start()
            self.replicators.append(replicator)
            self.servers.append(server)
        if self.sync_interval_s is not None:
            for replicator in self.replicators:
                replicator.start()
        return self

    def stop(self) -> None:
        for replicator in self.replicators:
            replicator.stop()
        for server in self.servers:
            server.stop()
        self.servers = []
        self.replicators = []

    def publish(self, repo: Repository, name: str, description: str = ""):
        """Publish to the primary (the only writable peer)."""
        model_names = sorted({v.name for v in repo.list_versions()})
        with repo.backend.publish_tree() as tree:
            return self.primary.server.publish(
                name,
                tree,
                description=description,
                model_names=model_names,
            )

    def sync(self) -> int:
        """Run one sync round on every replica; returns revisions copied."""
        return sum(r.sync_once() for r in self.replicators)

    def client(self, **kwargs) -> FleetClient:
        """A :class:`FleetClient` over every peer in this fleet."""
        kwargs.setdefault("timeout", self.timeout)
        return FleetClient(self.urls, **kwargs)

    def kill(self, index: int) -> None:
        """Hard-stop one peer (chaos: the node is gone, port refused)."""
        self.servers[index].stop()

    def __enter__(self) -> "HubFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
