"""Hub client: the ``dlv publish`` / ``dlv search`` / ``dlv pull`` verbs.

All verbs run under a :class:`~repro.hub.retry.Retrier` (exponential
backoff, deterministic jitter), so transient I/O failures are absorbed.
``pull`` is atomic: the tree is copied into a temporary directory beside
the destination, verified against the revision's checksum manifest, and
only then renamed into place — an interrupted or corrupt pull never
leaves a half-installed repository behind.

The hub location may be a directory path (the paper's offline stand-in)
or an ``http://``/``https://`` URL of a running
:class:`~repro.hub.httpd.HubHTTPServer`; the client picks the transport
from the location's shape, and every other verb is identical.  Remote
hubs are read-only: ``publish`` over HTTP raises.

Every ``pull`` runs under a ``hub.pull`` trace span (joining any caller
trace), bills the bytes it moves to the context's request cost, and
feeds the ``hub.pull`` rolling latency window that ``/metrics`` exposes.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Optional, Union

from repro.dlv.repository import Repository
from repro.faults import fs as ffs
from repro.hub.httpd import RemoteHub
from repro.hub.retry import Retrier
from repro.hub.server import HubRecord, HubServer, verify_tree
from repro.obs.cost import charge
from repro.obs.metrics import counter, get_registry
from repro.obs.tracing import trace_span


def _tree_bytes(root: Path) -> int:
    """Total file bytes under ``root`` (what a local copy moved)."""
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


class HubClient:
    """Client API over a directory-backed or HTTP hub.

    Args:
        hub: Hub directory path, an existing :class:`HubServer`, or an
            ``http(s)://`` URL of a :class:`~repro.hub.httpd.HubHTTPServer`.
        retrier: Retry policy for hub I/O (a default one when omitted).
    """

    def __init__(
        self,
        hub: Union[str, Path, HubServer],
        retrier: Optional[Retrier] = None,
    ) -> None:
        self.remote: Optional[RemoteHub] = None
        self.server: Optional[HubServer] = None
        if isinstance(hub, HubServer):
            self.server = hub
        elif isinstance(hub, str) and hub.startswith(("http://", "https://")):
            self.remote = RemoteHub(hub)
        else:
            self.server = HubServer(hub)
        self.retrier = retrier if retrier is not None else Retrier()

    @property
    def is_remote(self) -> bool:
        return self.remote is not None

    def publish(
        self, repo: Repository, name: str, description: str = ""
    ) -> HubRecord:
        """``dlv publish``: push a whole repository to the hub.

        Raises:
            NotImplementedError: when the hub is a remote URL — the HTTP
                surface is read-only by design; publish where the hub
                directory is mounted.
        """
        if self.server is None:
            raise NotImplementedError(
                "publishing over HTTP is not supported; the hub's HTTP "
                "surface is read-only — publish against the hub directory"
            )
        model_names = sorted({v.name for v in repo.list_versions()})
        return self.retrier.call(
            self.server.publish,
            name,
            repo.dlv_dir,
            description=description,
            model_names=model_names,
        )

    def search(self, pattern: str = "*") -> list[HubRecord]:
        """``dlv search``: find published repositories."""
        if self.remote is not None:
            return self.retrier.call(self.remote.search, pattern)
        return self.retrier.call(self.server.search, pattern)

    def revisions(self, name: str) -> list[int]:
        """All stored revisions of a published repository."""
        if self.remote is not None:
            return self.retrier.call(self.remote.revisions, name)
        return self.retrier.call(self.server.revisions, name)

    def pull(
        self,
        name: str,
        dest: str | Path,
        revision: Optional[int] = None,
    ) -> Path:
        """``dlv pull``: materialize a published repository locally.

        The copy lands in a temp directory, is verified against the
        published checksum manifest (when one exists), and is renamed
        into place atomically.  A failed attempt is re-copied from
        scratch under the retry policy; on final failure any partially
        created destination is removed.

        Returns the destination path, which is a ready-to-open DLV
        repository.
        """
        dest = Path(dest)
        target = dest / Repository.DLV_DIR
        if target.exists():
            raise FileExistsError(f"{dest} already contains a dlv repository")
        created_dest = not dest.exists()
        dest.mkdir(parents=True, exist_ok=True)
        tmp = dest / f".dlv.pull.{os.getpid()}.tmp"

        def attempt() -> int:
            if tmp.exists():
                shutil.rmtree(tmp)
            if self.remote is not None:
                manifest = self.remote.manifest(name, revision)
                moved = self.remote.fetch_tree(name, revision, tmp)
            else:
                source = self.server.get(name, revision)
                ffs.copytree(source, tmp, site="hub.pull.copytree")
                manifest = self.server.manifest(name, revision)
                moved = _tree_bytes(tmp)
                # Remote fetches bill per file inside fetch_tree; local
                # copies bill the whole tree here so both transports
                # produce a comparable hub.pull cost line.
                charge(bytes_read=moved)
            if manifest is not None:
                verify_tree(tmp, manifest)
                counter("hub.pulls_verified").inc()
            return moved

        with trace_span(
            "hub.pull", repo=name, remote=self.is_remote
        ) as span:
            try:
                moved = self.retrier.call(attempt)
                ffs.replace(tmp, target, site="hub.pull.replace")
            except Exception:
                # Graceful failure: never leave a half-pulled repository.
                # A CrashSimulated (BaseException) deliberately skips this
                # — a dead process leaves litter for fsck/sweep to report.
                shutil.rmtree(tmp, ignore_errors=True)
                if created_dest:
                    shutil.rmtree(dest, ignore_errors=True)
                raise
            span.set_attr("bytes", moved)
        get_registry().window("hub.pull").observe(span.elapsed)
        return dest

    def pull_repository(
        self, name: str, dest: str | Path, revision: Optional[int] = None
    ) -> Repository:
        """Pull and open in one step."""
        return Repository.open(self.pull(name, dest, revision))

    def pull_for_serving(
        self, name: str, revision: Optional[int] = None
    ) -> Path:
        """Pull into a fresh scratch directory (``dlv serve --hub``).

        Serving does not care where the bytes live, only that they are a
        verified, openable repository — so the destination is a new
        temporary directory the caller may delete after shutdown.
        """
        import tempfile

        scratch = Path(tempfile.mkdtemp(prefix=f"dlv-serve-{name}-"))
        try:
            return self.pull(name, scratch / "repo", revision)
        except Exception:
            shutil.rmtree(scratch, ignore_errors=True)
            raise
