"""Hub client: the ``dlv publish`` / ``dlv search`` / ``dlv pull`` verbs.

All verbs run under a :class:`~repro.hub.retry.Retrier` (exponential
backoff, deterministic jitter, optional total-elapsed deadline), so
transient I/O failures are absorbed.  ``pull`` is atomic: the tree lands
in a temporary directory beside the destination, is verified against the
revision's checksum manifest, and only then renamed into place — an
interrupted or corrupt pull never installs a half-built repository.

The hub location may be:

* a directory path (the paper's offline stand-in),
* an ``http://``/``https://`` URL of a running
  :class:`~repro.hub.httpd.HubHTTPServer`, or
* *several* URLs (a list, or one comma-separated string) — a replicated
  fleet, in which case every read verb routes through a
  :class:`~repro.hub.fleet.FleetClient` with health-checked failover.

The client picks the transport from the location's shape, and every
verb is identical across them.  Remote hubs are read-only: ``publish``
over HTTP raises.

Remote pulls are *resumable*: per-file progress is verified against the
sha256 manifest and recorded in a ``.partial`` state file (see
:mod:`repro.hub.transfer`), so a pull interrupted by a crash or a dead
peer continues where it stopped instead of re-downloading completed
files.  Every ``pull`` runs under a ``hub.pull`` trace span (joining any
caller trace), bills the bytes it moves to the context's request cost,
and feeds the ``hub.pull`` rolling latency window ``/metrics`` exposes.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.dlv.repository import Repository
from repro.faults import fs as ffs
from repro.hub.fleet import FleetClient
from repro.hub.httpd import DEFAULT_HUB_TIMEOUT_S, RemoteHub
from repro.hub.retry import Retrier
from repro.hub.server import HubRecord, HubServer, verify_tree
from repro.hub.transfer import PARTIAL_STATE_NAME, open_transfer
from repro.obs.cost import charge
from repro.obs.metrics import counter, get_registry
from repro.obs.tracing import trace_span


def _tree_bytes(root: Path) -> int:
    """Total file bytes under ``root`` (what a local copy moved)."""
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def _is_url(location: str) -> bool:
    return location.startswith(("http://", "https://"))


def _split_urls(hub: Union[str, Sequence[str]]) -> Optional[list[str]]:
    """Interpret ``hub`` as one-or-more http URLs, or ``None`` if not."""
    if isinstance(hub, (list, tuple)):
        urls = [str(u) for u in hub]
        return urls if urls and all(_is_url(u) for u in urls) else None
    if isinstance(hub, str) and _is_url(hub):
        parts = [p.strip() for p in hub.split(",") if p.strip()]
        return parts if all(_is_url(p) for p in parts) else None
    return None


class HubClient:
    """Client API over a directory-backed, HTTP, or fleet hub.

    Args:
        hub: Hub directory path, an existing :class:`HubServer`, one
            ``http(s)://`` URL, or several URLs (list or comma-separated
            string) naming a replicated fleet.
        retrier: Retry policy for hub I/O (a default one when omitted).
        timeout: Socket/read timeout, seconds, for every remote request
            — a hung peer fails the request (retriable) instead of
            blocking a pull forever.
    """

    def __init__(
        self,
        hub: Union[str, Path, HubServer, Sequence[str]],
        retrier: Optional[Retrier] = None,
        timeout: float = DEFAULT_HUB_TIMEOUT_S,
    ) -> None:
        self.remote: Optional[RemoteHub] = None
        self.server: Optional[HubServer] = None
        self.fleet: Optional[FleetClient] = None
        self.timeout = timeout
        urls = None if isinstance(hub, (HubServer, Path)) else _split_urls(hub)
        if isinstance(hub, HubServer):
            self.server = hub
        elif urls is not None and len(urls) > 1:
            self.fleet = FleetClient(urls, timeout=timeout, retrier=retrier)
        elif urls is not None:
            self.remote = RemoteHub(urls[0], timeout=timeout)
        else:
            self.server = HubServer(hub)
        self.retrier = retrier if retrier is not None else Retrier()

    @property
    def is_remote(self) -> bool:
        return self.remote is not None or self.fleet is not None

    def publish(
        self, repo: Repository, name: str, description: str = ""
    ) -> HubRecord:
        """``dlv publish``: push a whole repository to the hub.

        Raises:
            NotImplementedError: when the hub is a remote URL — the HTTP
                surface is read-only by design; publish where the hub
                directory is mounted.
        """
        if self.server is None:
            raise NotImplementedError(
                "publishing over HTTP is not supported; the hub's HTTP "
                "surface is read-only — publish against the hub directory"
            )
        model_names = sorted({v.name for v in repo.list_versions()})
        # The backend decides what tree a publish ships: the live .dlv
        # directory for loose-file repos, a temp tree holding one
        # consistent single-file repo.db snapshot for database repos.
        with repo.backend.publish_tree() as tree:
            return self.retrier.call(
                self.server.publish,
                name,
                tree,
                description=description,
                model_names=model_names,
            )

    def search(self, pattern: str = "*") -> list[HubRecord]:
        """``dlv search``: find published repositories."""
        if self.fleet is not None:
            return self.fleet.search(pattern)
        if self.remote is not None:
            return self.retrier.call(self.remote.search, pattern)
        return self.retrier.call(self.server.search, pattern)

    def revisions(self, name: str) -> list[int]:
        """All stored revisions of a published repository."""
        if self.fleet is not None:
            return self.fleet.revisions(name)
        if self.remote is not None:
            return self.retrier.call(self.remote.revisions, name)
        return self.retrier.call(self.server.revisions, name)

    def pull(
        self,
        name: str,
        dest: str | Path,
        revision: Optional[int] = None,
    ) -> Path:
        """``dlv pull``: materialize a published repository locally.

        The copy lands in a temp directory, is verified against the
        published checksum manifest (when one exists), and is renamed
        into place atomically.  Remote pulls are resumable: completed
        files (verified per-file against the manifest) are recorded in a
        ``.partial`` state file and skipped by any subsequent attempt —
        including a fresh process after a crash.  Fleet pulls
        additionally fail over to another replica mid-transfer.

        Returns the destination path, which is a ready-to-open DLV
        repository.
        """
        if self.fleet is not None:
            return self.fleet.pull(name, dest, revision)
        dest = Path(dest)
        target = dest / Repository.DLV_DIR
        if target.exists():
            raise FileExistsError(f"{dest} already contains a dlv repository")
        created_dest = not dest.exists()
        dest.mkdir(parents=True, exist_ok=True)
        with trace_span(
            "hub.pull", repo=name, remote=self.is_remote
        ) as span:
            try:
                if self.remote is not None:
                    moved = self._pull_remote(name, dest, target, revision)
                else:
                    moved = self._pull_local(name, dest, target, revision)
            except Exception:
                # Graceful failure: never install half a repository.  A
                # remote pull keeps its .partial workspace for resume;
                # a local copy is cheap and cleaned entirely.  A
                # CrashSimulated (BaseException) skips all of this — a
                # dead process leaves litter for the next pull to adopt.
                resumable = (
                    self.remote is not None
                    and (dest / PARTIAL_STATE_NAME).exists()
                )
                if not resumable:
                    shutil.rmtree(dest / ".dlv.pull.tmp", ignore_errors=True)
                    if created_dest:
                        shutil.rmtree(dest, ignore_errors=True)
                raise
            span.set_attr("bytes", moved)
        get_registry().window("hub.pull").observe(span.elapsed)
        return dest

    def _pull_local(
        self, name: str, dest: Path, target: Path, revision: Optional[int]
    ) -> int:
        """Directory-to-directory pull: whole-tree copy under retry."""
        tmp = dest / ".dlv.pull.tmp"

        def attempt() -> int:
            if tmp.exists():
                shutil.rmtree(tmp)
            source = self.server.get(name, revision)
            ffs.copytree(source, tmp, site="hub.pull.copytree")
            manifest = self.server.manifest(name, revision)
            moved = _tree_bytes(tmp)
            # Remote fetches bill per file inside the transfer; local
            # copies bill the whole tree here so both transports produce
            # a comparable hub.pull cost line.
            charge(bytes_read=moved)
            if manifest is not None:
                verify_tree(tmp, manifest)
                counter("hub.pulls_verified").inc()
            return moved

        moved = self.retrier.call(attempt)
        ffs.replace(tmp, target, site="hub.pull.replace")
        return moved

    def _pull_remote(
        self, name: str, dest: Path, target: Path, revision: Optional[int]
    ) -> int:
        """HTTP pull: per-file resumable transfer under retry."""
        rev = self.retrier.call(self.remote.resolve_revision, name, revision)
        manifest = self.retrier.call(self.remote.manifest, name, rev)
        files = self.retrier.call(self.remote.files, name, rev)
        transfer = open_transfer(dest, name, rev, manifest or {}, files)

        def fetch(rel: str, offset: int) -> bytes:
            return self.remote.fetch_file(name, rev, rel, offset)

        # Each retry re-enters the transfer, which skips everything the
        # previous attempt completed — retry == resume, not restart.
        self.retrier.call(transfer.run, fetch)
        if manifest is not None:
            verify_tree(transfer.tmp, manifest)
            counter("hub.pulls_verified").inc()
        ffs.replace(transfer.tmp, target, site="hub.pull.replace")
        transfer.state.discard()
        return transfer.stats.bytes_fetched

    def pull_repository(
        self, name: str, dest: str | Path, revision: Optional[int] = None
    ) -> Repository:
        """Pull and open in one step."""
        return Repository.open(str(self.pull(name, dest, revision)))

    def pull_for_serving(
        self, name: str, revision: Optional[int] = None
    ) -> Path:
        """Pull into a fresh scratch directory (``dlv serve --hub``).

        Serving does not care where the bytes live, only that they are a
        verified, openable repository — so the destination is a new
        temporary directory the caller may delete after shutdown.
        """
        import tempfile

        if self.fleet is not None:
            return self.fleet.pull_for_serving(name, revision)
        scratch = Path(tempfile.mkdtemp(prefix=f"dlv-serve-{name}-"))
        try:
            return self.pull(name, scratch / "repo", revision)
        except Exception:
            shutil.rmtree(scratch, ignore_errors=True)
            raise

    def close(self) -> None:
        """Release remote connections (no-op for directory hubs)."""
        if self.remote is not None:
            self.remote.close()
        if self.fleet is not None:
            self.fleet.close()
