"""Hub client: the ``dlv publish`` / ``dlv search`` / ``dlv pull`` verbs."""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Optional

from repro.dlv.repository import Repository
from repro.hub.server import HubRecord, HubServer


class HubClient:
    """Client API over a (directory-backed) hub.

    Args:
        hub: Hub directory path or an existing :class:`HubServer`.
    """

    def __init__(self, hub: str | Path | HubServer) -> None:
        self.server = hub if isinstance(hub, HubServer) else HubServer(hub)

    def publish(
        self, repo: Repository, name: str, description: str = ""
    ) -> HubRecord:
        """``dlv publish``: push a whole repository to the hub."""
        model_names = sorted({v.name for v in repo.list_versions()})
        return self.server.publish(
            name, repo.dlv_dir, description=description, model_names=model_names
        )

    def search(self, pattern: str = "*") -> list[HubRecord]:
        """``dlv search``: find published repositories."""
        return self.server.search(pattern)

    def pull(
        self,
        name: str,
        dest: str | Path,
        revision: Optional[int] = None,
    ) -> Path:
        """``dlv pull``: materialize a published repository locally.

        Returns the destination path, which is a ready-to-open DLV
        repository.
        """
        dest = Path(dest)
        source = self.server.get(name, revision)
        target = dest / Repository.DLV_DIR
        if target.exists():
            raise FileExistsError(f"{dest} already contains a dlv repository")
        dest.mkdir(parents=True, exist_ok=True)
        shutil.copytree(source, target)
        return dest

    def pull_repository(
        self, name: str, dest: str | Path, revision: Optional[int] = None
    ) -> Repository:
        """Pull and open in one step."""
        return Repository.open(self.pull(name, dest, revision))
