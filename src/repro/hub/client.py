"""Hub client: the ``dlv publish`` / ``dlv search`` / ``dlv pull`` verbs.

All verbs run under a :class:`~repro.hub.retry.Retrier` (exponential
backoff, deterministic jitter), so transient I/O failures are absorbed.
``pull`` is atomic: the tree is copied into a temporary directory beside
the destination, verified against the revision's checksum manifest, and
only then renamed into place — an interrupted or corrupt pull never
leaves a half-installed repository behind.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Optional

from repro.dlv.repository import Repository
from repro.faults import fs as ffs
from repro.hub.retry import Retrier
from repro.hub.server import HubRecord, HubServer, verify_tree
from repro.obs.metrics import counter


class HubClient:
    """Client API over a (directory-backed) hub.

    Args:
        hub: Hub directory path or an existing :class:`HubServer`.
        retrier: Retry policy for hub I/O (a default one when omitted).
    """

    def __init__(
        self,
        hub: str | Path | HubServer,
        retrier: Optional[Retrier] = None,
    ) -> None:
        self.server = hub if isinstance(hub, HubServer) else HubServer(hub)
        self.retrier = retrier if retrier is not None else Retrier()

    def publish(
        self, repo: Repository, name: str, description: str = ""
    ) -> HubRecord:
        """``dlv publish``: push a whole repository to the hub."""
        model_names = sorted({v.name for v in repo.list_versions()})
        return self.retrier.call(
            self.server.publish,
            name,
            repo.dlv_dir,
            description=description,
            model_names=model_names,
        )

    def search(self, pattern: str = "*") -> list[HubRecord]:
        """``dlv search``: find published repositories."""
        return self.retrier.call(self.server.search, pattern)

    def pull(
        self,
        name: str,
        dest: str | Path,
        revision: Optional[int] = None,
    ) -> Path:
        """``dlv pull``: materialize a published repository locally.

        The copy lands in a temp directory, is verified against the
        published checksum manifest (when one exists), and is renamed
        into place atomically.  A failed attempt is re-copied from
        scratch under the retry policy; on final failure any partially
        created destination is removed.

        Returns the destination path, which is a ready-to-open DLV
        repository.
        """
        dest = Path(dest)
        target = dest / Repository.DLV_DIR
        if target.exists():
            raise FileExistsError(f"{dest} already contains a dlv repository")
        created_dest = not dest.exists()
        dest.mkdir(parents=True, exist_ok=True)
        tmp = dest / f".dlv.pull.{os.getpid()}.tmp"

        def attempt() -> None:
            if tmp.exists():
                shutil.rmtree(tmp)
            source = self.server.get(name, revision)
            ffs.copytree(source, tmp, site="hub.pull.copytree")
            manifest = self.server.manifest(name, revision)
            if manifest is not None:
                verify_tree(tmp, manifest)
                counter("hub.pulls_verified").inc()

        try:
            self.retrier.call(attempt)
            ffs.replace(tmp, target, site="hub.pull.replace")
        except Exception:
            # Graceful failure: never leave a half-pulled repository.  A
            # CrashSimulated (BaseException) deliberately skips this — a
            # dead process leaves litter for fsck/sweep to report.
            shutil.rmtree(tmp, ignore_errors=True)
            if created_dest:
                shutil.rmtree(dest, ignore_errors=True)
            raise
        return dest

    def pull_repository(
        self, name: str, dest: str | Path, revision: Optional[int] = None
    ) -> Repository:
        """Pull and open in one step."""
        return Repository.open(self.pull(name, dest, revision))

    def pull_for_serving(
        self, name: str, revision: Optional[int] = None
    ) -> Path:
        """Pull into a fresh scratch directory (``dlv serve --hub``).

        Serving does not care where the bytes live, only that they are a
        verified, openable repository — so the destination is a new
        temporary directory the caller may delete after shutdown.
        """
        import tempfile

        scratch = Path(tempfile.mkdtemp(prefix=f"dlv-serve-{name}-"))
        try:
            return self.pull(name, scratch / "repo", revision)
        except Exception:
            shutil.rmtree(scratch, ignore_errors=True)
            raise
