"""Synthetic modeling-lifecycle generators (Sec. V-A of the paper).

The paper lacks sufficiently fine-grained real-world repositories, so it
drives the archival experiments with an *automatic modeler*: a state
machine that mimics real modeling practice — fine-tuning a trained network
for a new (face recognition) task, sweeping hyperparameters, and tweaking
the architecture — producing the SD dataset (similar DNNs with relatively
similar parameters), and a family of derived repositories (RD) that vary
delta ratios, group sizes, and model counts.

* :mod:`repro.lifecycle.auto_modeler` trains real (scaled-down) models and
  commits them into a DLV repository — the SD equivalent.
* :mod:`repro.lifecycle.synthetic_graph` builds matrix storage graphs
  directly with controlled cost structure — the RD equivalent, used to
  scale the Fig. 6(c) sweeps without training.
"""

from repro.lifecycle.auto_modeler import AutoModeler, ModelerConfig, generate_sd
from repro.lifecycle.synthetic_graph import synthetic_storage_graph

__all__ = [
    "AutoModeler",
    "ModelerConfig",
    "generate_sd",
    "synthetic_storage_graph",
]
