"""The automatic modeler: generate an SD-style repository by simulated practice.

The paper's SD dataset simulates "a modeler who is enumerating models to
solve a face recognition task, fine-tuning a trained VGG": the base
network's prediction layer is swapped for the new label space, and a state
machine applies real-world modeling moves — fine-tune only the last layer,
fine-tune everything with a small learning rate, sweep hyperparameters,
tweak the architecture — committing every variant (with its checkpointed
snapshots and lineage) into a DLV repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.dlv.repository import Repository
from repro.dnn.data import Dataset, synthetic_faces
from repro.dnn.layers import Dense, Dropout
from repro.dnn.network import Network
from repro.dnn.training import SGDConfig, Trainer
from repro.dnn.zoo import vgg_mini


@dataclass
class ModelerConfig:
    """Knobs of the automatic modeler.

    Defaults are laptop-scale versions of the paper's 54-version,
    10-snapshot SD dataset.
    """

    num_versions: int = 8
    snapshots_per_version: int = 4
    base_epochs: int = 2
    finetune_epochs: int = 1
    model_scale: float = 0.5
    seed: int = 42
    #: Relative frequency of each modeling move.
    actions: dict = field(
        default_factory=lambda: {
            "finetune-last": 0.3,
            "finetune-all": 0.3,
            "hyperparam": 0.25,
            "arch-tweak": 0.15,
        }
    )


class AutoModeler:
    """State machine that populates a repository with related model versions."""

    def __init__(
        self,
        repo: Repository,
        dataset: Optional[Dataset] = None,
        config: Optional[ModelerConfig] = None,
    ) -> None:
        self.repo = repo
        self.config = config or ModelerConfig()
        self.dataset = dataset or synthetic_faces(size=16)
        self.rng = np.random.default_rng(self.config.seed)
        self._versions: list = []

    # -- helpers ------------------------------------------------------------

    def _snapshot_interval(self, dataset_size: int, epochs: int, batch: int) -> int:
        iterations = max(1, (dataset_size // batch) * epochs)
        return max(1, iterations // self.config.snapshots_per_version)

    def _train_and_commit(
        self,
        net: Network,
        name: str,
        solver: SGDConfig,
        message: str,
        parent=None,
    ):
        trainer = Trainer(net, solver)
        result = trainer.fit(
            self.dataset.x_train,
            self.dataset.y_train,
            self.dataset.x_test,
            self.dataset.y_test,
        )
        # Cap the snapshot series at the configured length (latest kept).
        if len(result.snapshots) > self.config.snapshots_per_version:
            result.snapshots = result.snapshots[
                -self.config.snapshots_per_version :
            ]
        version = self.repo.commit(
            net,
            name=name,
            message=message,
            parent=parent,
            train_result=result,
            hyperparams=solver.to_dict(),
        )
        self._versions.append(version)
        return version

    def _base_solver(self, epochs: int) -> SGDConfig:
        batch = 32
        return SGDConfig(
            epochs=epochs,
            base_lr=0.05,
            batch_size=batch,
            seed=int(self.rng.integers(0, 2**31)),
            snapshot_every=self._snapshot_interval(
                len(self.dataset.x_train), epochs, batch
            ),
        )

    # -- modeling moves --------------------------------------------------------

    def train_base(self) -> None:
        """Train and commit the base model (the 'trained VGG' stand-in)."""
        cfg = self.config
        net = vgg_mini(
            input_shape=self.dataset.input_shape,
            num_classes=self.dataset.num_classes,
            scale=cfg.model_scale,
            name="sd-base",
        ).build(cfg.seed)
        self._train_and_commit(
            net, "sd-base", self._base_solver(cfg.base_epochs),
            "base model for face task",
        )

    def _pick_parent(self):
        """Recent versions are likelier parents (modelers iterate forward)."""
        weights = np.arange(1, len(self._versions) + 1, dtype=np.float64)
        weights /= weights.sum()
        index = int(self.rng.choice(len(self._versions), p=weights))
        return self._versions[index]

    def _pick_action(self) -> str:
        names = list(self.config.actions)
        probs = np.asarray(
            [self.config.actions[n] for n in names], dtype=np.float64
        )
        probs /= probs.sum()
        return str(names[int(self.rng.choice(len(names), p=probs))])

    def step(self, index: int) -> None:
        """One modeling move: derive, train, and commit a new version."""
        parent = self._pick_parent()
        action = self._pick_action()
        net = self.repo.load_network(parent)
        solver = self._base_solver(self.config.finetune_epochs)
        name = f"sd-{action}-{index}"
        net.name = name

        if action == "finetune-last":
            # Freeze everything but the prediction layer.
            last_dense = [
                layer.name for layer in net.layers() if layer.kind == "FULL"
            ][-1]
            solver.lr_multipliers = {"*": 0.0, last_dense: 1.0}
            solver.base_lr = 0.02
        elif action == "finetune-all":
            solver.base_lr = 0.005
        elif action == "hyperparam":
            solver.base_lr = float(self.rng.choice([0.1, 0.02, 0.01]))
            solver.momentum = float(self.rng.choice([0.9, 0.5]))
        else:  # arch-tweak: insert dropout before the classifier, re-init it.
            dense_layers = [
                layer.name for layer in net.layers() if layer.kind == "FULL"
            ]
            anchor = net.predecessor(dense_layers[-1])
            drop_name = f"drop{index}"
            if drop_name not in net:
                net.insert_after(anchor, Dropout(drop_name, rate=0.3))
            # Replace the classifier to simulate a task tweak.
            classifier = dense_layers[-1]
            upstream = net.predecessor(classifier)
            consumers = net.consumers(classifier)
            net.delete_node(classifier)
            new_dense = Dense(classifier, units=self.dataset.num_classes)
            net.insert_after(upstream, new_dense)
            del consumers
            net.build(seed=int(self.rng.integers(0, 2**31)))
            solver.base_lr = 0.02

        self._train_and_commit(
            net, name, solver, f"{action} from {parent.ref}", parent=parent
        )

    def run(self) -> list:
        """Generate the full repository; returns the committed versions."""
        self.train_base()
        for index in range(1, self.config.num_versions):
            self.step(index)
        return list(self._versions)


def generate_sd(
    path: str | Path,
    config: Optional[ModelerConfig] = None,
    dataset: Optional[Dataset] = None,
) -> Repository:
    """Create (or reuse) an SD repository at ``path``.

    When ``path`` already holds a repository it is opened as-is, making
    benchmark invocations idempotent.
    """
    path = Path(path)
    if (path / Repository.DLV_DIR).exists():
        return Repository.open(str(path))
    repo = Repository.init(str(path))
    AutoModeler(repo, dataset=dataset, config=config).run()
    return repo
