"""Synthetic matrix storage graphs — the RD repositories of Sec. V-A.

The paper derives a collection of repositories from SD by varying the
delta ratios, group sizes, and number of models.  Training real models at
every size would dominate benchmark time, so this generator builds
:class:`~repro.core.storage_graph.MatrixStorageGraph` instances directly
with the same structure a trained repository produces:

* each model version is a chain of snapshots; adjacent snapshots are
  connected by cheap delta edges (``delta_ratio`` x the materialization
  storage cost);
* versions form a lineage tree; the latest snapshots of related versions
  are connected by slightly costlier fine-tuning delta edges;
* every matrix has a materialization edge whose recreation cost is the
  cheapest possible (direct fetch).
"""

from __future__ import annotations

import numpy as np

from repro.core.storage_graph import (
    MatrixRef,
    MatrixStorageGraph,
    StorageEdge,
)


def synthetic_storage_graph(
    num_versions: int = 6,
    snapshots_per_version: int = 5,
    matrices_per_snapshot: int = 8,
    delta_ratio: float = 0.4,
    lineage_delta_ratio: float = 0.6,
    matrix_kb: float = 256.0,
    size_spread: float = 0.5,
    recreation_unit: float = 1e-6,
    seed: int = 7,
) -> MatrixStorageGraph:
    """Build an RD-style matrix storage graph.

    Args:
        num_versions: Model versions in the repository.
        snapshots_per_version: Checkpointed snapshots per version.
        matrices_per_snapshot: Parameter matrices per snapshot (the paper's
            SD has 16 parametric layers).
        delta_ratio: Storage cost of an adjacent-snapshot delta relative to
            materialization (smaller = more compressible deltas).
        lineage_delta_ratio: Same, for fine-tuning deltas across versions.
        matrix_kb: Mean uncompressed matrix size in KiB.
        size_spread: Log-uniform spread of matrix sizes around the mean.
        recreation_unit: Seconds (or cost units) per byte handled.
        seed: RNG seed; the generator is fully deterministic.

    Returns:
        A connected :class:`MatrixStorageGraph` whose snapshot groups are
        the per-snapshot co-usage sets.
    """
    if num_versions < 1 or snapshots_per_version < 1:
        raise ValueError("need at least one version and one snapshot")
    rng = np.random.default_rng(seed)
    graph = MatrixStorageGraph()

    # Per-layer sizes are shared across versions (same architecture family).
    low = matrix_kb * (1.0 - size_spread)
    high = matrix_kb * (1.0 + size_spread)
    layer_bytes = rng.uniform(low, high, size=matrices_per_snapshot) * 1024.0

    # Lineage: version v (>0) derives from a random earlier version.
    parents = {0: None}
    for version in range(1, num_versions):
        parents[version] = int(rng.integers(0, version))

    def matrix_id(version: int, snapshot: int, layer: int) -> str:
        return f"v{version}/s{snapshot}/m{layer}"

    for version in range(num_versions):
        for snapshot in range(snapshots_per_version):
            key = f"v{version}/s{snapshot}"
            for layer in range(matrices_per_snapshot):
                nbytes = float(layer_bytes[layer])
                mid = matrix_id(version, snapshot, layer)
                graph.add_matrix(MatrixRef(mid, key, int(nbytes)))
                # Materialized storage compresses mildly (~10%).
                store = nbytes * float(rng.uniform(0.85, 0.95))
                graph.add_materialization(
                    mid, store, nbytes * recreation_unit
                )
                if snapshot > 0:
                    prev = matrix_id(version, snapshot - 1, layer)
                    jitter = float(rng.uniform(0.8, 1.2))
                    graph.add_edge(
                        StorageEdge(
                            prev,
                            mid,
                            nbytes * delta_ratio * jitter,
                            nbytes * recreation_unit,
                        )
                    )

    last = snapshots_per_version - 1
    for version in range(1, num_versions):
        base = parents[version]
        for layer in range(matrices_per_snapshot):
            nbytes = float(layer_bytes[layer])
            jitter = float(rng.uniform(0.8, 1.2))
            graph.add_edge(
                StorageEdge(
                    matrix_id(base, last, layer),
                    matrix_id(version, 0, layer),
                    nbytes * lineage_delta_ratio * jitter,
                    nbytes * recreation_unit,
                )
            )
            # Fine-tuned latest snapshots are also mutually similar.
            graph.add_edge(
                StorageEdge(
                    matrix_id(base, last, layer),
                    matrix_id(version, last, layer),
                    nbytes * lineage_delta_ratio * jitter * 1.1,
                    nbytes * recreation_unit,
                )
            )
    return graph
