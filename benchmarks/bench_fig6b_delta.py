"""Fig. 6(b): delta encoding vs materialization across model relationships.

The paper compares compressed footprints of Materialize / Delta-SUB /
Delta-XOR (float32 lossless, zlib level 6) in three scenarios:

* ``Similar``    — latest snapshots of independently retrained siblings
  (CNN-S/M/F, VGG-16): delta is NOT better than materialization;
* ``Fine-tuning``— fine-tuned pairs (VGG-16 / VGG-Salient): delta wins,
  and arithmetic subtraction beats XOR;
* ``Snapshots``  — adjacent checkpoints of one training run: delta wins
  decisively.
"""

import numpy as np
import pytest

from repro.core.delta import measure_schemes
from repro.dnn.training import SGDConfig, Trainer
from repro.dnn.zoo import vgg_mini


@pytest.fixture(scope="module")
def scenarios(faces16):
    """Weight-matrix pairs for the three Fig. 6(b) scenarios."""
    def train(seed, base_weights=None, epochs=2, lr=0.05, freeze_convs=False):
        net = vgg_mini(
            input_shape=faces16.input_shape,
            num_classes=faces16.num_classes,
            scale=0.5,
            name=f"vgg-{seed}",
        ).build(seed)
        if base_weights is not None:
            net.set_weights(base_weights)
        multipliers = {"conv*": 0.0} if freeze_convs else {}
        config = SGDConfig(
            epochs=epochs, base_lr=lr, seed=seed, snapshot_every=2,
            lr_multipliers=multipliers,
        )
        result = Trainer(net, config).fit(
            faces16.x_train, faces16.y_train,
            faces16.x_test, faces16.y_test,
        )
        return net, result

    # Similar: two independent retrains of the same architecture.
    model_a, _ = train(seed=1)
    model_b, _ = train(seed=2)

    # Fine-tuning: model_a continued with a tiny LR and frozen convs.
    finetuned, _ = train(
        seed=3, base_weights=model_a.get_weights(), epochs=1, lr=0.004,
        freeze_convs=True,
    )

    # Snapshots: adjacent checkpoints of a low-LR training run (the paper's
    # snapshots are a few hundred SGD iterations apart on huge data — at
    # our scale a smaller LR gives comparable per-snapshot drift).
    _, run = train(seed=4, epochs=1, lr=0.01)
    snap_prev = run.snapshots[-2][1]
    snap_next = run.snapshots[-1][1]

    def pairs(weights_a, weights_b):
        out = []
        for layer in weights_a:
            if layer not in weights_b:
                continue
            for key in weights_a[layer]:
                a, b = weights_a[layer][key], weights_b[layer][key]
                if a.shape == b.shape and a.size >= 64:
                    out.append((a, b))
        return out

    return {
        "Similar": pairs(model_a.get_weights(), model_b.get_weights()),
        "Fine-tuning": pairs(finetuned.get_weights(), model_a.get_weights()),
        "Snapshots": pairs(snap_next, snap_prev),
    }


def aggregate(pairs):
    totals = {"materialize": 0, "sub": 0, "xor": 0}
    for target, base in pairs:
        sizes = measure_schemes(target, base)
        for key in totals:
            totals[key] += sizes[key]
    return totals


def test_fig6b_table(scenarios, reporter):
    reporter.line("Fig 6(b): compressed bytes by delta scheme and scenario")
    reporter.line(
        f"{'scenario':>12} | {'materialize':>11} | {'delta-sub':>10} | "
        f"{'delta-xor':>10} | sub/mat"
    )
    reporter.line("-" * 62)
    results = {}
    for name, pairs in scenarios.items():
        totals = aggregate(pairs)
        results[name] = totals
        ratio = totals["sub"] / totals["materialize"]
        reporter.line(
            f"{name:>12} | {totals['materialize']:>11} | "
            f"{totals['sub']:>10} | {totals['xor']:>10} | {ratio:7.3f}"
        )

    # Paper shapes: delta not better for Similar; much better for
    # fine-tuning and adjacent snapshots, with SUB beating XOR.
    similar = results["Similar"]
    assert similar["sub"] >= similar["materialize"] * 0.9
    finetune = results["Fine-tuning"]
    assert finetune["sub"] < finetune["materialize"]
    assert finetune["sub"] <= finetune["xor"] * 1.1
    snapshots = results["Snapshots"]
    assert snapshots["sub"] < snapshots["materialize"]
    assert snapshots["sub"] <= snapshots["xor"] * 1.1


def test_bench_delta_encode(benchmark, scenarios):
    """Throughput of delta computation + compression on fine-tuned pairs."""
    pairs = scenarios["Fine-tuning"]

    def run():
        return aggregate(pairs)["sub"]

    assert benchmark(run) > 0
