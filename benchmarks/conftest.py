"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's Sec. V.
Each prints its rows/series live (bypassing pytest's capture) and also
writes them under ``benchmarks/results/`` so runs leave an artifact
that EXPERIMENTS.md can reference.  Alongside each results file the
harness drops a ``*.metrics.json`` sidecar — the delta of the global
:mod:`repro.obs` registry across the run — so every recorded number
comes with the cache/chunkstore/retrieval counters that produced it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import dump_metrics
from repro.dnn.data import synthetic_digits, synthetic_faces
from repro.dnn.training import SGDConfig, Trainer, accuracy
from repro.dnn.zoo import alexnet_mini, lenet, vgg_mini

RESULTS_DIR = Path(__file__).parent / "results"


def _metrics_delta(before: dict, after: dict) -> dict:
    """What the run itself added to the global registry.

    Counters subtract; gauges and histograms report their final state
    (histogram counts are cumulative, so per-run deltas of the summary
    fields would be misleading for min/max — the final snapshot is the
    honest artifact).
    """
    counters = {}
    for name, value in after["counters"].items():
        delta = value - before["counters"].get(name, 0)
        if delta:
            counters[name] = delta
    return {
        "counters": counters,
        "gauges": after["gauges"],
        "histograms": after["histograms"],
    }


class Reporter:
    """Prints benchmark tables live and persists them to a results file."""

    def __init__(self, name: str, capsys) -> None:
        self.name = name
        self.capsys = capsys
        self.lines: list[str] = []
        self._metrics_before = dump_metrics()

    def line(self, text: str = "") -> None:
        self.lines.append(text)
        with self.capsys.disabled():
            print(text)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(
            "\n".join(self.lines) + "\n"
        )
        (RESULTS_DIR / f"{self.name}.metrics.json").write_text(
            json.dumps(
                _metrics_delta(self._metrics_before, dump_metrics()),
                indent=2,
                default=str,
            )
        )


@pytest.fixture
def reporter(request, capsys):
    name = f"{request.node.module.__name__}__{request.node.name}"
    rep = Reporter(name, capsys)
    yield rep
    rep.flush()


def _train(net, dataset, epochs, base_lr=0.05, snapshot_every=0, seed=0):
    config = SGDConfig(
        epochs=epochs, base_lr=base_lr, batch_size=32,
        snapshot_every=snapshot_every, seed=seed,
    )
    result = Trainer(net, config).fit(
        dataset.x_train, dataset.y_train, dataset.x_test, dataset.y_test
    )
    return net, result


@pytest.fixture(scope="session")
def digits12():
    return synthetic_digits(train_per_class=40, test_per_class=15)


@pytest.fixture(scope="session")
def digits32():
    return synthetic_digits(size=32, train_per_class=25, test_per_class=10)


@pytest.fixture(scope="session")
def faces16():
    return synthetic_faces(
        size=16, num_classes=8, train_per_class=15, test_per_class=5
    )


@pytest.fixture(scope="session")
def trained_zoo(digits12, digits32):
    """The three real-world models of Sec. V-A, trained to useful accuracy.

    LeNet runs on 12x12 digits; AlexNet-mini and VGG-mini run on the sizes
    their architectures need.  (Scaled-down substitutes for the paper's
    reference/Model Zoo checkpoints — see DESIGN.md.)
    """
    from repro.dnn.data import synthetic_digits

    digits16 = synthetic_digits(size=16, train_per_class=30, test_per_class=10)
    digits28 = synthetic_digits(size=28, train_per_class=30, test_per_class=10)
    zoo = {}
    net = lenet(
        input_shape=digits12.input_shape, num_classes=10, name="lenet"
    ).build(0)
    zoo["lenet"] = (*_train(net, digits12, epochs=3), digits12)

    # The classic 431K-parameter LeNet of Fig. 2, at full paper scale.
    net = lenet(
        input_shape=digits28.input_shape, num_classes=10, name="lenet-28"
    ).build(0)
    zoo["lenet-28"] = (*_train(net, digits28, epochs=3, base_lr=0.03), digits28)

    net = alexnet_mini(
        input_shape=digits16.input_shape, num_classes=10, name="alexnet-mini"
    ).build(0)
    zoo["alexnet-mini"] = (*_train(net, digits16, epochs=2, base_lr=0.03), digits16)

    net = vgg_mini(
        input_shape=digits32.input_shape, num_classes=10,
        scale=0.5, name="vgg-mini",
    ).build(0)
    zoo["vgg-mini"] = (*_train(net, digits32, epochs=2, base_lr=0.03), digits32)
    return zoo


@pytest.fixture(scope="session")
def sd_repo(tmp_path_factory, faces16):
    """The SD repository (Sec. V-A) at benchmark scale."""
    from repro.lifecycle.auto_modeler import ModelerConfig, generate_sd

    config = ModelerConfig(
        num_versions=6,
        snapshots_per_version=4,
        base_epochs=2,
        finetune_epochs=1,
        model_scale=0.5,
        seed=17,
    )
    path = tmp_path_factory.mktemp("sd-bench") / "repo"
    return generate_sd(path, config, faces16)


def percent(value: float, total: float) -> str:
    return f"{100.0 * value / total:6.2f}%"
