"""Cross-model page dedup: bytes/model and serve-cache hit rate.

A fine-tuned model family is the page store's home turf: ``N`` variants
of one base model, each perturbing a sparse random subset of weights —
siblings with *no recorded lineage*, so PAS delta encoding has no edge
to exploit and every variant would otherwise materialize in full.  The
benchmark archives the same family with dedup off and on and reports:

* stored bytes per model (the ISSUE's headline: >= 3x reduction at
  family scale), and
* the shared :class:`~repro.serve.cache.PlaneCache` hit rate when
  serving several family members through one cache — shared pages are
  fetched once and hit for every sibling.

``REPRO_BENCH_DEDUP_FAMILY`` (default 50) sets the family size; CI's
smoke run uses a small family, the full run reproduces the headline.
"""

from __future__ import annotations

import os
import uuid

import numpy as np

from repro.dlv.repository import Repository
from repro.dnn.zoo import tiny_mlp
from repro.serve.cache import PlaneCache

FAMILY = int(os.environ.get("REPRO_BENCH_DEDUP_FAMILY", "50"))

#: Fraction of each weight matrix a variant perturbs (sparse fine-tune).
PERTURB_FRAC = 0.03


def _family(n: int):
    """``n`` sparse perturbations of one base MLP (no lineage edges)."""
    base = tiny_mlp(hidden=256, name="fam-base").build(seed=0)
    nets = []
    for i in range(n):
        clone = base.clone()
        rng = np.random.default_rng(1000 + i)
        weights = clone.get_weights()
        for params in weights.values():
            for arr in params.values():
                flat = arr.reshape(-1)
                k = max(1, int(PERTURB_FRAC * flat.size))
                idx = rng.choice(flat.size, size=k, replace=False)
                flat[idx] += rng.normal(0, 0.01, size=k).astype(flat.dtype)
        clone.set_weights(weights)
        clone.name = f"fam-{i}"
        nets.append(clone)
    return nets


def _populate(nets):
    repo = Repository.init(f"mem://bench-dedup-{uuid.uuid4().hex}")
    for net in nets:
        repo.commit(net, name=net.name, message="variant")
    return repo


def test_dedup_bytes_per_model(reporter):
    nets = _family(FAMILY)

    plain = _populate(nets)
    off = plain.archive(alpha=4.0)["bytes_after"]
    plain.close()

    deduped = _populate(nets)
    on = deduped.archive(alpha=4.0, dedup=True)["bytes_after"]
    stats = deduped.dedup_stats()

    ratio = off / on if on else float("inf")
    reporter.line(f"family of {FAMILY} fine-tuned variants "
                  f"({PERTURB_FRAC:.0%} weights perturbed each)")
    reporter.line()
    reporter.line(f"{'mode':<12} {'stored':>12} {'bytes/model':>12}")
    reporter.line(f"{'dedup off':<12} {off:>12} {off // FAMILY:>12}")
    reporter.line(f"{'dedup on':<12} {on:>12} {on // FAMILY:>12}")
    reporter.line()
    reporter.line(f"reduction: {ratio:.2f}x")
    reporter.line(
        "pages: {unique} unique / {refs} refs, saved {saved} bytes".format(
            unique=stats["unique_pages"],
            refs=stats["page_references"],
            saved=stats["bytes_saved"],
        )
    )

    assert on < off
    if FAMILY >= 20:
        assert ratio >= 3.0, f"dedup reduction {ratio:.2f}x below target"

    # Dedup'd reads stay exact.
    got = deduped.get_snapshot_weights("fam-1")
    for layer, params in nets[1].get_weights().items():
        for key, value in params.items():
            np.testing.assert_array_equal(got[layer][key], value)
    deduped.close()


def test_dedup_serve_cache_hit_rate(reporter):
    serve_n = min(FAMILY, 8)
    nets = _family(max(serve_n, 3))
    repo = _populate(nets)
    repo.archive(alpha=4.0, dedup=True)

    cache = PlaneCache(64 << 20)
    archive = repo.archive_view(plane_cache=cache)
    snapshots = sorted(
        {
            f"v{row['version_id']}/s{row['snapshot_idx']}"
            for row in repo.catalog.get_matrices()
        }
    )[:serve_n]
    reporter.line(f"serving {len(snapshots)} family members "
                  "through one PlaneCache")
    reporter.line()
    reporter.line(f"{'members':>8} {'hits':>8} {'misses':>8} {'hit rate':>9}")
    for i, snapshot in enumerate(snapshots, start=1):
        archive.recreate_snapshot(snapshot)
        stats = cache.stats()
        reporter.line(
            f"{i:>8} {stats['hits']:>8} {stats['misses']:>8} "
            f"{stats['hit_rate']:>8.1%}"
        )
    final = cache.stats()
    reporter.line()
    reporter.line(f"final hit rate: {final['hit_rate']:.1%} "
                  f"({final['cached_bytes']} cached bytes)")

    # Serving >= 2 family members must profit from shared pages.
    assert final["hits"] > 0
    assert final["hit_rate"] > 0.2
    repo.close()
