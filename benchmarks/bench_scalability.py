"""Scalability of the archival algorithms on synthetic models.

The paper's abstract claims the proposed techniques "scale well on
synthetic models".  This benchmark sweeps the RD generator's repository
size and reports each solver's wall-clock time and plan quality, checking
that runtime grows polynomially (not explosively) with the instance and
that plan quality (storage relative to the MST bound) does not degrade.
"""

import time

import pytest

from repro.core.archival import (
    alpha_constraints,
    last_tree,
    minimum_spanning_tree,
    pas_mt,
    pas_pt,
    spt_tightening,
)
from repro.core.storage_graph import RetrievalScheme
from repro.lifecycle.synthetic_graph import synthetic_storage_graph

SIZES = [
    # (versions, snapshots, matrices per snapshot)
    (4, 4, 4),
    (6, 5, 8),
    (10, 6, 10),
    (14, 8, 12),
]


def build(size):
    versions, snapshots, matrices = size
    return synthetic_storage_graph(
        num_versions=versions,
        snapshots_per_version=snapshots,
        matrices_per_snapshot=matrices,
        delta_ratio=0.35,
        seed=31,
    )


def test_scalability_sweep(reporter):
    reporter.line("Scalability: solver runtime vs repository size (alpha=1.6)")
    reporter.line(
        f"{'matrices':>8} | {'edges':>6} | {'algo':>12} | {'sec':>8} | "
        f"{'Cs / MST':>8} | ok"
    )
    reporter.line("-" * 60)
    timings: dict[str, list[float]] = {}
    for size in SIZES:
        graph = build(size)
        constraints = alpha_constraints(graph, 1.6)
        mst_cost = minimum_spanning_tree(graph).storage_cost()
        for name, solver in [
            ("PAS-MT", pas_mt),
            ("PAS-PT", pas_pt),
            ("SPT-tighten", spt_tightening),
            ("LAST", lambda g, _c: last_tree(g, 0.6)),
        ]:
            start = time.perf_counter()
            plan = solver(graph, constraints)
            elapsed = time.perf_counter() - start
            timings.setdefault(name, []).append(elapsed)
            ok = plan.satisfies(constraints, RetrievalScheme.INDEPENDENT)
            reporter.line(
                f"{graph.num_matrices():>8} | {len(graph.edges):>6} | "
                f"{name:>12} | {elapsed:8.3f} | "
                f"{plan.storage_cost() / mst_cost:8.2f} | {ok}"
            )
    # The whole sweep (largest instance: >1300 matrices) stays tractable.
    for name, series in timings.items():
        assert max(series) < 120.0, f"{name} exceeded the runtime budget"


@pytest.mark.parametrize(
    "size", SIZES[:3], ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}"
)
def test_bench_pas_pt_scaling(benchmark, size):
    graph = build(size)
    constraints = alpha_constraints(graph, 1.6)
    plan = benchmark.pedantic(
        pas_pt, args=(graph, constraints), rounds=2, iterations=1
    )
    assert plan.is_complete()
