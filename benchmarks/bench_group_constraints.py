"""Group (co-usage) constraints vs per-matrix budgets (Sec. IV-C claim).

The paper motivates Problem 1's snapshot-level constraints by arguing that
the alternative — sub-dividing each snapshot's retrieval budget into
constraints on its individual matrices — "can lead to significantly higher
storage utilization".  This benchmark tests exactly that: solve the same
instances once with snapshot-level budgets and once with the equivalent
per-matrix budgets (each matrix its own group, same total slack), and
compare the storage of the resulting plans.
"""

import pytest

from repro.core.archival import alpha_constraints, pas_mt, minimum_spanning_tree
from repro.core.storage_graph import (
    MatrixRef,
    MatrixStorageGraph,
    RetrievalScheme,
)
from repro.lifecycle.synthetic_graph import synthetic_storage_graph


def per_matrix_view(graph: MatrixStorageGraph) -> MatrixStorageGraph:
    """The same graph with every matrix in its own co-usage group."""
    split = MatrixStorageGraph()
    for matrix_id, ref in graph.matrices.items():
        split.add_matrix(
            MatrixRef(matrix_id, f"solo/{matrix_id}", ref.nbytes)
        )
    for edge in graph.edges:
        split.add_edge(edge)
    return split


@pytest.fixture(scope="module")
def instances():
    return [
        synthetic_storage_graph(
            num_versions=6, snapshots_per_version=5,
            matrices_per_snapshot=8, delta_ratio=ratio, seed=seed,
        )
        for ratio, seed in [(0.3, 11), (0.5, 22)]
    ]


def test_group_constraints_beat_per_matrix(instances, reporter):
    reporter.line(
        "Group (snapshot) constraints vs subdivided per-matrix budgets"
    )
    reporter.line(
        f"{'instance':>8} | {'alpha':>5} | {'group Cs':>10} | "
        f"{'per-matrix Cs':>13} | {'overhead':>8}"
    )
    reporter.line("-" * 58)
    for index, graph in enumerate(instances):
        split = per_matrix_view(graph)
        for alpha in (1.3, 1.6, 2.0):
            group_plan = pas_mt(graph, alpha_constraints(graph, alpha))
            split_constraints = alpha_constraints(split, alpha)
            split_plan = pas_mt(split, split_constraints)
            overhead = split_plan.storage_cost() / group_plan.storage_cost()
            reporter.line(
                f"{index:>8} | {alpha:>5.1f} | "
                f"{group_plan.storage_cost():10.3e} | "
                f"{split_plan.storage_cost():13.3e} | {overhead:8.2f}"
            )
            # The paper's claim: per-matrix budgets are (weakly) worse —
            # the group formulation can spend one matrix's slack on another.
            assert group_plan.satisfies(
                alpha_constraints(graph, alpha), RetrievalScheme.INDEPENDENT
            )
            assert (
                group_plan.storage_cost()
                <= split_plan.storage_cost() * 1.02
            )

    # Sanity: both formulations dominate the MST lower bound.
    mst = minimum_spanning_tree(instances[0]).storage_cost()
    assert pas_mt(
        instances[0], alpha_constraints(instances[0], 2.0)
    ).storage_cost() >= mst - 1e-6


def test_bench_group_solve(benchmark, instances):
    graph = instances[0]
    constraints = alpha_constraints(graph, 1.6)
    plan = benchmark.pedantic(
        pas_mt, args=(graph, constraints), rounds=2, iterations=1
    )
    assert plan.is_complete()
