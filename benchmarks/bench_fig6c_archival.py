"""Fig. 6(c): comparing PAS archival storage algorithms on SD/RD.

The paper sweeps the recreation budget ``Cr(T, s_i) <= alpha * Cr(SPT, s_i)``
and plots each algorithm's total storage cost (left axis) and recreation
cost (right axis), with the MST and SPT as the two extremes.  Expected
shape: PAS-MT and PAS-PT exploit the budget and approach the MST storage
bound far earlier in the alpha sweep than LAST (which cannot see group
constraints); PT tends to win at tight alpha, MT at loose alpha.
"""

import pytest

from repro.core.archival import (
    alpha_constraints,
    last_tree,
    minimum_spanning_tree,
    pas_mt,
    pas_pt,
    shortest_path_tree,
)
from repro.core.storage_graph import RetrievalScheme
from repro.lifecycle.synthetic_graph import synthetic_storage_graph

ALPHAS = [1.1, 1.3, 1.6, 2.0, 3.0, 4.0]


@pytest.fixture(scope="module")
def graphs(sd_repo):
    """The trained SD graph plus a larger synthetic RD graph."""
    sd_graph, _ = sd_repo.build_storage_graph()
    rd_graph = synthetic_storage_graph(
        num_versions=8, snapshots_per_version=6, matrices_per_snapshot=8,
        delta_ratio=0.35, seed=23,
    )
    return {"SD": sd_graph, "RD": rd_graph}


def mean_recreation(plan):
    costs = plan.all_snapshot_costs(RetrievalScheme.INDEPENDENT)
    return sum(costs.values()) / len(costs)


def run_sweep(graph, reporter, label):
    mst = minimum_spanning_tree(graph)
    spt = shortest_path_tree(graph)
    reporter.line(
        f"[{label}] MST Cs={mst.storage_cost():.3e}  "
        f"SPT Cs={spt.storage_cost():.3e}"
    )
    reporter.line(
        f"{'alpha':>5} | {'algo':>6} | {'Cs':>10} | {'mean Cr':>10} | ok"
    )
    reporter.line("-" * 50)
    table = {}
    for alpha in ALPHAS:
        constraints = alpha_constraints(graph, alpha)
        plans = {
            "LAST": last_tree(graph, eps=max(alpha - 1.0, 1e-6)),
            "PAS-MT": pas_mt(graph, constraints),
            "PAS-PT": pas_pt(graph, constraints),
        }
        for name, plan in plans.items():
            ok = plan.satisfies(constraints, RetrievalScheme.INDEPENDENT)
            reporter.line(
                f"{alpha:5.1f} | {name:>6} | {plan.storage_cost():10.3e} | "
                f"{mean_recreation(plan):10.3e} | {ok}"
            )
            table[(alpha, name)] = (plan.storage_cost(), ok)
    return mst.storage_cost(), spt.storage_cost(), table


def test_fig6c_sweep(graphs, reporter):
    reporter.line("Fig 6(c): archival algorithms vs recreation budget alpha")
    for label, graph in graphs.items():
        mst_cost, spt_cost, table = run_sweep(graph, reporter, label)
        # PAS algorithms always satisfy their constraints.
        for (alpha, name), (cost, ok) in table.items():
            if name in ("PAS-MT", "PAS-PT"):
                assert ok, f"{label} {name} at alpha={alpha} broke constraints"
                assert cost <= spt_cost * 1.05
        # At a loose budget, the best PAS plan (the paper runs both
        # algorithms and picks the winner) sits near the MST bound.
        loose = ALPHAS[-1]
        best_pas_loose = min(
            table[(loose, "PAS-MT")][0], table[(loose, "PAS-PT")][0]
        )
        assert best_pas_loose <= 1.25 * mst_cost
        best_pas_tight = min(
            table[(ALPHAS[0], "PAS-MT")][0], table[(ALPHAS[0], "PAS-PT")][0]
        )
        assert best_pas_tight <= table[(ALPHAS[0], "LAST")][0] * 1.10
        reporter.line("")


@pytest.mark.parametrize("algorithm", [pas_mt, pas_pt])
def test_bench_solver(benchmark, graphs, algorithm):
    graph = graphs["RD"]
    constraints = alpha_constraints(graph, 1.6)
    plan = benchmark(algorithm, graph, constraints)
    assert plan.is_complete()
