"""Fig. 6(d): progressive query evaluation using high-order bytes.

The paper evaluates the test datasets of the real-world models reading
only the high-order 1 or 2 bytes per float, and reports (a) the error
rate of answering from partial precision, and (b) how rarely the
determinism check requires the full-precision low-order bytes.  Expected
shape: 2-byte evaluation is essentially error-free, 1-byte shows small
errors, and the progressive scheme's final answers are always exact while
reading a fraction of the stored bytes.
"""

import numpy as np
import pytest

from repro.core.archival import minimum_spanning_tree
from repro.core.chunkstore import MemoryChunkStore
from repro.core.progressive import ProgressiveEvaluator
from repro.core.retrieval import PlanArchive
from repro.core.storage_graph import MatrixRef, MatrixStorageGraph


def archive_weights(net):
    graph = MatrixStorageGraph()
    matrices = {}
    for layer, params in net.get_weights().items():
        for key, matrix in params.items():
            mid = f"{layer}.{key}"
            graph.add_matrix(MatrixRef(mid, "snap", matrix.nbytes))
            graph.add_materialization(mid, matrix.nbytes, 1.0)
            matrices[mid] = matrix
    plan = minimum_spanning_tree(graph)
    return PlanArchive.build(MemoryChunkStore(), matrices, plan)


@pytest.fixture(scope="module")
def evaluators(trained_zoo):
    out = {}
    for name, (net, _, dataset) in trained_zoo.items():
        out[name] = (ProgressiveEvaluator(net, archive_weights(net), "snap"),
                     net, dataset)
    return out


def test_fig6d_error_rates(evaluators, reporter):
    reporter.line("Fig 6(d): partial-precision error rate and progressive stats")
    reporter.line(
        f"{'model':>14} | {'1B err':>7} | {'2B err':>7} | "
        f"{'det@2B':>7} | {'det@3B':>7} | {'bytes frac':>10} | exact"
    )
    reporter.line("-" * 75)
    for name, (evaluator, net, dataset) in evaluators.items():
        x = dataset.x_test
        exact = net.predict(x)
        err_1b = float(
            (evaluator.evaluate_at_planes(x, 1) != exact).mean()
        )
        err_2b = float(
            (evaluator.evaluate_at_planes(x, 2) != exact).mean()
        )
        evaluator._load_exact()
        progressive = evaluator.evaluate(x, k=1)
        is_exact = bool(np.array_equal(progressive.predictions, exact))
        det2 = progressive.determined_fraction.get(2, 0.0)
        det3 = progressive.determined_fraction.get(3, 0.0)
        reporter.line(
            f"{name:>14} | {err_1b:7.3f} | {err_2b:7.3f} | "
            f"{det2:7.3f} | {det3:7.3f} | "
            f"{progressive.bytes_fraction:10.3f} | {is_exact}"
        )
        # Paper shapes: fewer high-order bytes -> (weakly) more errors;
        # 2-byte errors are tiny; the progressive answer is always exact.
        assert err_2b <= err_1b + 1e-9
        assert err_2b <= 0.02
        assert is_exact
        assert progressive.bytes_fraction <= 1.0


def test_fig6d_topk(evaluators, reporter):
    """Top-1 vs top-5 determinism on the LeNet test set."""
    evaluator, net, dataset = evaluators["lenet"]
    x = dataset.x_test
    reporter.line("")
    reporter.line("Fig 6(d) companion: top-k determinism (lenet)")
    for k in (1, 5):
        result = evaluator.evaluate(x, k=k)
        reporter.line(
            f"  top-{k}: resolved planes mean="
            f"{result.resolved_at_plane.mean():.2f} "
            f"bytes fraction={result.bytes_fraction:.3f}"
        )
        assert result.resolved_at_plane.max() <= 4


def test_bench_progressive_vs_full(benchmark, evaluators):
    evaluator, net, dataset = evaluators["lenet"]
    x = dataset.x_test[:64]
    result = benchmark(evaluator.evaluate, x)
    assert len(result.predictions) == 64
