"""Fig. 6(a): compression/accuracy tradeoff of float representation schemes.

The paper plots, per scheme, the average compression ratio against the
average accuracy drop across the three real-world models (LeNet, AlexNet,
VGG).  Expected shape: lossless float32 barely compresses; float16 /
bfloat16 roughly double the ratio at negligible accuracy cost; fixed
point and quantization reach ~4-20x with accuracy dropping only for the
most aggressive (few-bit) schemes.
"""

import pytest

from repro.core.float_schemes import get_scheme
from repro.dnn.training import accuracy

SCHEMES = [
    "float32",
    "float16",
    "bfloat16",
    "fixed16",
    "fixed8",
    "quant8-uniform",
    "quant8-random",
    "quant4-uniform",
    "quant4-random",
]


def measure(zoo, scheme_name):
    """Average compression ratio and accuracy drop over the model zoo."""
    scheme = get_scheme(scheme_name)
    ratios, drops = [], []
    for net, result, dataset in zoo.values():
        original_weights = net.get_weights()
        raw_bytes = 0
        stored_bytes = 0
        lossy_weights = {}
        for layer, params in original_weights.items():
            lossy_weights[layer] = {}
            for key, matrix in params.items():
                encoded = scheme.encode(matrix)
                raw_bytes += matrix.nbytes
                stored_bytes += encoded.compressed_size()
                lossy_weights[layer][key] = scheme.decode(encoded)
        baseline = accuracy(net, dataset.x_test, dataset.y_test)
        net.set_weights(lossy_weights)
        lossy_acc = accuracy(net, dataset.x_test, dataset.y_test)
        net.set_weights(original_weights)
        ratios.append(raw_bytes / max(stored_bytes, 1))
        drops.append(baseline - lossy_acc)
    return sum(ratios) / len(ratios), sum(drops) / len(drops)


def test_fig6a_table(trained_zoo, reporter):
    reporter.line("Fig 6(a): float scheme compression ratio vs accuracy drop")
    reporter.line(f"{'scheme':>16} | {'avg ratio':>9} | {'avg acc drop':>12}")
    reporter.line("-" * 45)
    rows = {}
    for name in SCHEMES:
        ratio, drop = measure(trained_zoo, name)
        rows[name] = (ratio, drop)
        reporter.line(f"{name:>16} | {ratio:9.2f} | {drop:12.4f}")
    # Shape assertions from the paper's figure.
    assert rows["float32"][1] == 0.0  # lossless
    assert rows["fixed8"][0] > rows["float16"][0] > rows["float32"][0]
    assert rows["quant4-uniform"][0] > rows["quant8-uniform"][0]
    # High-ratio schemes may pay accuracy; mild schemes must not.
    assert abs(rows["float16"][1]) < 0.02
    assert abs(rows["bfloat16"][1]) < 0.05


@pytest.mark.parametrize("scheme_name", ["float32", "fixed8", "quant8-uniform"])
def test_bench_encode_throughput(benchmark, trained_zoo, scheme_name):
    """Encode+compress throughput of one LeNet snapshot per scheme."""
    net, _, _ = trained_zoo["lenet"]
    matrices = [
        matrix
        for params in net.get_weights().values()
        for matrix in params.values()
    ]
    scheme = get_scheme(scheme_name)

    def encode_all():
        return sum(scheme.encode(m).compressed_size() for m in matrices)

    stored = benchmark(encode_all)
    assert stored > 0
