"""Table V: snapshot recreation performance of different storage plans.

The paper compares the average recreation time of a snapshot under three
plans — full materialization (SPT), minimum storage (MST), and a PAS plan
at alpha = 1.6 — for full retrieval and for partial (2-byte / 1-byte)
queries, under the independent and parallel schemes.  Expected shape:

* materialization retrieves fastest at the largest footprint;
* min-storage (delta chains) is the slowest full retrieval;
* the PAS plan sits between the two;
* partial retrieval is several times faster than full, and parallel
  beats independent.
"""

import numpy as np
import pytest

from repro.core.archival import (
    alpha_constraints,
    minimum_spanning_tree,
    shortest_path_tree,
    solve,
)
from repro.core.chunkstore import MemoryChunkStore
from repro.core.retrieval import PlanArchive
from repro.core.storage_graph import RetrievalScheme


@pytest.fixture(scope="module")
def archives(sd_repo):
    """The SD repository archived under the three Table V plans."""
    graph, matrices = sd_repo.build_storage_graph()
    constraints = alpha_constraints(graph, 1.6)
    plans = {
        "Materialization": shortest_path_tree(graph),
        "Min Storage": minimum_spanning_tree(graph),
        "PAS (a=1.6)": solve(graph, constraints, algorithm="best"),
    }
    built = {}
    for name, plan in plans.items():
        store = MemoryChunkStore()
        built[name] = PlanArchive.build(store, matrices, plan)
    # Use the last version's latest snapshot as the query target.
    snapshot_key = sorted(graph.snapshots)[-1]
    return built, snapshot_key


QUERIES = [("Full", 4), ("2 bytes", 2), ("1 byte", 1)]


def recreate_time(archive, snapshot_key, scheme, planes, repeats=3):
    times = []
    for _ in range(repeats):
        result = archive.recreate_snapshot(
            snapshot_key, scheme, planes=planes
        )
        times.append(result.seconds)
    return float(np.median(times)), result.bytes_read


def test_table5(archives, reporter):
    built, snapshot_key = archives
    reporter.line("Table V: snapshot recreation time by plan and query")
    reporter.line(
        f"{'plan':>16} | {'query':>8} | {'indep (ms)':>10} | "
        f"{'parallel (ms)':>13} | {'KB read':>8} | {'stored KB':>9}"
    )
    reporter.line("-" * 78)
    rows = {}
    for name, archive in built.items():
        for query, planes in QUERIES:
            t_ind, bytes_read = recreate_time(
                archive, snapshot_key, RetrievalScheme.INDEPENDENT, planes
            )
            t_par, _ = recreate_time(
                archive, snapshot_key, RetrievalScheme.PARALLEL, planes
            )
            rows[(name, query)] = (t_ind, t_par, bytes_read)
            reporter.line(
                f"{name:>16} | {query:>8} | {t_ind * 1e3:10.2f} | "
                f"{t_par * 1e3:13.2f} | {bytes_read / 1024:8.1f} | "
                f"{archive.total_size() / 1024:9.1f}"
            )

    # Shape assertions mirroring Table V.
    sizes = {name: a.total_size() for name, a in built.items()}
    assert sizes["Min Storage"] <= sizes["PAS (a=1.6)"] + 1
    assert sizes["PAS (a=1.6)"] <= sizes["Materialization"] + 1
    for name in built:
        full = rows[(name, "Full")]
        one_byte = rows[(name, "1 byte")]
        assert one_byte[2] < full[2]  # partial reads fewer bytes
    # Full retrieval from delta chains reads at least as much as from
    # materialized storage.
    assert (
        rows[("Min Storage", "Full")][2]
        >= rows[("Materialization", "Full")][2] * 0.9
    )


def test_partial_retrieval_correctness(archives, sd_repo):
    """Partial reads approximate the exact weights within segment error."""
    built, snapshot_key = archives
    archive = built["PAS (a=1.6)"]
    exact = archive.recreate_snapshot(snapshot_key, planes=4)
    approx = archive.recreate_snapshot(snapshot_key, planes=2)
    for mid in exact.matrices:
        a, b = approx.matrices[mid], exact.matrices[mid]
        scale = max(np.abs(b).max(), 1e-6)
        assert np.abs(a - b).max() <= scale * 0.02


@pytest.mark.parametrize(
    "plan_name", ["Materialization", "Min Storage", "PAS (a=1.6)"]
)
def test_bench_full_recreation(benchmark, archives, plan_name):
    built, snapshot_key = archives
    archive = built[plan_name]
    result = benchmark(
        archive.recreate_snapshot, snapshot_key,
        RetrievalScheme.INDEPENDENT, 4,
    )
    assert result.matrices
