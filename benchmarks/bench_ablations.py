"""Ablations of PAS design choices (beyond the paper's headline figures).

Four ablations, each isolating one decision DESIGN.md calls out:

* **delta edge sets** — how much of the MST's storage saving comes from
  within-version snapshot chains vs. cross-version (lineage) deltas;
* **compression level** — zlib level 1/6/9 on trained weights (the paper
  fixes level 6);
* **segmentation granularity** — compressing whole matrices vs. 2 coarse
  halves vs. 4 byte planes;
* **remote offloading** — progressive query latency as the simulated
  round-trip cost of the low-order tier grows (queries resolved from
  high-order planes never pay it).
"""

import time
import zlib

import numpy as np
import pytest

from repro.core.archival import minimum_spanning_tree
from repro.core.chunkstore import LatencyStore, MemoryChunkStore
from repro.core.progressive import ProgressiveEvaluator
from repro.core.retrieval import PlanArchive
from repro.core.segmentation import segment_planes
from repro.core.storage_graph import MatrixRef, MatrixStorageGraph


class TestDeltaEdgeSets:
    def test_ablate_edge_sources(self, sd_repo, reporter):
        reporter.line("Ablation: delta edge sets (MST storage cost)")
        reporter.line(f"{'edge set':>28} | {'edges':>6} | {'MST Cs':>12}")
        reporter.line("-" * 55)
        results = {}
        for label, within, lineage in [
            ("materialize only", False, False),
            ("+ snapshot chains", True, False),
            ("+ lineage deltas", False, True),
            ("+ both", True, True),
        ]:
            graph, _ = sd_repo.build_storage_graph(
                delta_within_versions=within, delta_across_lineage=lineage
            )
            cost = minimum_spanning_tree(graph).storage_cost()
            results[label] = cost
            reporter.line(
                f"{label:>28} | {len(graph.edges):>6} | {cost:12.0f}"
            )
        # Each edge source helps; their union is at least as good as either.
        assert results["+ snapshot chains"] < results["materialize only"]
        assert results["+ lineage deltas"] < results["materialize only"]
        assert results["+ both"] <= min(
            results["+ snapshot chains"], results["+ lineage deltas"]
        ) + 1e-6


class TestCompressionLevel:
    def test_level_sweep(self, trained_zoo, reporter):
        net, _, _ = trained_zoo["vgg-mini"]
        payload = b"".join(
            matrix.tobytes()
            for params in net.get_weights().values()
            for matrix in params.values()
        )
        reporter.line("")
        reporter.line("Ablation: zlib level on trained VGG-mini weights")
        reporter.line(f"{'level':>5} | {'bytes':>9} | {'ms':>7}")
        reporter.line("-" * 28)
        sizes = {}
        for level in (1, 6, 9):
            start = time.perf_counter()
            compressed = len(zlib.compress(payload, level))
            elapsed = (time.perf_counter() - start) * 1e3
            sizes[level] = compressed
            reporter.line(f"{level:>5} | {compressed:>9} | {elapsed:7.2f}")
        assert sizes[9] <= sizes[6] <= sizes[1]


class TestSegmentationGranularity:
    def test_plane_split_vs_whole(self, trained_zoo, reporter):
        net, _, _ = trained_zoo["lenet"]
        matrices = [
            matrix
            for params in net.get_weights().values()
            for matrix in params.values()
        ]
        whole = sum(
            len(zlib.compress(m.astype("<f4").tobytes(), 6)) for m in matrices
        )
        four_planes = 0
        two_halves = 0
        for matrix in matrices:
            planes = segment_planes(matrix)
            four_planes += sum(len(zlib.compress(p, 6)) for p in planes)
            two_halves += len(zlib.compress(planes[0] + planes[1], 6))
            two_halves += len(zlib.compress(planes[2] + planes[3], 6))
        reporter.line("")
        reporter.line("Ablation: segmentation granularity (compressed bytes)")
        for label, size in [
            ("whole matrices", whole),
            ("2 x 2-byte halves", two_halves),
            ("4 byte planes", four_planes),
        ]:
            reporter.line(f"  {label:>18}: {size}")
        # Byte-plane separation should not cost more than ~10% vs whole,
        # in exchange for partial-read capability.
        assert four_planes <= whole * 1.10


class TestRemoteOffloading:
    @pytest.fixture(scope="class")
    def lenet_setup(self, trained_zoo):
        net, _, dataset = trained_zoo["lenet"]
        matrices = {
            f"{layer}.{key}": value
            for layer, params in net.get_weights().items()
            for key, value in params.items()
        }
        graph = MatrixStorageGraph()
        for mid, matrix in matrices.items():
            graph.add_matrix(MatrixRef(mid, "snap", matrix.nbytes))
            graph.add_materialization(mid, matrix.nbytes, 1.0)
        plan = minimum_spanning_tree(graph)
        return net, dataset, matrices, plan

    def test_latency_sweep(self, lenet_setup, reporter):
        net, dataset, matrices, plan = lenet_setup
        x = dataset.x_test[:48]
        reporter.line("")
        reporter.line(
            "Ablation: remote tier latency vs progressive query time"
        )
        reporter.line(
            f"{'latency (ms)':>12} | {'progressive (ms)':>16} | "
            f"{'remote gets':>11}"
        )
        reporter.line("-" * 48)
        timings = {}
        for latency_ms in (0.0, 1.0, 5.0):
            remote = LatencyStore(
                MemoryChunkStore(), get_latency=latency_ms / 1e3
            )
            archive = PlanArchive.build(
                MemoryChunkStore(), matrices, plan,
                low_order_store=remote, offload_from=2,
            )
            evaluator = ProgressiveEvaluator(net, archive, "snap")
            remote.get_count = 0
            start = time.perf_counter()
            result = evaluator.evaluate(x)
            elapsed = (time.perf_counter() - start) * 1e3
            timings[latency_ms] = (elapsed, remote.get_count)
            reporter.line(
                f"{latency_ms:>12.1f} | {elapsed:>16.2f} | "
                f"{remote.get_count:>11}"
            )
            assert np.array_equal(result.predictions, net.predict(x))
        # The progressive evaluator only touches the remote tier for the
        # escalated points, so the latency penalty is bounded by the number
        # of remote gets, not by the total chunk count.
        _, gets = timings[5.0]
        total_low_planes = 2 * len(matrices)
        assert gets <= 2 * total_low_planes  # escalation is bounded


class TestRetrievalCache:
    def test_cache_accelerates_hot_snapshots(self, sd_repo, reporter):
        """Sec. IV-A workload: the latest snapshots dominate access."""
        import time

        from repro.core.cache import RetrievalCache

        archive = sd_repo.archive_view()
        snapshots = sorted(archive._snapshots)
        hot = snapshots[-1]
        cache = RetrievalCache(archive, max_bytes=256 << 20)

        start = time.perf_counter()
        for _ in range(20):
            archive.recreate_snapshot(hot)
        cold = time.perf_counter() - start

        cache.recreate_snapshot(hot)  # warm up
        start = time.perf_counter()
        for _ in range(20):
            cache.recreate_snapshot(hot)
        warm = time.perf_counter() - start

        reporter.line("")
        reporter.line("Ablation: retrieval cache on a hot snapshot (20 reads)")
        reporter.line(f"  uncached: {cold * 1e3:8.2f} ms")
        reporter.line(f"  cached:   {warm * 1e3:8.2f} ms")
        reporter.line(f"  stats:    {cache.stats()}")
        assert warm < cold
        assert cache.stats()["hit_rate"] > 0.9


def test_bench_spt_tightening(benchmark, sd_repo):
    """Throughput of the feasibility-fallback solver on the SD graph."""
    from repro.core.archival import alpha_constraints, spt_tightening

    graph, _ = sd_repo.build_storage_graph()
    constraints = alpha_constraints(graph, 1.6)
    plan = benchmark.pedantic(
        spt_tightening, args=(graph, constraints), rounds=2, iterations=1
    )
    assert plan.is_complete()
